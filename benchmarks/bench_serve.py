"""Benchmark: daemon-path ingest throughput versus the offline replay.

The serve subsystem adds machinery around every bin — an asyncio hop, an
executor dispatch, a lock, per-bin counters, the live ops surface.  This
benchmark measures what that costs: the same generated trace store is
replayed once through the offline ``ingest_trace`` driver and once
through a full ``MonitorDaemon`` (unpaced ``ReplayFeed``, ops API bound
and answering), with both runs required to be bit-identical.

The acceptance bar is a throughput *floor*, not a target: daemon ingest
must retain at least ``MIN_RELATIVE`` of the offline throughput.  The
paper's bins are 100 ms; per-bin service overhead is invisible at that
cadence unless it regresses catastrophically, which is exactly what the
floor trips on.  While the stream runs, ``/status`` is polled over HTTP
to pin that ops stay responsive mid-ingest (their latency is recorded in
the report).
"""

import asyncio
import json
import threading
import time
import urllib.request

from conftest import BENCH_SCALE, record_result

from repro.experiments import runner
from repro.serve import MonitorDaemon, ReplayFeed
from repro.testing import assert_results_identical
from repro.traffic.generator import TrafficProfile, generate_trace_store

QUERY_SET = "counter,flows,top-k"
TIME_BIN = 0.1
#: Daemon ingest must keep at least this fraction of offline throughput.
#: The daemon pays an asyncio+executor+lock round trip per 100 ms bin —
#: microseconds of overhead against milliseconds of pipeline work — so
#: anything below this means the serve path grew a real bottleneck.
MIN_RELATIVE = 0.4


def _timed(fn, *args):
    start = time.perf_counter()
    value = fn(*args)
    return value, time.perf_counter() - start


def _poll_status(port, stop, latencies):
    while not stop.is_set():
        start = time.perf_counter()
        try:
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/status", timeout=5) as resp:
                json.loads(resp.read())
            latencies.append(time.perf_counter() - start)
        except OSError:
            pass
        time.sleep(0.05)


def test_daemon_ingest_keeps_offline_throughput(benchmark, tmp_path):
    profile = TrafficProfile(duration=max(3.0, 8.0 * BENCH_SCALE),
                             flow_arrival_rate=2000.0, name="serve-bench")
    store = generate_trace_store(tmp_path / "store", profile, seed=17,
                                 segment_duration=2.0, time_bin=TIME_BIN)
    capacity, _ = runner.calibrate_capacity(
        QUERY_SET.split(","), store.to_trace(), time_bin=TIME_BIN)
    config = runner.system_config(queries=QUERY_SET, seed=9,
                                  cycles_per_second=capacity * 0.5)

    def _offline():
        session = config.build().open_session(time_bin=TIME_BIN,
                                              name="offline")
        return runner.ingest_trace(session, store)

    def _daemon():
        daemon = MonitorDaemon(
            config, ReplayFeed(store, time_bin=TIME_BIN), name="bench")
        box = {}

        def drive():
            box["result"] = asyncio.run(daemon.run())

        thread = threading.Thread(target=drive)
        thread.start()
        while daemon.bound_port == 0 and thread.is_alive():
            time.sleep(0.005)
        stop, latencies = threading.Event(), []
        poller = threading.Thread(target=_poll_status,
                                  args=(daemon.bound_port, stop, latencies))
        poller.start()
        thread.join()
        stop.set()
        poller.join()
        return box["result"], latencies, daemon

    offline_result, offline_seconds = _timed(_offline)
    ((daemon_result, latencies, daemon), daemon_seconds), _ = \
        benchmark.pedantic(
            lambda: (_timed(_daemon), None),
            rounds=1, iterations=1, warmup_rounds=0)

    # Correctness first: the service path is the offline path, bit for bit.
    assert_results_identical(offline_result, daemon_result, "serve")

    bins = len(daemon_result.bins)
    relative = offline_seconds / daemon_seconds
    max_status = max(latencies) if latencies else 0.0
    print()
    print(f"offline ingest: {offline_seconds:.2f}s | daemon ingest "
          f"(ops API live, {len(latencies)} status polls): "
          f"{daemon_seconds:.2f}s | relative throughput {relative:.2f}x "
          f"(floor {MIN_RELATIVE}x) | {bins} bins, "
          f"{daemon_result.total_packets:,} packets | slowest /status "
          f"{max_status * 1000:.0f} ms")
    record_result("serve_ingest", daemon_seconds,
                  speedup=relative,
                  bin_seconds=daemon.session.system.profiler.bin_seconds,
                  offline_seconds=offline_seconds,
                  required_relative=MIN_RELATIVE,
                  bins=bins,
                  bins_per_second=bins / daemon_seconds,
                  packets=daemon_result.total_packets,
                  status_polls=len(latencies),
                  max_status_seconds=max_status)
    assert relative >= MIN_RELATIVE
