"""Benchmark: single-stream throughput, 1 shard versus 4 process-backed shards.

The parallel scenario engine (bench_parallel.py) only parallelises *across*
independent experiment cells; one stream was still bound to one core.  The
sharded pipeline removes that bound: the stream is flow-hash partitioned
over 4 shard workers on a fork pool, each running the full predict/shed
pipeline on its slice, and the per-shard results merge into one
stream-global execution.

The workload is a dense header-only stream (~35k packets/s) so per-packet
work dominates the per-bin fixed costs every shard must pay (feature
extraction, MLR fit, controller) — the regime sharding exists for.  The
acceptance bar is >= ~2x single-stream wall-clock throughput with 4
process-backed shards on a multicore machine; sharding needs hardware to
shard onto, so the bar scales with the host: ~2x on >= 4 cores, a weaker
parallelism floor on 2-3 cores, and on a single-core host only a sanity
floor applies (4 time-sliced pipelines cannot beat 1 — the run then just
pins that the pooled path works and merges a faithful result).
"""

import os
import time

from conftest import BENCH_SCALE, record_result

from repro.experiments import runner
from repro.monitor.sharding import ShardedSystem
from repro.queries import make_query
from repro.traffic import generate_trace
from repro.traffic.generator import TrafficProfile

CORES = os.cpu_count() or 1
if CORES >= 4:
    MIN_SPEEDUP = 1.8
elif CORES >= 2:
    MIN_SPEEDUP = 1.2
else:
    MIN_SPEEDUP = 0.2
if os.environ.get("CI"):
    # Shared CI runners are noisy neighbours; the smoke job is a regression
    # tripwire, not a performance gate.
    MIN_SPEEDUP = min(MIN_SPEEDUP, 1.2)

QUERY_SET = ("counter", "flows", "top-k", "p2p-detector", "application")
NUM_SHARDS = 4


def _factory():
    return [make_query(name) for name in QUERY_SET]


def _dense_stream():
    """A dense single stream: high packet rate, header-only columns."""
    profile = TrafficProfile(
        duration=max(1.5, 3.0 * BENCH_SCALE),
        flow_arrival_rate=10000.0,
        with_payloads=False,
        name="dense-stream",
    )
    return generate_trace(profile, seed=77)


def _timed_run(system, trace):
    start = time.perf_counter()
    result = system.run(trace)
    return result, time.perf_counter() - start


def test_sharded_single_stream_throughput(benchmark):
    trace = _dense_stream()
    capacity, _ = runner.calibrate_capacity(QUERY_SET, trace)
    config = runner.system_config(cycles_per_second=capacity * 0.5,
                                  shard_rebalance=False, seed=5)
    # Warm the shared per-batch caches (bin slices, hashes, partitions) so
    # both timed runs see the same cache state and the comparison is fair.
    ShardedSystem(_factory, config=config, num_shards=1).run(trace)
    for batch in trace.batch_list(runner.TIME_BIN):
        batch.partition(NUM_SHARDS)

    baseline, baseline_seconds = _timed_run(
        ShardedSystem(_factory, config=config, num_shards=1), trace)
    sharded_system = ShardedSystem(_factory, config=config,
                                   num_shards=NUM_SHARDS,
                                   n_workers=NUM_SHARDS,
                                   respect_cores=False)
    (sharded, sharded_seconds), _ = benchmark.pedantic(
        lambda: (_timed_run(sharded_system, trace), None),
        rounds=1, iterations=1, warmup_rounds=0)

    speedup = baseline_seconds / sharded_seconds
    throughput = len(trace) / sharded_seconds
    print()
    print(f"1 shard: {baseline_seconds:.2f}s | {NUM_SHARDS} shards "
          f"({NUM_SHARDS} workers): {sharded_seconds:.2f}s | speedup "
          f"{speedup:.2f}x | {throughput:,.0f} pkt/s "
          f"(required {MIN_SPEEDUP:.2f}x on {CORES} cpu(s))")
    record_result("sharded_single_stream", sharded_seconds,
                  speedup=speedup, baseline_seconds=baseline_seconds,
                  packets_per_second=throughput,
                  required_speedup=MIN_SPEEDUP)

    # The merged execution must still be a faithful view of the stream.
    assert sharded.total_packets == baseline.total_packets
    assert len(sharded.bins) == len(baseline.bins)
    assert set(sharded.query_logs) == set(baseline.query_logs)
    counter_log = sharded.query_logs["counter"]
    assert len(counter_log) == len(baseline.query_logs["counter"])
    for merged, plain in zip(counter_log.results,
                             baseline.query_logs["counter"].results):
        # Both systems shed, so the estimates differ; the merged stream
        # totals must still be in the same ballpark as the unsharded ones.
        assert merged["packets"] >= 0.0 and plain["packets"] >= 0.0
    assert speedup >= MIN_SPEEDUP


def test_sharded_serial_equals_pooled(benchmark):
    """The pooled path must return exactly what in-process shards return."""
    trace = _dense_stream()
    capacity, _ = runner.calibrate_capacity(QUERY_SET, trace)
    config = runner.system_config(cycles_per_second=capacity * 0.5,
                                  shard_rebalance=False, seed=9)
    in_process = ShardedSystem(_factory, config=config,
                               num_shards=NUM_SHARDS).run(trace)
    pooled = benchmark.pedantic(
        lambda: ShardedSystem(_factory, config=config, num_shards=NUM_SHARDS,
                              n_workers=NUM_SHARDS,
                              respect_cores=False).run(trace),
        rounds=1, iterations=1, warmup_rounds=0)
    assert pooled.total_packets == in_process.total_packets
    for name, log in in_process.query_logs.items():
        assert pooled.query_logs[name].results == log.results
