"""Benchmark: the parallel scenario engine versus naive serial sweeps.

The serial baseline executes each cell of a 12-cell scenario matrix the way
the public per-cell API is used today: every cell independently synthesises
its workload trace and calls :func:`repro.experiments.runner.run_with_overload`,
which calibrates the cycle capacity (a full reference execution) before the
evaluated run.  The engine (:class:`repro.experiments.parallel.ParallelRunner`)
instead hoists trace synthesis and calibration out of the cells — once per
trace group — shares the memoised batch/hash/filter caches between the runs
of a group, and shards the independent cell executions across a process pool.

The acceptance bar is a >= 2x wall-clock speedup with 4 workers on the
12-cell matrix.  Sharding needs hardware to shard onto: on hosts with at
least two cores the 2x bar applies as stated (amortisation plus genuine
parallelism clear it comfortably); on a degenerate single-core host the
engine clamps the pool to the core count (forking would only add overhead),
so only the shared-work amortisation floor of 1.3x is required there.
"""

import os
import time

from conftest import BENCH_SCALE, record_result

from repro.experiments import parallel, runner, scenarios

#: Required wall-clock advantage of the engine over the naive serial sweep.
#: On shared CI runners the bar is relaxed: the smoke job is a regression
#: tripwire, and a noisy-neighbor stall must not fail a correct build.
MIN_SPEEDUP = 2.0 if (os.cpu_count() or 1) >= 2 else 1.3
if os.environ.get("CI"):
    MIN_SPEEDUP = min(MIN_SPEEDUP, 1.5)

#: The 12-cell demonstration matrix: one payload trace group swept over
#: 2 overloads x 3 modes x 2 allocation strategies.
MATRIX = parallel.ScenarioMatrix(
    traces=("cesca-payload",),
    overloads=(0.2, 0.5),
    modes=("predictive", "reactive", "original"),
    strategies=("eq_srates", "mmfs_pkt"),
    queries=("counter", "flows", "top-k", "pattern-search", "p2p-detector"),
    scale=max(0.25, 0.6 * BENCH_SCALE),
    base_seed=1234,
)


def _naive_serial(matrix):
    """One independent end-to-end execution per cell (the pre-engine idiom)."""
    rows = []
    for cell in matrix.cells():
        trace = scenarios.build_workload(cell.trace,
                                         seed=matrix.trace_seed(cell.trace),
                                         scale=cell.scale)
        result, reference = runner.run_with_overload(
            cell.queries, trace, cell.overload, time_bin=cell.time_bin,
            config=cell.to_config())
        rows.append((cell.cell_id, runner.accuracy_by_query(result, reference)))
    return rows


def _timed(fn, *args):
    start = time.perf_counter()
    value = fn(*args)
    return value, time.perf_counter() - start


def test_parallel_engine_speedup(benchmark):
    parallel.clear_caches()
    naive_rows, naive_seconds = _timed(_naive_serial, MATRIX)

    parallel.clear_caches()
    engine = parallel.ParallelRunner(n_workers=4)
    (result, engine_seconds), _ = benchmark.pedantic(
        lambda: (_timed(engine.run, MATRIX), None),
        rounds=1, iterations=1, warmup_rounds=0)

    speedup = naive_seconds / engine_seconds
    print()
    print(result.summary())
    print(f"naive serial: {naive_seconds:.2f}s | engine (4 workers): "
          f"{engine_seconds:.2f}s | speedup: {speedup:.2f}x "
          f"(required {MIN_SPEEDUP:.2f}x on {os.cpu_count()} cpu(s))")
    record_result("parallel_engine_12_cells", engine_seconds,
                  speedup=speedup, baseline_seconds=naive_seconds,
                  required_speedup=MIN_SPEEDUP)
    assert len(result) == 12
    assert len(naive_rows) == 12
    # The engine must agree with the naive path cell by cell: same trace
    # seeds, same calibrated capacity, same system seeds.
    for (cell_id, naive_accuracy), cell_result in zip(naive_rows, result):
        assert cell_id == cell_result.cell.cell_id
        assert naive_accuracy == cell_result.accuracy
    assert speedup >= MIN_SPEEDUP


def test_engine_scales_with_workers(benchmark):
    """Serial engine and pooled engine return identical structured results."""
    parallel.clear_caches()
    serial = parallel.ParallelRunner(n_workers=1)
    matrix = parallel.ScenarioMatrix(
        traces=("mixed-ddos-p2p",), overloads=(0.4,),
        modes=("predictive", "reactive"), scale=max(0.2, 0.4 * BENCH_SCALE),
        base_seed=99)
    serial_result = benchmark.pedantic(lambda: serial.run(matrix),
                                       rounds=1, iterations=1,
                                       warmup_rounds=0)
    pooled_result = parallel.ParallelRunner(n_workers=2,
                                            respect_cores=False).run(matrix)
    print()
    print(serial_result.summary())
    for a, b in zip(serial_result, pooled_result):
        assert a.cell == b.cell
        assert a.accuracy == b.accuracy
        assert a.drop_fraction == b.drop_fraction
