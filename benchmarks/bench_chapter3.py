"""Benchmarks: Chapter 3 — the prediction system (Tables 3.2-3.4, Figs 3.1-3.15)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import chapter3, reporting


def test_fig_3_1_unknown_query_anomaly(benchmark):
    result = run_once(benchmark, chapter3.figure_3_1_unknown_query_anomaly,
                      scale=BENCH_SCALE)
    corr = result["correlation_with_cycles"]
    print()
    print("Figure 3.1 — correlation of CPU usage with candidate features:", corr)
    assert corr["five_tuple_flows"] > corr["bytes"]


def test_fig_3_4_slr_vs_mlr(benchmark):
    result = run_once(benchmark, chapter3.figure_3_4_slr_vs_mlr,
                      scale=BENCH_SCALE)
    print()
    print(f"Figure 3.4 — flows query: SLR error {result['slr_mean_error']:.4f}"
          f" vs MLR error {result['mlr_mean_error']:.4f}")
    assert result["mlr_mean_error"] <= result["slr_mean_error"]


def test_fig_3_5_parameter_sweep(benchmark):
    result = run_once(benchmark, chapter3.figure_3_5_parameter_sweep,
                      scale=BENCH_SCALE,
                      histories=(10, 30, 60), thresholds=(0.0, 0.6, 0.8),
                      query_names=("counter", "flows", "top-k"))
    print()
    print(reporting.format_table(result["history_sweep"],
                                 ["history", "mean_error", "mean_cost_cycles"],
                                 title="Figure 3.5 (left) — history sweep"))
    print(reporting.format_table(result["threshold_sweep"],
                                 ["threshold", "mean_error", "mean_cost_cycles"],
                                 title="Figure 3.5 (right) — FCBF threshold sweep"))
    costs = [row["mean_cost_cycles"] for row in result["history_sweep"]]
    assert costs[-1] >= costs[0]


def test_fig_3_7_error_over_time(benchmark):
    result = run_once(benchmark, chapter3.figure_3_7_error_over_time,
                      scale=BENCH_SCALE,
                      query_names=("counter", "flows", "top-k", "trace"))
    print()
    for trace_name, data in result.items():
        print(f"Figure 3.7/3.8 — {trace_name}: avg error "
              f"{data['average_error']:.4f}, max {data['max_error']:.4f}")
        assert data["average_error"] < 0.2


def test_table_3_2_error_by_query(benchmark):
    result = run_once(benchmark, chapter3.table_3_2_error_by_query,
                      scale=BENCH_SCALE)
    print()
    print(reporting.format_table(result["rows"],
                                 ["query", "mean_error", "std_error",
                                  "selected_features"],
                                 title="Table 3.2 — prediction error by query"))
    errors = {row["query"]: row["mean_error"] for row in result["rows"]}
    assert errors["counter"] < 0.05


def test_fig_3_10_ewma_alpha_sweep(benchmark):
    result = run_once(benchmark, chapter3.figure_3_10_ewma_alpha_sweep,
                      scale=BENCH_SCALE)
    print()
    print(reporting.format_table(result["rows"], ["alpha", "mean_error"],
                                 title="Figure 3.10 — EWMA error vs alpha"))


def test_table_3_3_baseline_comparison(benchmark):
    result = run_once(benchmark, chapter3.table_3_3_error_stats,
                      scale=BENCH_SCALE)
    print()
    print(reporting.format_table(result["rows"],
                                 ["query", "ewma_mean", "slr_mean", "mlr_mean"],
                                 title="Table 3.3 — EWMA vs SLR vs MLR+FCBF"))
    means = result["mean_error"]
    print("overall:", {k: round(v, 4) for k, v in means.items()})
    assert means["mlr"] <= means["ewma"]


def test_fig_3_13_ddos_robustness(benchmark):
    result = run_once(benchmark, chapter3.figure_3_13_ddos_robustness,
                      scale=BENCH_SCALE)
    print()
    for method in ("ewma", "slr", "mlr"):
        print(f"Figure 3.13-3.15 — {method} mean error under DDoS: "
              f"{result[method]['mean_error']:.4f}")
    assert result["mlr"]["mean_error"] <= result["ewma"]["mean_error"]


def test_table_3_4_prediction_overhead(benchmark):
    result = run_once(benchmark, chapter3.table_3_4_prediction_overhead,
                      scale=BENCH_SCALE,
                      query_names=("counter", "flows", "top-k", "trace"))
    print()
    print(f"Table 3.4 — prediction overhead fraction: "
          f"{result['prediction_overhead_fraction']:.3f}")
    print(reporting.format_table(result["rows"],
                                 ["phase", "fraction_of_prediction"]))
    assert result["prediction_overhead_fraction"] < 0.35
