"""Benchmarks: Chapter 5 — fairness and Nash equilibrium (Table 5.2, Figs 5.1-5.5)."""

import numpy as np
from conftest import BENCH_SCALE, run_once

from repro.experiments import chapter5, reporting


def test_fig_5_1_simulation_surface(benchmark):
    result = run_once(benchmark, chapter5.figure_5_1_simulation_surface)
    print()
    print("Figure 5.1 — max advantage of mmfs_pkt over mmfs_cpu "
          f"(minimum accuracy): {result['minimum_accuracy_difference'].max():.3f}")
    assert np.all(result["minimum_accuracy_difference"] >= -1e-9)
    assert result["minimum_accuracy_difference"].max() > 0.1


def test_fig_5_2_real_surface(benchmark):
    result = run_once(benchmark, chapter5.figure_5_2_real_surface,
                      scale=0.4, min_rates=(0.1, 0.5), overloads=(0.3, 0.6),
                      n_counters=3)
    print()
    print("Figure 5.2 — minimum-accuracy difference (pkt - cpu):")
    print(result["minimum_accuracy_difference"])
    assert result["minimum_accuracy_difference"].min() >= -0.15


def test_table_5_2_min_srates(benchmark):
    result = run_once(benchmark, chapter5.table_5_2_min_srates,
                      scale=BENCH_SCALE)
    print()
    print(reporting.format_table(result["rows"],
                                 ["query", "min_sampling_rate"],
                                 title="Table 5.2 — minimum sampling rates "
                                       "(5% target error)"))
    rows = {row["query"]: row["min_sampling_rate"] for row in result["rows"]}
    assert rows["counter"] <= rows["top-k"]


def test_fig_5_4_strategy_comparison(benchmark):
    result = run_once(benchmark, chapter5.figure_5_4_strategy_comparison,
                      scale=0.4, overloads=(0.3, 0.6),
                      query_names=("application", "counter", "flows",
                                   "high-watermark", "top-k", "trace"))
    print()
    for label in ("no_lshed", "reactive", "eq_srates", "mmfs_cpu", "mmfs_pkt"):
        print(f"Figure 5.4 — {label}: avg {result['average_accuracy'][label]}"
              f" min {result['minimum_accuracy'][label]}")
    # The load shedding systems beat the original system on average accuracy
    # at every overload level.
    for index in range(len(result["overloads"])):
        assert max(result["average_accuracy"]["mmfs_pkt"][index],
                   result["average_accuracy"]["eq_srates"][index]) >= \
            result["average_accuracy"]["no_lshed"][index] - 0.05


def test_fig_5_5_autofocus_over_time(benchmark):
    result = run_once(benchmark, chapter5.figure_5_5_autofocus_over_time,
                      scale=0.4, overload=0.2,
                      query_names=("autofocus", "counter", "flows", "top-k",
                                   "trace"))
    print()
    print("Figure 5.5 — mean autofocus accuracy per strategy:",
          {k: round(v, 3) for k, v in result["mean_accuracy"].items()})
    assert result["mean_accuracy"]["mmfs_pkt"] >= \
        result["mean_accuracy"]["no_lshed"] - 0.05


def test_nash_equilibrium(benchmark):
    result = run_once(benchmark, chapter5.nash_equilibrium_check,
                      n_players=4, grid=100)
    print()
    print("Theorem 5.1 — equal-share profile is NE:",
          result["equal_share_is_nash"],
          "; greedy profile is NE:", result["greedy_profile_is_nash"],
          "; dynamics converged in", result["dynamics_rounds"], "rounds")
    assert result["equal_share_is_nash"]
    assert not result["greedy_profile_is_nash"]
    assert result["dynamics_converged"]
    assert result["distance_to_equal_share"] < 0.05
