"""Benchmark: Figure 2.2 — per-query cost profile."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import chapter2, reporting


def test_fig_2_2_query_costs(benchmark):
    result = run_once(benchmark, chapter2.figure_2_2_query_costs,
                      scale=BENCH_SCALE)
    print()
    print(reporting.format_table(result["rows"],
                                 ["query", "cycles_per_second"],
                                 title="Figure 2.2 — average cycles/s per query",
                                 float_format="{:.3e}"))
    costs = result["cycles_per_second"]
    # Shape check: payload-inspection queries dominate, counters are cheapest.
    assert costs["p2p-detector"] > costs["counter"]
    assert costs["pattern-search"] > costs["application"]
