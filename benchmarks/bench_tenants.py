"""Multi-tenant allocation engine: columnar kernels vs the object-per-bin path.

The vectorised allocation engine (``repro.core.fairness`` array kernels plus
the two-tier tenant allocator in ``repro.core.tenancy``) replaces the
historical per-bin flow of "construct one QueryDemand object per query, then
run a python loop over them".  This benchmark sweeps query count x tenant
count and times the allocation stage alone, exactly as it runs inside
``LoadSheddingController.plan_arrays``:

* legacy path: build ``QueryDemand`` objects for the bin, then allocate with
  the scalar reference implementations (``SCALAR_REFERENCE`` strategies for
  the flat case, ``two_tier_scalar`` for tenants);
* columnar path: refresh the preallocated prediction column and call the
  flat array kernel / ``two_tier_allocate`` with precomputed tie-break ranks.

Both paths must agree (bit-identical for the flat kernels, 1e-9 for the
two-tier water-fill) before any timing is recorded.  The gate required by the
issue: >=5x at 500 queries / 100 tenants.  Per-bin latency percentiles of the
columnar path are recorded into ``BENCH_report.json`` for every sweep point.
"""

import time

import numpy as np
import pytest

from conftest import BENCH_SCALE, record_result

from repro.core.fairness import (ARRAY_STRATEGIES, QueryDemand,
                                 SCALAR_REFERENCE, name_ranks)
from repro.core.tenancy import (TenantAssignment, TenantGroup, TenantRegistry,
                                two_tier_allocate, two_tier_scalar)

#: (query count, tenant count) sweep of the allocation stage.  Tenant count 0
#: exercises the flat (untenanted) kernels against the scalar references.
SWEEP = (
    (10, 0),
    (10, 2),
    (100, 0),
    (100, 20),
    (500, 0),
    (500, 2),
    (500, 20),
    (500, 100),
)

#: The issue's bar: the columnar engine must beat the object-per-bin path by
#: at least this factor at the top of the sweep (500 queries, 100 tenants).
REQUIRED_SPEEDUP = 5.0
GATE_POINT = (500, 100)

#: Bins timed per sweep point (prediction values change every bin, as in a
#: real run where the EWMA/SLR predictors refresh the demand column).
BINS = max(8, int(round(40 * BENCH_SCALE)))


def _make_workload(n_queries, n_tenants, seed):
    """Columns, registry and per-bin prediction series for one sweep point."""
    rng = np.random.default_rng(seed)
    names = [f"q{i:04d}" for i in range(n_queries)]
    mins = np.where(rng.random(n_queries) < 0.3,
                    rng.uniform(0.01, 0.2, n_queries), 0.0)
    base = rng.uniform(1e3, 1e6, n_queries)
    bins = [base * rng.uniform(0.5, 1.5, n_queries) for _ in range(BINS)]
    # Binding capacity: ~30% of the mean bin demand, so the water-fill and
    # the disable rule both do real work every bin.
    capacity = 0.3 * float(np.mean([p.sum() for p in bins]))
    if n_tenants:
        groups = tuple(
            TenantGroup(
                name=f"tenant-{index:03d}",
                queries=tuple(("counter", {"name": member})
                              for member in names[index::n_tenants]),
                weight=float(1.0 + (index % 3)),
                budget_share=(0.9 / n_tenants if index % 4 == 0 else None),
                min_rate=(0.01 if index % 5 == 0 else 0.0),
            )
            for index in range(n_tenants)
        )
        registry = TenantRegistry(groups)
        ids = np.array([registry.slot(registry.declared_tenant_of[name])
                        for name in names], dtype=np.intp)
        mins = np.maximum(
            mins, np.array([registry.min_rate_for(name) for name in names]))
    else:
        registry = None
        ids = None
    return names, mins, bins, capacity, registry, ids


def _legacy_bin(key, names, predicted, mins, capacity, registry, ids):
    """One bin of the historical path: objects first, python loops after."""
    demands = [QueryDemand(names[i], float(predicted[i]), float(mins[i]))
               for i in range(len(names))]
    if registry is None:
        allocation = SCALAR_REFERENCE[key](demands, capacity)
    else:
        allocation = two_tier_scalar(names, predicted, mins, ids, registry,
                                     capacity, packet_fair=(key == "mmfs_pkt"))
    return allocation


def _columnar_bin(key, names, pred_col, predicted, mins, capacity,
                  assignment, rank):
    """One bin of the engine path, as driven by ``plan_arrays``."""
    pred_col[:] = predicted  # the predictor refresh of the demand column
    if assignment is None:
        return ARRAY_STRATEGIES[key](names, pred_col, mins, capacity,
                                     rank=rank)
    return assignment.allocate(key, names, pred_col, mins, capacity,
                               rank=rank)


def _check_agreement(key, legacy, columnar, tenanted):
    legacy_rates = np.array([legacy.rate(n) for n in legacy.rates])
    columnar_rates = np.array([columnar.rate(n) for n in legacy.rates])
    if tenanted:
        np.testing.assert_allclose(columnar_rates, legacy_rates,
                                   rtol=0.0, atol=1e-9)
        assert set(legacy.disabled) == set(columnar.disabled)
    else:
        # Flat kernels reproduce the scalar references bit for bit.
        assert legacy.rates == columnar.rates
        assert legacy.disabled == columnar.disabled
        assert legacy.total_cycles == columnar.total_cycles


def _sweep_point(key, n_queries, n_tenants, seed):
    names, mins, bins, capacity, registry, ids = _make_workload(
        n_queries, n_tenants, seed)
    rank = name_ranks(names)
    pred_col = np.empty(n_queries, dtype=np.float64)
    assignment = (TenantAssignment(registry, ids)
                  if registry is not None else None)

    _check_agreement(
        key,
        _legacy_bin(key, names, bins[0], mins, capacity, registry, ids),
        _columnar_bin(key, names, pred_col, bins[0], mins, capacity,
                      assignment, rank),
        tenanted=registry is not None)

    legacy_seconds = 0.0
    for predicted in bins:
        start = time.perf_counter()
        _legacy_bin(key, names, predicted, mins, capacity, registry, ids)
        legacy_seconds += time.perf_counter() - start

    bin_seconds = []
    for predicted in bins:
        start = time.perf_counter()
        _columnar_bin(key, names, pred_col, predicted, mins, capacity,
                      assignment, rank)
        bin_seconds.append(time.perf_counter() - start)
    columnar_seconds = float(sum(bin_seconds))
    speedup = legacy_seconds / columnar_seconds if columnar_seconds else 0.0
    return legacy_seconds, columnar_seconds, bin_seconds, speedup


@pytest.mark.benchmark(group="tenants")
def test_tenant_allocation_engine(benchmark):
    """Columnar allocation >=5x over object-per-bin at 500 queries/100 tenants."""
    key = "mmfs_cpu"
    rows = []

    def _run_sweep():
        for n_queries, n_tenants in SWEEP:
            legacy_s, columnar_s, bin_seconds, speedup = _sweep_point(
                key, n_queries, n_tenants, seed=17 + n_queries + n_tenants)
            rows.append((n_queries, n_tenants, legacy_s, columnar_s,
                         bin_seconds, speedup))
        return rows

    benchmark.pedantic(_run_sweep, rounds=1, iterations=1, warmup_rounds=0)

    print()
    print(f"Allocation stage ({key}), {BINS} bins per point")
    print(f"{'queries':>8} {'tenants':>8} {'legacy s':>10} "
          f"{'columnar s':>11} {'speedup':>8}")
    gate_speedup = None
    for n_queries, n_tenants, legacy_s, columnar_s, bin_seconds, speedup \
            in rows:
        print(f"{n_queries:>8} {n_tenants:>8} {legacy_s:>10.4f} "
              f"{columnar_s:>11.4f} {speedup:>7.1f}x")
        gated = (n_queries, n_tenants) == GATE_POINT
        if gated:
            gate_speedup = speedup
        record_result(
            f"tenants_alloc_{n_queries}q_{n_tenants}t",
            columnar_s,
            speedup=speedup,
            bin_seconds=bin_seconds,
            legacy_seconds=legacy_s,
            queries=n_queries,
            tenants=n_tenants,
            bins=BINS,
            **({"required_speedup": REQUIRED_SPEEDUP} if gated else {}),
        )

    assert gate_speedup is not None
    assert gate_speedup >= REQUIRED_SPEEDUP, (
        f"columnar allocation speedup {gate_speedup:.1f}x at "
        f"{GATE_POINT[0]} queries/{GATE_POINT[1]} tenants is below the "
        f"required {REQUIRED_SPEEDUP:.0f}x")


@pytest.mark.benchmark(group="tenants")
@pytest.mark.parametrize("key", sorted(ARRAY_STRATEGIES))
def test_flat_kernels_bit_identical_at_scale(benchmark, key):
    """Every flat kernel stays bit-identical to its scalar reference at 500q."""
    names, mins, bins, capacity, _, _ = _make_workload(500, 0, seed=5)
    rank = name_ranks(names)
    pred_col = np.empty(500, dtype=np.float64)

    def _check_all():
        for predicted in bins:
            legacy = _legacy_bin(key, names, predicted, mins, capacity,
                                 None, None)
            columnar = _columnar_bin(key, names, pred_col, predicted, mins,
                                     capacity, None, rank)
            _check_agreement(key, legacy, columnar, tenanted=False)
        return len(bins)

    checked = benchmark.pedantic(_check_all, rounds=1, iterations=1,
                                 warmup_rounds=0)
    assert checked == BINS
