"""Benchmarks: Chapter 4 — the load shedding system (Table 4.1, Figs 4.1-4.6)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import chapter4, reporting, scenarios


def _bundle(scale=BENCH_SCALE, overload=0.5):
    trace = scenarios.payload_trace(scale=scale)
    return chapter4._three_mode_runs(trace, overload, chapter4.CHAPTER4_QUERIES)


def test_fig_4_1_cpu_cdf(benchmark):
    result = run_once(benchmark, chapter4.figure_4_1_cpu_cdf,
                      scale=BENCH_SCALE, overload=0.5)
    print()
    print("Figure 4.1 — probability of exceeding the per-batch CPU limit:",
          {k: round(v, 3) for k, v in
           result["probability_exceeding_limit"].items()})
    assert result["probability_exceeding_limit"]["predictive"] <= \
        result["probability_exceeding_limit"]["original"]


def test_fig_4_2_drops(benchmark):
    result = run_once(benchmark, chapter4.figure_4_2_drops,
                      scale=BENCH_SCALE, overload=0.5)
    print()
    totals = result["totals"]
    for mode, stats in totals.items():
        print(f"Figure 4.2 — {mode}: dropped {stats['dropped_packets']} "
              f"({stats['drop_fraction']:.1%}), unsampled "
              f"{stats['unsampled_packets']:.0f}")
    assert totals["predictive"]["drop_fraction"] < 0.02
    assert totals["original"]["drop_fraction"] > 0.1


def test_table_4_1_accuracy_by_method(benchmark):
    result = run_once(benchmark, chapter4.table_4_1_accuracy_by_method,
                      scale=BENCH_SCALE, overload=0.5)
    print()
    print(reporting.format_table(result["rows"],
                                 ["query", "predictive", "original", "reactive"],
                                 title="Table 4.1 / Figure 4.3 — accuracy error"))
    print("mean error per method:",
          {k: round(v, 4) for k, v in result["mean_error"].items()})
    assert result["mean_error"]["predictive"] < result["mean_error"]["original"]


def test_fig_4_4_cpu_usage(benchmark):
    result = run_once(benchmark, chapter4.figure_4_4_cpu_usage,
                      scale=BENCH_SCALE, overload=0.5)
    print()
    total = result["series"]["total_cycles"]
    print(f"Figure 4.4 — mean CPU after shedding {total.mean():.3e} vs limit "
          f"{result['cpu_limit_per_batch']:.3e}; predicted demand "
          f"{result['series']['predicted_cycles'].mean():.3e}")
    assert result["dropped_packets"] == 0
    # Demand exceeds the limit, usage stays near/below it.
    assert result["series"]["predicted_cycles"].mean() > \
        total.mean() * 0.9


def test_fig_4_5_syn_flood(benchmark):
    result = run_once(benchmark, chapter4.figure_4_5_syn_flood,
                      scale=BENCH_SCALE)
    print()
    print(f"Figure 4.5/4.6 — flows error with shedding "
          f"{result['flows_error_with_shedding']:.3f}, without "
          f"{result['flows_error_without_shedding']:.3f}")
    assert result["flows_error_with_shedding"] < \
        result["flows_error_without_shedding"]
    assert result["dropped_packets_with_shedding"] <= \
        result["dropped_packets_without_shedding"]
