"""Compare a benchmark report against the committed baseline.

CI's bench-smoke job regenerates ``BENCH_report.json`` from scratch at
every commit, which records the perf trajectory but does not *enforce*
it.  This script closes that loop: it diffs the job's fresh report
against the baseline committed at the repo root and fails when any gated
metric — one whose baseline entry carries a ``required_speedup`` bar —
lost more than ``DEFAULT_TOLERANCE`` of its baseline speedup.

The gate is deliberately looser than the benchmarks' own absolute bars
(for example ``bench_many_queries`` asserts >= 3x outright): those bars
catch catastrophic breakage, while this diff catches the slow bleed — a
change that drags a 7x speedup down to 4x still clears the absolute bar
but loses half the optimisation this repo exists to demonstrate.

Usage::

    python benchmarks/bench_compare.py CURRENT BASELINE [--tolerance 0.75]

Exit status 0 when every gated metric holds, 1 on any regression.
"""

import argparse
import json
import sys
from pathlib import Path

#: A gated metric may keep as little as this fraction of its baseline
#: speedup before the comparison fails (0.75 = fail on >25% regression).
DEFAULT_TOLERANCE = 0.75


def load_results(path):
    payload = json.loads(Path(path).read_text())
    return payload.get("results", {})


def compare(current, baseline, tolerance=DEFAULT_TOLERANCE):
    """Return (lines, regressions) for the gated metrics of ``baseline``."""
    lines, regressions = [], []
    gated = sorted(name for name, entry in baseline.items()
                   if "required_speedup" in entry and "speedup" in entry)
    if not gated:
        lines.append("no gated metrics in baseline (nothing to compare)")
        return lines, regressions
    for name in gated:
        base = baseline[name]["speedup"]
        floor = base * tolerance
        entry = current.get(name)
        if entry is None or "speedup" not in entry:
            lines.append(f"  {name:40s} baseline {base:6.2f}x  "
                         "-- not measured in this job, skipped")
            continue
        now = entry["speedup"]
        status = "ok" if now >= floor else "REGRESSED"
        lines.append(f"  {name:40s} baseline {base:6.2f}x  "
                     f"current {now:6.2f}x  floor {floor:6.2f}x  {status}")
        if now < floor:
            regressions.append(name)
    return lines, regressions


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh BENCH_report.json from this job")
    parser.add_argument("baseline", help="committed baseline BENCH_report.json")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="fraction of baseline speedup a gated metric "
                             "must keep (default %(default)s)")
    args = parser.parse_args(argv)

    lines, regressions = compare(load_results(args.current),
                                 load_results(args.baseline),
                                 tolerance=args.tolerance)
    print(f"bench-compare (tolerance {args.tolerance:.0%} of baseline):")
    print("\n".join(lines))
    if regressions:
        print(f"FAIL: {len(regressions)} gated metric(s) regressed more "
              f"than {1 - args.tolerance:.0%}: {', '.join(regressions)}")
        return 1
    print("ok: all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
