"""Benchmark bootstrap: make ``src/`` importable and share tiny helpers.

Each benchmark regenerates one table or figure of the paper at a reduced
scale (shorter synthetic traces, coarser sweeps) and prints the reproduced
rows/series so they can be compared with the paper; see EXPERIMENTS.md.
"""

import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Scale factor applied to every benchmark workload (1.0 = the default
#: laptop-sized experiment of the harness).  Overridable via the
#: ``BENCH_SCALE`` environment variable so CI can run a fast smoke pass.
BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "0.5"))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
