"""Benchmark bootstrap: make ``src/`` importable and share tiny helpers.

Each benchmark regenerates one table or figure of the paper at a reduced
scale (shorter synthetic traces, coarser sweeps) and prints the reproduced
rows/series so they can be compared with the paper; see EXPERIMENTS.md.

Benchmarks additionally record their headline numbers (wall time, speedup
factors) with :func:`record_result`; at session end the accumulated results
are written to ``BENCH_report.json`` (path overridable via the
``BENCH_REPORT`` environment variable), merging with any results already
recorded there by earlier pytest invocations of the same CI job.  The CI
bench-smoke job uploads the file as a per-commit artifact, so the perf
trajectory of the project is recorded commit by commit.
"""

import json
import os
import platform
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Scale factor applied to every benchmark workload (1.0 = the default
#: laptop-sized experiment of the harness).  Overridable via the
#: ``BENCH_SCALE`` environment variable so CI can run a fast smoke pass.
BENCH_SCALE = float(os.environ.get("BENCH_SCALE", "0.5"))

#: Results recorded by the current pytest session, keyed by benchmark name.
_RESULTS = {}


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)


def record_result(name, seconds, speedup=None, bin_seconds=None, **extra):
    """Record one benchmark outcome for the per-commit ``BENCH_report.json``.

    ``seconds`` is the benchmark's headline wall time; ``speedup`` the
    factor over its stated baseline (omit when the benchmark has none);
    ``bin_seconds`` an optional per-bin latency series, summarised into
    ``latency`` (n/mean/p50/p95/p99/max) via :func:`repro.profile.summarize`;
    any extra keyword becomes an additional JSON field (counts, throughput,
    required bars, ...).
    """
    entry = {"seconds": float(seconds)}
    if speedup is not None:
        entry["speedup"] = float(speedup)
    if bin_seconds is not None:
        from repro.profile import summarize
        entry["latency"] = summarize(bin_seconds)
    entry.update(extra)
    _RESULTS[str(name)] = entry


def _report_path() -> Path:
    return Path(os.environ.get("BENCH_REPORT", "BENCH_report.json"))


def pytest_sessionfinish(session, exitstatus):
    """Merge this session's recorded results into the report file.

    CI runs each benchmark module as its own pytest invocation; merging
    (rather than overwriting) lets them all land in one artifact.
    """
    if not _RESULTS:
        return
    path = _report_path()
    report = {}
    if path.exists():
        try:
            report = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            report = {}
    report.setdefault("meta", {}).update({
        "bench_scale": BENCH_SCALE,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    })
    report.setdefault("results", {}).update(_RESULTS)
    path.write_text(json.dumps(report, indent=1, sort_keys=True))
    print(f"\n[bench] wrote {len(_RESULTS)} result(s) to {path}")
