"""Benchmark: per-query throughput, scalar-loop baseline versus kernels.

PR 5 rebased the stateful queries on the shared keyed-aggregation kernels
of ``repro.core.aggregate`` (sorted-array tables, distinct-fanout pairs,
batched payload scanning).  This benchmark re-creates the four formerly
scalar-loop implementations verbatim (per-packet / per-key Python loops
over dicts and sets) and races them against the kernel path on a dense
generated trace, pinning both the speedup and the bit-equality of the
results.

The acceptance bar is >= 5x on the formerly scalar-loop queries
(``p2p-detector``, ``super-sources``, ``autofocus``, ``pattern-search``)
at BENCH_SCALE >= 1; the CI smoke pass at a reduced scale only enforces a
regression floor, since tiny batches amortise the loop overhead less.
"""

import os
import time
from collections import defaultdict

import numpy as np
from conftest import BENCH_SCALE, record_result

from repro.core.sampling import scale_estimate
from repro.queries import make_query
from repro.queries.autofocus import PREFIX_LENGTHS, AutofocusQuery
from repro.queries.p2p_detector import P2P_PORTS, P2PDetectorQuery
from repro.queries.pattern_search import PatternSearchQuery
from repro.queries.super_sources import SuperSourcesQuery
from repro.traffic import generate_trace
from repro.traffic.generator import P2P_SIGNATURES, TrafficProfile

#: Required speedup for the formerly scalar-loop queries.  Sub-scale smoke
#: runs only enforce a floor (short batches amortise less, and shared CI
#: runners are noisy neighbours).
REQUIRED_SPEEDUP = 5.0 if BENCH_SCALE >= 1.0 and not os.environ.get("CI") \
    else 1.5


# ----------------------------------------------------------------------
# The pre-kernel implementations, verbatim (per-packet / per-key loops).
# ----------------------------------------------------------------------
class LegacyP2PDetectorQuery(P2PDetectorQuery):
    name = "p2p-detector-legacy"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._legacy_seen = set()
        self._legacy_hits = {}
        self._legacy_p2p = set()

    def _scan_batch(self, batch):
        n = len(batch)
        self.charge("hash_lookup", n)
        if n == 0:
            return
        keys = batch.aggregate_hashes(
            ("src_ip", "dst_ip", "src_port", "dst_port", "proto"))
        new_flows = set(int(k) for k in np.unique(keys)) - self._legacy_seen
        self.charge("hash_insert", len(new_flows))
        self._legacy_seen.update(new_flows)
        port_hit = np.isin(batch.dst_port, P2P_PORTS) | \
            np.isin(batch.src_port, P2P_PORTS)
        payloads = batch.payloads if batch.has_payloads else None
        scanned_bytes = 0
        for i in range(n):
            flow = int(keys[i])
            if flow in self._legacy_p2p:
                continue
            signature_hit = False
            if payloads is not None and payloads[i]:
                payload = payloads[i]
                scanned_bytes += len(payload)
                signature_hit = any(payload.find(sig) >= 0
                                    for sig in P2P_SIGNATURES)
            if signature_hit:
                hits = self._legacy_hits.get(flow, 0) + 1
                self._legacy_hits[flow] = hits
                if hits >= self.handshake_packets:
                    self._legacy_p2p.add(flow)
            elif payloads is None and bool(port_hit[i]):
                self._legacy_p2p.add(flow)
        self.charge("regex_byte", scanned_bytes * len(P2P_SIGNATURES))

    def interval_result(self):
        self.charge("flush")
        result = {
            "p2p_flows": sorted(self._legacy_p2p),
            "flows_seen": scale_estimate(len(self._legacy_seen),
                                         self._sampling_rate),
            "p2p_flow_count": scale_estimate(len(self._legacy_p2p),
                                             self._sampling_rate),
        }
        self._legacy_seen = set()
        self._legacy_hits = {}
        self._legacy_p2p = set()
        return result


class LegacySuperSourcesQuery(SuperSourcesQuery):
    name = "super-sources-legacy"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._destinations = defaultdict(set)

    def update(self, batch, sampling_rate):
        n = len(batch)
        self._sampling_rate = sampling_rate
        self.charge("hash_lookup", n)
        if n == 0:
            return
        pairs = np.stack([batch.src_ip.astype(np.int64),
                          batch.dst_ip.astype(np.int64)], axis=1)
        unique_pairs = np.unique(pairs, axis=0)
        inserts = 0
        for src, dst in unique_pairs:
            dst_set = self._destinations[int(src)]
            if int(dst) not in dst_set:
                dst_set.add(int(dst))
                inserts += 1
        self.charge("hash_insert", inserts)
        self.charge("hash_update", n - inserts if n > inserts else 0)

    def interval_result(self):
        self.charge("flush")
        fanout = {
            src: scale_estimate(len(dsts), self._sampling_rate)
            for src, dsts in self._destinations.items()
        }
        top = sorted(fanout.items(), key=lambda item: (-item[1], item[0]))
        result = {
            "fanout": dict(top[:self.top_n]),
            "sources": float(len(fanout)),
        }
        self._destinations = defaultdict(set)
        return result


class LegacyAutofocusQuery(AutofocusQuery):
    name = "autofocus-legacy"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._tables = {plen: defaultdict(float) for plen in PREFIX_LENGTHS}

    def update(self, batch, sampling_rate):
        n = len(batch)
        self.charge("tree_op", n * len(PREFIX_LENGTHS))
        if n == 0:
            return
        self._total_bytes += scale_estimate(batch.byte_count, sampling_rate)
        for plen in PREFIX_LENGTHS:
            shift = 32 - plen
            prefixes = (batch.dst_ip >> shift).astype(np.int64)
            unique, inverse = np.unique(prefixes, return_inverse=True)
            byte_counts = np.bincount(inverse, weights=batch.size)
            table = self._tables[plen]
            for prefix, volume in zip(unique, byte_counts):
                table[int(prefix)] += scale_estimate(volume, sampling_rate)

    def interval_result(self):
        self.charge("flush")
        self.charge("tree_op", sum(len(t) for t in self._tables.values()))
        threshold = self.threshold_fraction * max(self._total_bytes, 1.0)
        reported = []
        explained = {plen: set() for plen in PREFIX_LENGTHS}
        for level, plen in enumerate(PREFIX_LENGTHS):
            for prefix, volume in self._tables[plen].items():
                if volume < threshold:
                    continue
                if prefix in explained[plen]:
                    continue
                reported.append((prefix, plen))
                for coarser in PREFIX_LENGTHS[level + 1:]:
                    explained[coarser].add(prefix >> (plen - coarser))
        result = {"clusters": reported, "total_bytes": self._total_bytes}
        self._tables = {plen: defaultdict(float) for plen in PREFIX_LENGTHS}
        self._total_bytes = 0.0
        return result


class LegacyPatternSearchQuery(PatternSearchQuery):
    name = "pattern-search-legacy"

    def update(self, batch, sampling_rate):
        n = len(batch)
        self.charge("packet", n)
        self._packets_scanned += n
        if n == 0 or not batch.has_payloads:
            return
        scanned_bytes = 0
        matches = 0
        for payload in batch.payloads:
            scanned_bytes += len(payload)
            if payload and self._search(payload):
                matches += 1
        self.charge("regex_byte", scanned_bytes)
        self.charge("store_byte", matches * 64)
        self._bytes_scanned += scanned_bytes
        self._matches += matches


#: (registry kind, legacy factory, needs payloads, result comparison)
SCALAR_LOOP_QUERIES = (
    ("p2p-detector", LegacyP2PDetectorQuery, True, "exact"),
    ("super-sources", LegacySuperSourcesQuery, False, "exact"),
    ("autofocus", LegacyAutofocusQuery, False, "clusters-as-set"),
    ("pattern-search", LegacyPatternSearchQuery, True, "exact"),
)

#: Kernel-rebased queries benchmarked for the record (no loop baseline —
#: they were already vectorised before the kernel extraction).
KERNEL_ONLY_QUERIES = ("flows", "top-k", "application")


def _payload_trace():
    """Dense payload stream: high packet rate, access-link-sized payloads.

    Per-packet work dominates both implementations here; the per-packet
    Python overhead of the scalar loops (generator-based ``any`` over the
    signature set, one ``find`` call per payload) is the cost the batched
    sweep removes.
    """
    profile = TrafficProfile(duration=max(1.0, 2.0 * BENCH_SCALE),
                             flow_arrival_rate=12_000.0, with_payloads=True,
                             mean_payload_bytes=48, max_payload_bytes=96,
                             name="dense-payload")
    return generate_trace(profile, seed=41)


def _header_trace():
    """Dense header stream with high address diversity.

    Autofocus and super-sources cost scales with the number of distinct
    keys per batch; large host pools on both sides put the per-key loops
    of the legacy implementations in their worst (production-realistic:
    scans, spoofed floods) regime.
    """
    profile = TrafficProfile(duration=max(1.0, 2.0 * BENCH_SCALE),
                             flow_arrival_rate=12_000.0, with_payloads=False,
                             n_external_hosts=60_000, n_local_hosts=50_000,
                             zipf_exponent=0.4, name="dense-header")
    return generate_trace(profile, seed=42)


def _timed_standalone(query, batches):
    start = time.perf_counter()
    for batch in batches:
        query.update(batch, 1.0)
        query.consume_cycles()
    result = query.interval_result()
    query.consume_cycles()
    return result, time.perf_counter() - start


def _compare(kind, comparison, kernel_result, legacy_result):
    if comparison == "clusters-as-set":
        assert sorted(map(tuple, kernel_result.pop("clusters"))) == \
            sorted(map(tuple, legacy_result.pop("clusters"))), kind
    assert kernel_result == legacy_result, kind


def test_scalar_loop_queries_beat_their_baselines(benchmark):
    payload_trace, header_trace = _payload_trace(), _header_trace()
    payload_batches = payload_trace.batch_list(0.1)
    header_batches = header_trace.batch_list(0.1)
    # Warm-up pass with both implementations: the steady state of a real
    # experiment (calibration + reference + evaluated runs over one trace)
    # has every per-batch memo — aggregate hashes for both sides, payload
    # join buffers and unique-key reductions for the kernel path — already
    # populated, so the timed passes below measure per-query work, not
    # trace representation building (same idiom as bench_sharded.py).
    for kind, legacy_cls, payloads, _ in SCALAR_LOOP_QUERIES:
        batches = payload_batches if payloads else header_batches
        _timed_standalone(legacy_cls(), batches)
        _timed_standalone(make_query(kind), batches)

    def run_all():
        rows = {}
        for kind, legacy_cls, payloads, comparison in SCALAR_LOOP_QUERIES:
            batches = payload_batches if payloads else header_batches
            packets = sum(len(batch) for batch in batches)
            legacy_result, legacy_seconds = _timed_standalone(
                legacy_cls(), batches)
            kernel_result, kernel_seconds = _timed_standalone(
                make_query(kind), batches)
            _compare(kind, comparison, kernel_result, legacy_result)
            rows[kind] = {
                "seconds": kernel_seconds,
                "legacy_seconds": legacy_seconds,
                "speedup": legacy_seconds / kernel_seconds,
                "packets_per_second": packets / kernel_seconds,
            }
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1,
                              warmup_rounds=0)
    print()
    for kind, row in rows.items():
        print(f"{kind:>15}: loop {row['legacy_seconds']:.3f}s -> kernel "
              f"{row['seconds']:.3f}s | {row['speedup']:.1f}x | "
              f"{row['packets_per_second']:,.0f} pkt/s "
              f"(required {REQUIRED_SPEEDUP:.1f}x)")
        record_result(f"query_kernel_{kind}", row["seconds"],
                      speedup=row["speedup"],
                      packets_per_second=row["packets_per_second"],
                      legacy_seconds=row["legacy_seconds"],
                      required_speedup=REQUIRED_SPEEDUP)
    for kind, row in rows.items():
        assert row["speedup"] >= REQUIRED_SPEEDUP, \
            f"{kind}: {row['speedup']:.2f}x < {REQUIRED_SPEEDUP}x"


def test_kernel_query_throughput_recorded(benchmark):
    """Per-query packets/sec of the kernel-rebased (already-vector) queries."""
    header_batches = _header_trace().batch_list(0.1)
    packets = sum(len(batch) for batch in header_batches)

    def run_all():
        rows = {}
        for kind in KERNEL_ONLY_QUERIES:
            _, seconds = _timed_standalone(make_query(kind), header_batches)
            rows[kind] = {"seconds": seconds,
                          "packets_per_second": packets / seconds}
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1,
                              warmup_rounds=0)
    print()
    for kind, row in rows.items():
        print(f"{kind:>15}: {row['seconds']:.3f}s | "
              f"{row['packets_per_second']:,.0f} pkt/s")
        record_result(f"query_kernel_{kind}", row["seconds"],
                      packets_per_second=row["packets_per_second"])
        assert row["packets_per_second"] > 0
