"""Benchmark: per-bin cost scaling with the number of registered queries.

The paper runs its scheme with a handful of queries, but the per-bin hot
path historically paid the full prediction pipeline *per query*: feature
extraction (the dominant term — ten distinct-count estimates per query per
bin) plus FCBF selection and an MLR fit.  The shared feature-state
registry (``repro.core.features.FeatureStateRegistry``) collapses that for
queries observing the same packet stream: one counter-merge round and one
feature read per (filter, interval, counter-backend) group per bin,
whatever the query count.

This benchmark sweeps the registered-query count with sharing on and off
over the same generated trace, in two mixes:

* **same-filter** — every query sees the whole stream (one shared group);
  this is the sublinear case and carries the acceptance gate:
  >= ``REQUIRED_SPEEDUP``x at ``GATE_QUERIES`` queries.
* **distinct-filter** — queries cycle through 8 different filters (8
  groups); sharing still helps N/8-fold, recorded ungated.

Both runs of every pair must produce bit-identical results — sharing is an
exact optimisation, not an approximation — and the shared run's per-bin
latency percentiles (from the built-in ``StageProfiler``) land in
``BENCH_report.json``.
"""

import time

from conftest import BENCH_SCALE, record_result

from repro.monitor.config import SystemConfig
from repro.queries import QuerySpec
from repro.testing import assert_results_identical
from repro.traffic import generate_trace
from repro.traffic.generator import TrafficProfile

TIME_BIN = 0.1
QUERY_COUNTS = (10, 50, 100, 200)
#: The acceptance gate: shared-state ingest must beat per-query ingest by
#: at least this factor with GATE_QUERIES same-filter queries registered.
REQUIRED_SPEEDUP = 3.0
GATE_QUERIES = 100
#: The distinct-filter mix cycles these (8 feature-state groups).  ``all``
#: appears once so the mix includes the whole-stream group too.
FILTER_MIX = ("all", "tcp", "udp", "port:80", "port:443", "port:53",
              "size>=200", "port:6881")


def _specs(n, filters=None):
    return tuple(
        QuerySpec("counter", {"name": f"q{i:03d}"},
                  filter=None if filters is None else filters[i % len(filters)])
        for i in range(n))


def _run(trace, specs, sharing):
    """Ingest ``trace`` under ``specs``; returns (result, seconds, system)."""
    config = SystemConfig(queries=specs, cycles_per_second=1e12, seed=11,
                          feature_sharing=sharing)
    system = config.build()
    session = system.open_session(time_bin=TIME_BIN, name="many-queries")
    start = time.perf_counter()
    for batch in trace.batches(TIME_BIN):
        session.ingest(batch)
    result = session.close()
    return result, time.perf_counter() - start, system


def test_shared_feature_state_scales_sublinearly(benchmark):
    profile = TrafficProfile(duration=max(2.0, 4.0 * BENCH_SCALE),
                             flow_arrival_rate=800.0, name="many-queries")
    trace = generate_trace(profile, seed=23)

    def _sweep():
        rows = []
        for n in QUERY_COUNTS:
            specs = _specs(n)
            shared, shared_seconds, system = _run(trace, specs, True)
            unshared, unshared_seconds, _ = _run(trace, specs, False)
            assert_results_identical(shared, unshared, f"same-filter N={n}")
            rows.append((n, shared_seconds, unshared_seconds,
                         system.profiler.bin_seconds,
                         system.feature_states.stats()))
        return rows

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1,
                              warmup_rounds=0)

    print()
    print("same-filter mix (one shared group):")
    print("  queries  shared      per-query   speedup")
    gate_speedup = None
    for n, shared_seconds, unshared_seconds, bin_seconds, stats in rows:
        speedup = unshared_seconds / shared_seconds
        print(f"  {n:7d}  {shared_seconds:8.3f}s  {unshared_seconds:8.3f}s"
              f"  {speedup:6.2f}x")
        gated = n == GATE_QUERIES
        if gated:
            gate_speedup = speedup
        record_result(
            f"many_queries_same_filter_{n}", shared_seconds,
            speedup=speedup, bin_seconds=bin_seconds,
            unshared_seconds=unshared_seconds, queries=n,
            shared_reads=stats["shared_reads"],
            computed_reads=stats["computed_reads"],
            deduped_merges=stats["deduped_merges"],
            **({"required_speedup": REQUIRED_SPEEDUP} if gated else {}))
    print(f"  gate: >= {REQUIRED_SPEEDUP}x at {GATE_QUERIES} queries "
          f"(measured {gate_speedup:.2f}x)")
    assert gate_speedup is not None and gate_speedup >= REQUIRED_SPEEDUP


def test_distinct_filter_mix_still_shares(benchmark):
    profile = TrafficProfile(duration=max(2.0, 4.0 * BENCH_SCALE),
                             flow_arrival_rate=800.0, name="many-queries")
    trace = generate_trace(profile, seed=23)
    specs = _specs(GATE_QUERIES, filters=FILTER_MIX)

    def _pair():
        shared, shared_seconds, system = _run(trace, specs, True)
        unshared, unshared_seconds, _ = _run(trace, specs, False)
        return shared, shared_seconds, unshared, unshared_seconds, system

    shared, shared_seconds, unshared, unshared_seconds, system = \
        benchmark.pedantic(_pair, rounds=1, iterations=1, warmup_rounds=0)

    assert_results_identical(shared, unshared,
                             f"distinct-filter N={GATE_QUERIES}")
    stats = system.feature_states.stats()
    speedup = unshared_seconds / shared_seconds
    print()
    print(f"distinct-filter mix ({stats['groups']} groups, "
          f"{GATE_QUERIES} queries): shared {shared_seconds:.3f}s | "
          f"per-query {unshared_seconds:.3f}s | {speedup:.2f}x (ungated)")
    record_result(
        f"many_queries_distinct_filter_{GATE_QUERIES}", shared_seconds,
        speedup=speedup, bin_seconds=system.profiler.bin_seconds,
        unshared_seconds=unshared_seconds, queries=GATE_QUERIES,
        groups=stats["groups"], shared_reads=stats["shared_reads"],
        computed_reads=stats["computed_reads"])
    # Sharing must never hurt; with 8 groups it should clearly help.
    assert speedup >= 1.0
