"""Benchmark: federate a 128-node monitoring fleet and prove it exact.

The fleet tier's pitch is "hundreds of monitor nodes, one answer": a
stream flow-partitioned across N independent predict/shed loops whose
per-node results fold back — through the same ``RESULT_MERGE`` algebra the
shard tier uses — into one ``ExecutionResult`` indistinguishable, for
every merge-exact query, from one node monitoring the whole stream.

This benchmark runs that claim at fleet scale: a 128-node uniform
flow-hash topology over a dense header-only stream, in reference mode, so
the federated query logs must be **bit-identical** to the single-node logs
for every kind whose :data:`repro.queries.MERGE_EXACTNESS` entry is
``"exact"`` (strict ``==``, no tolerance: with no shedding every reported
quantity is an integer-valued float and addition order cannot perturb it).
The headline numbers are the fleet wall time and the per-bin federation
latency percentiles (p50/p95/p99 of the straggler node's ingest time per
bin), recorded into ``BENCH_report.json``.
"""

import time

from conftest import BENCH_SCALE, record_result

from repro.experiments import runner
from repro.fleet import FleetRunner, FleetTopology
from repro.queries import MERGE_EXACTNESS, QuerySpec, parse_query_specs
from repro.traffic import generate_trace
from repro.traffic.generator import TrafficProfile

NUM_NODES = 128
#: top-k runs untruncated (k wider than any plausible table) so its merge
#: stays in the documented exact-prefix regime; with the default k each
#: node's *local* truncation makes the 128-way merge heuristic.
QUERY_SPECS = ("counter", "flows", QuerySpec("top-k", {"k": 100_000}))
TIME_BIN = 0.1


def _fleet_stream():
    """A dense header-only stream worth splitting 128 ways."""
    profile = TrafficProfile(
        duration=max(1.0, 2.0 * BENCH_SCALE),
        flow_arrival_rate=3000.0,
        with_payloads=False,
        name="fleet-stream",
    )
    return generate_trace(profile, seed=42)


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def test_fleet_federation_bit_identity(benchmark):
    trace = _fleet_stream()
    config = runner.system_config(queries=parse_query_specs(QUERY_SPECS),
                                  mode="reference",
                                  cycles_per_second=1e9, seed=21)
    fleet = FleetRunner(FleetTopology.uniform(NUM_NODES), config=config)

    (result, fleet_seconds), _ = benchmark.pedantic(
        lambda: (_timed(lambda: fleet.run(trace, time_bin=TIME_BIN)), None),
        rounds=1, iterations=1, warmup_rounds=0)
    single, single_seconds = _timed(
        lambda: config.build().run(trace, time_bin=TIME_BIN))

    federated = result.federated
    latency = result.report()["bin_latency_seconds"]
    print()
    print(f"{NUM_NODES} nodes: {fleet_seconds:.2f}s | 1 node: "
          f"{single_seconds:.2f}s | {len(trace):,} packets, "
          f"{len(federated.bins)} bins | per-bin federation latency "
          f"p50={latency['p50'] * 1e3:.2f}ms p95={latency['p95'] * 1e3:.2f}ms "
          f"p99={latency['p99'] * 1e3:.2f}ms")
    record_result("fleet_federation_128", fleet_seconds,
                  bin_seconds=result.bin_latency, nodes=NUM_NODES,
                  single_node_seconds=single_seconds, packets=len(trace),
                  bins=len(federated.bins))

    # The one answer: bit-identical logs for every merge-exact query.
    assert federated.total_packets == single.total_packets
    assert federated.dropped_packets == 0 and single.dropped_packets == 0
    assert len(federated.bins) == len(single.bins)
    exact = [name for name in federated.query_logs
             if MERGE_EXACTNESS.get(name) == "exact"]
    assert sorted(exact) == ["counter", "flows"]
    for name in exact:
        log, reference = federated.query_logs[name], single.query_logs[name]
        assert log.intervals == reference.intervals, name
        assert log.results == reference.results, name
    # top-k merges as an exact prefix: the federated ranking must be a
    # prefix of the single-node one with identical summed volumes.
    for merged, whole in zip(federated.query_logs["top-k"].results,
                             single.query_logs["top-k"].results):
        width = len(merged["ranking"])
        assert merged["ranking"] == whole["ranking"][:width]
