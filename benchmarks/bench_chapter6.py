"""Benchmarks: Chapter 6 — custom load shedding (Table 6.2, Figs 6.1-6.14)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import chapter6, reporting


def test_fig_6_1_custom_vs_sampling(benchmark):
    result = run_once(benchmark, chapter6.figure_6_1_custom_vs_sampling,
                      scale=BENCH_SCALE, overload=0.5)
    print()
    print("Figure 6.1/6.2 — p2p-detector error:",
          {k: round(v, 3) for k, v in result["p2p_error"].items()})
    assert result["p2p_error"]["custom_shedding"] < \
        result["p2p_error"]["packet_sampling"]


def test_fig_6_3_enforcement_correction(benchmark):
    result = run_once(benchmark, chapter6.figure_6_3_enforcement_correction,
                      scale=0.4, overload=0.5)
    print()
    print("Figure 6.3 — correction factors: cooperative "
          f"{result['correction_factor_cooperative']:.2f}, buggy "
          f"{result['correction_factor_buggy']:.2f}")
    assert result["correction_factor_buggy"] >= \
        result["correction_factor_cooperative"]


def test_fig_6_4_accuracy_vs_srate(benchmark):
    result = run_once(benchmark, chapter6.figure_6_4_accuracy_vs_srate,
                      scale=0.4)
    print()
    for query, curve in result["curves"].items():
        print(f"Figure 6.4 — {query}:",
              {k: round(v, 2) for k, v in curve.items()})
    curves = result["curves"]
    # The P2P detector degrades much faster than the sampling-robust queries.
    assert curves["p2p-detector"][0.25] < curves["high-watermark"][0.25]
    assert curves["p2p-detector"][0.25] < curves["top-k"][0.25]


def test_fig_6_5_overload_sweep(benchmark):
    result = run_once(benchmark, chapter6.figure_6_5_overload_sweep,
                      scale=BENCH_SCALE, overloads=(0.3, 0.6))
    print()
    print("Figure 6.5 — average accuracy:", result["average_accuracy"],
          "minimum accuracy:", result["minimum_accuracy"])
    assert min(result["average_accuracy"]) > 0.5


def test_table_6_2_accuracy_by_query(benchmark):
    result = run_once(benchmark, chapter6.table_6_2_accuracy_by_query,
                      scale=BENCH_SCALE, overload=0.5)
    print()
    print(reporting.format_table(result["rows"], ["query", "accuracy"],
                                 title="Table 6.2 — accuracy by query (K=0.5)"))


def test_fig_6_6_vs_6_7(benchmark):
    result = run_once(benchmark, chapter6.figure_6_6_vs_6_7,
                      scale=BENCH_SCALE, overload=0.5)
    print()
    print(f"Figure 6.6/6.7 — minimum accuracy: legacy "
          f"{result['legacy_minimum']:.3f} vs full {result['full_minimum']:.3f}")
    assert result["full_minimum"] >= result["legacy_minimum"] - 0.05


def test_fig_6_8_ddos(benchmark):
    result = run_once(benchmark, chapter6.figure_6_8_ddos, scale=0.4,
                      overload=0.3)
    print()
    print(f"Figure 6.8 — DDoS: drop fraction {result['drop_fraction']:.3f}, "
          f"mean sampling rate {result['mean_sampling_rate']:.2f}")
    assert result["drop_fraction"] < 0.05


def test_fig_6_9_query_arrivals(benchmark):
    result = run_once(benchmark, chapter6.figure_6_9_query_arrivals,
                      scale=BENCH_SCALE, overload=0.4)
    print()
    print("Figure 6.9 — accuracy with staggered query arrivals:",
          {k: round(v, 3) for k, v in result["accuracy"].items()})
    assert result["dropped_packets"] == 0


def test_fig_6_10_selfish(benchmark):
    result = run_once(benchmark, chapter6.figure_6_10_selfish, scale=0.4)
    print()
    print(f"Figure 6.10 — selfish query: {result['offender_violations']} "
          f"violations, disabled {result['offender_disabled_times']} times")
    assert result["offender_disabled_times"] >= 1
    assert min(result["well_behaved_accuracy"].values()) > 0.5


def test_fig_6_11_buggy(benchmark):
    result = run_once(benchmark, chapter6.figure_6_11_buggy, scale=0.4)
    print()
    print(f"Figure 6.11 — buggy query: correction "
          f"{result['offender_correction']:.2f}, disabled "
          f"{result['offender_disabled_times']} times")
    assert result["offender_violations"] >= 1


def test_fig_6_12_online_execution(benchmark):
    result = run_once(benchmark, chapter6.figure_6_12_online_execution,
                      scale=0.4, overload=0.5)
    print()
    print(f"Figures 6.12-6.14 — overall accuracy "
          f"{result['overall_accuracy']:.3f}, mean sampling rate "
          f"{result['mean_sampling_rate']:.2f}, dropped "
          f"{result['dropped_packets']}")
    assert result["overall_accuracy"] > 0.5
    assert result["dropped_packets"] == 0
