"""Benchmark: out-of-core trace-store replay versus the in-memory path.

A v2 trace store is synthesised chunk-at-a-time (``generate_trace_store``),
then replayed through the full predict/shed pipeline twice: once fully
materialised in memory (the pre-store idiom) and once streamed through
``ingest_trace`` with a chunk cache at least 4x smaller than the store —
the out-of-core regime the store exists for.  A third replay drives the
``num_shards=4`` in-process sharded pipeline from the same stream.

The acceptance bar for the first benchmark is *correctness at bounded
memory*, not speed: both streamed replays must be bit-identical to the
in-memory execution while the LRU never holds more than its K chunks.  The
streaming overhead factor (streamed wall time over in-memory wall time) is
recorded into ``BENCH_report.json`` so regressions in the chunk path show
up per commit; a loose sanity ceiling guards against pathological
slowdowns.

The second benchmark is the throughput claim: the same out-of-core stream
replayed over the **persistent shard-worker pool** (one resident process
per shard, shared-memory batch transport, prefetching chunk cache) must
beat the serial streamed replay by >= ~2x on a >= 4-core host.  Sharding
needs hardware to shard onto, so — exactly like ``bench_sharded.py`` — the
bar scales with the host: a weaker parallelism floor on 2-3 cores, and on
a single-core host only a sanity floor (4 time-sliced pipelines cannot
beat 1; the run then pins that the worker path streams correctly and is
not pathologically slower).
"""

import os
import time

from conftest import BENCH_SCALE, record_result


from repro.experiments import runner
from repro.testing import assert_results_identical
from repro.traffic.generator import TrafficProfile, generate_trace_store

QUERY_SET = ("counter", "flows", "top-k")
MAX_RESIDENT_CHUNKS = 4
#: The store must dwarf the chunk-cache budget by at least this factor.
MIN_CHUNK_FACTOR = 4
#: Streaming must not cost more than this factor over the in-memory path
#: (it re-slices bins from mmap instead of reusing memoised batches, so
#: some overhead is expected; 4x would mean the chunk path regressed).
MAX_OVERHEAD = 4.0

#: Query mix for the worker-throughput benchmark: heavy per-packet work so
#: parallel shards have real compute to win back (the regime sharding
#: exists for).
DENSE_QUERY_SET = ("counter", "flows", "top-k", "p2p-detector",
                   "application")
NUM_SHARDS = 4
CORES = os.cpu_count() or 1
if CORES >= 4:
    WORKER_MIN_SPEEDUP = 2.0
elif CORES >= 2:
    WORKER_MIN_SPEEDUP = 1.0
else:
    WORKER_MIN_SPEEDUP = 0.2
if os.environ.get("CI"):
    # Shared CI runners are noisy neighbours; the smoke job is a regression
    # tripwire, not a performance gate.
    WORKER_MIN_SPEEDUP = min(WORKER_MIN_SPEEDUP, 1.2)


def _build_store(tmp_path):
    profile = TrafficProfile(
        duration=max(4.0, 10.0 * BENCH_SCALE),
        flow_arrival_rate=2000.0,
        name="streaming-bench",
    )
    return generate_trace_store(tmp_path / "store", profile, seed=21,
                                segment_duration=2.0)


def _timed(fn, *args):
    start = time.perf_counter()
    value = fn(*args)
    return value, time.perf_counter() - start


def test_streaming_replay_bit_identical_and_bounded(benchmark, tmp_path):
    store = _build_store(tmp_path)
    trace = store.to_trace()
    chunk_packets = max(1, store.num_packets //
                        (MIN_CHUNK_FACTOR * MAX_RESIDENT_CHUNKS))

    capacity, _ = runner.calibrate_capacity(QUERY_SET, trace)
    config = runner.system_config(cycles_per_second=capacity * 0.5, seed=13)

    def _in_memory():
        return runner.run_system(QUERY_SET, trace, capacity * 0.5,
                                 config=config)

    def _streamed(num_shards=1):
        streaming = store.streaming(chunk_packets=chunk_packets,
                                    max_resident_chunks=MAX_RESIDENT_CHUNKS)
        result = runner.run_system(QUERY_SET, streaming, capacity * 0.5,
                                   config=config, num_shards=num_shards)
        return result, streaming

    memory_result, memory_seconds = _timed(_in_memory)
    ((streamed_result, streaming), streamed_seconds), _ = benchmark.pedantic(
        lambda: (_timed(_streamed), None),
        rounds=1, iterations=1, warmup_rounds=0)

    # The out-of-core regime: the store holds at least 4x more chunks than
    # the cache may keep resident, and the LRU must respect its budget.
    assert streaming.num_chunks >= MIN_CHUNK_FACTOR * MAX_RESIDENT_CHUNKS
    assert streaming.max_resident <= MAX_RESIDENT_CHUNKS
    assert_results_identical(memory_result, streamed_result, "serial")

    (sharded_result, sharded_streaming), sharded_seconds = \
        _timed(_streamed, 4)
    sharded_memory = runner.run_system(QUERY_SET, trace, capacity * 0.5,
                                       config=config, num_shards=4)
    assert sharded_streaming.max_resident <= MAX_RESIDENT_CHUNKS
    assert_results_identical(sharded_memory, sharded_result, "sharded")

    overhead = streamed_seconds / memory_seconds
    print()
    print(f"in-memory: {memory_seconds:.2f}s | streamed "
          f"({streaming.num_chunks} chunks, <= {MAX_RESIDENT_CHUNKS} "
          f"resident): {streamed_seconds:.2f}s | overhead {overhead:.2f}x | "
          f"sharded x4 streamed: {sharded_seconds:.2f}s | "
          f"{store.num_packets:,} packets")
    record_result("streaming_replay", streamed_seconds,
                  speedup=memory_seconds / streamed_seconds,
                  in_memory_seconds=memory_seconds,
                  sharded_seconds=sharded_seconds,
                  packets=store.num_packets,
                  num_chunks=streaming.num_chunks,
                  max_resident_chunks=MAX_RESIDENT_CHUNKS)
    assert overhead <= MAX_OVERHEAD


def test_persistent_workers_beat_serial_streaming(benchmark, tmp_path):
    """Out-of-core replay on the persistent shard-worker pool vs serial.

    This is the bug the worker pool fixes: ``num_shards=4`` used to run the
    shards serially in-process and *lose* to the unsharded replay.  With one
    resident process per shard and shared-memory batch transport the sharded
    streamed replay must now beat the serial streamed replay wherever the
    host has cores to shard onto — and stay bit-identical to the in-process
    sharded execution everywhere.
    """
    profile = TrafficProfile(
        duration=max(1.5, 3.0 * BENCH_SCALE),
        flow_arrival_rate=8000.0,
        with_payloads=False,
        name="worker-bench",
    )
    store = generate_trace_store(tmp_path / "dense", profile, seed=34,
                                 segment_duration=1.0)
    trace = store.to_trace()
    chunk_packets = max(1, store.num_packets //
                        (MIN_CHUNK_FACTOR * MAX_RESIDENT_CHUNKS))

    capacity, _ = runner.calibrate_capacity(DENSE_QUERY_SET, trace)
    config = runner.system_config(cycles_per_second=capacity * 0.5,
                                  shard_rebalance=False, seed=29)

    def _stream(prefetch):
        return store.streaming(chunk_packets=chunk_packets,
                               max_resident_chunks=MAX_RESIDENT_CHUNKS,
                               prefetch=prefetch)

    def _serial():
        return runner.run_system(DENSE_QUERY_SET, _stream(False),
                                 capacity * 0.5, config=config)

    def _workers():
        streaming = _stream(True)
        result = runner.run_system(
            DENSE_QUERY_SET, streaming, capacity * 0.5,
            config=config.replace(shard_backend="workers"),
            num_shards=NUM_SHARDS)
        return result, streaming

    # Warm the pipeline (JIT-free, but mmap pages + allocator pools) before
    # timing, mirroring bench_sharded.
    runner.run_system(DENSE_QUERY_SET, trace, capacity * 0.5, config=config)

    serial_result, serial_seconds = _timed(_serial)
    ((worker_result, streaming), worker_seconds), _ = benchmark.pedantic(
        lambda: (_timed(_workers), None),
        rounds=1, iterations=1, warmup_rounds=0)

    # Correctness first: same chunk budget, and bit-identical to the
    # in-process sharded execution of the identical configuration.
    assert streaming.max_resident <= MAX_RESIDENT_CHUNKS
    in_process = runner.run_system(
        DENSE_QUERY_SET, _stream(False), capacity * 0.5, config=config,
        num_shards=NUM_SHARDS)
    assert_results_identical(in_process, worker_result, "workers")
    assert worker_result.total_packets == serial_result.total_packets

    speedup = serial_seconds / worker_seconds
    print()
    print(f"serial streamed: {serial_seconds:.2f}s | persistent workers "
          f"x{NUM_SHARDS}: {worker_seconds:.2f}s | speedup {speedup:.2f}x "
          f"(required >= {WORKER_MIN_SPEEDUP}x on {CORES} cores) | "
          f"{store.num_packets:,} packets, prefetched "
          f"{streaming.prefetched} chunks")
    record_result("streaming_replay_workers", worker_seconds,
                  speedup=speedup,
                  serial_seconds=serial_seconds,
                  required_speedup=WORKER_MIN_SPEEDUP,
                  cores=CORES,
                  num_shards=NUM_SHARDS,
                  packets=store.num_packets,
                  prefetched_chunks=streaming.prefetched)
    assert speedup >= WORKER_MIN_SPEEDUP
