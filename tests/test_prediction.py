"""Tests for regression, FCBF feature selection and the cycle predictors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fcbf import fcbf_select, linear_correlation
from repro.core.features import FEATURE_NAMES, NUM_FEATURES, FeatureVector
from repro.core.prediction import (EWMAPredictor, MLRPredictor,
                                   PredictionErrorTracker, SLRPredictor,
                                   make_predictor)
from repro.core.regression import (MultipleLinearRegression, SlidingHistory,
                                   ols_svd)


def _vector(packets, new_flows=0.0, bytes_=None):
    values = np.zeros(NUM_FEATURES)
    values[0] = packets
    values[1] = bytes_ if bytes_ is not None else packets * 500
    values[FEATURE_NAMES.index("five_tuple_new")] = new_flows
    return FeatureVector(values)


class TestOlsSvd:
    def test_recovers_exact_coefficients(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 3))
        design = np.column_stack([np.ones(100), x])
        beta = np.array([5.0, 2.0, -1.0, 0.5])
        y = design @ beta
        estimate = ols_svd(design, y)
        assert np.allclose(estimate, beta, atol=1e-8)

    def test_collinear_predictors_do_not_blow_up(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 1))
        design = np.column_stack([np.ones(50), x, 2 * x])  # collinear
        y = 3.0 + 4.0 * x[:, 0]
        estimate = ols_svd(design, y)
        prediction = design @ estimate
        assert np.allclose(prediction, y, atol=1e-6)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ols_svd(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            ols_svd(np.zeros((3, 2)), np.zeros(4))


class TestMultipleLinearRegression:
    def test_fit_predict(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 100, size=(80, 2))
        y = 10.0 + 3.0 * x[:, 0] + 0.5 * x[:, 1]
        model = MultipleLinearRegression().fit(x, y)
        assert model.predict(np.array([10.0, 20.0])) == pytest.approx(50.0)
        assert np.allclose(model.residuals(x, y), 0.0, atol=1e-6)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            MultipleLinearRegression().predict(np.zeros(2))


class TestSlidingHistory:
    def test_max_length(self):
        history = SlidingHistory(length=5)
        for i in range(10):
            history.append(np.array([float(i)]), float(i))
        assert len(history) == 5
        assert history.responses()[0] == 5.0

    def test_replace_last(self):
        history = SlidingHistory(length=3)
        history.append(np.array([1.0]), 10.0)
        history.replace_last(99.0)
        assert history.responses()[-1] == 99.0

    def test_replace_last_empty(self):
        with pytest.raises(IndexError):
            SlidingHistory(length=3).replace_last(1.0)

    def test_feature_matrix_column_selection(self):
        history = SlidingHistory(length=4)
        history.append(np.array([1.0, 2.0, 3.0]), 1.0)
        history.append(np.array([4.0, 5.0, 6.0]), 2.0)
        matrix = history.feature_matrix([2])
        assert matrix.shape == (2, 1)
        assert matrix[1, 0] == 6.0


class TestLinearCorrelation:
    def test_perfect_correlation(self):
        x = np.arange(10, dtype=float)
        assert linear_correlation(x, 2 * x + 3) == pytest.approx(1.0)
        assert linear_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_series(self):
        x = np.ones(10)
        assert linear_correlation(x, np.arange(10.0)) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            linear_correlation(np.zeros(3), np.zeros(4))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
                    max_size=50))
    @settings(deadline=None)
    def test_bounded(self, values):
        x = np.array(values)
        y = np.roll(x, 1) + 1.0
        assert -1.0 <= linear_correlation(x, y) <= 1.0


class TestFCBF:
    def test_selects_relevant_feature(self):
        rng = np.random.default_rng(3)
        n = 100
        features = rng.uniform(0, 1, size=(n, 5))
        response = 10 * features[:, 2] + rng.normal(0, 0.01, size=n)
        selected = fcbf_select(features, response, threshold=0.6)
        assert selected[0] == 2

    def test_removes_redundant_duplicate(self):
        rng = np.random.default_rng(4)
        n = 200
        base = rng.uniform(0, 1, size=n)
        features = np.column_stack([base, base * 2.0, rng.uniform(0, 1, n)])
        response = base * 5.0
        selected = fcbf_select(features, response, threshold=0.5)
        assert len([i for i in selected if i in (0, 1)]) == 1

    def test_falls_back_to_best_feature(self):
        rng = np.random.default_rng(5)
        features = rng.uniform(0, 1, size=(50, 4))
        response = rng.uniform(0, 1, size=50)
        selected = fcbf_select(features, response, threshold=0.99)
        assert len(selected) == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            fcbf_select(np.zeros((10, 2)), np.zeros(10), threshold=1.5)


class TestEWMAPredictor:
    def test_tracks_constant_series(self):
        predictor = EWMAPredictor(alpha=0.5)
        vector = _vector(100)
        for _ in range(10):
            predictor.observe(vector, 1000.0)
        assert predictor.predict(vector) == pytest.approx(1000.0, rel=1e-3)

    def test_ignores_features(self):
        predictor = EWMAPredictor()
        predictor.observe(_vector(100), 500.0)
        assert predictor.predict(_vector(100)) == predictor.predict(_vector(999))

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EWMAPredictor(alpha=0.0)


class TestSLRPredictor:
    def test_learns_linear_cost(self):
        predictor = SLRPredictor(feature="packets", history=30)
        rng = np.random.default_rng(6)
        for _ in range(20):
            packets = rng.uniform(100, 1000)
            predictor.observe(_vector(packets), 50.0 * packets + 500.0)
        prediction = predictor.predict(_vector(400))
        assert prediction == pytest.approx(50.0 * 400 + 500.0, rel=0.02)

    def test_unknown_feature(self):
        with pytest.raises(ValueError):
            SLRPredictor(feature="not-a-feature")

    def test_insufficient_history_returns_last(self):
        predictor = SLRPredictor()
        assert predictor.predict(_vector(10)) == 0.0
        predictor.observe(_vector(10), 123.0)
        assert predictor.predict(_vector(10)) == 123.0


class TestMLRPredictor:
    def test_learns_two_feature_cost(self):
        predictor = MLRPredictor(history=40, fcbf_threshold=0.3)
        rng = np.random.default_rng(7)
        for _ in range(35):
            packets = rng.uniform(100, 1000)
            new_flows = rng.uniform(10, 200)
            cycles = 100.0 * packets + 400.0 * new_flows
            predictor.observe(_vector(packets, new_flows), cycles)
        prediction = predictor.predict(_vector(500, 100))
        assert prediction == pytest.approx(100.0 * 500 + 400.0 * 100, rel=0.05)

    def test_selected_features_reported(self):
        predictor = MLRPredictor(history=30, fcbf_threshold=0.5)
        rng = np.random.default_rng(8)
        for _ in range(25):
            packets = rng.uniform(100, 1000)
            predictor.observe(_vector(packets), 10.0 * packets)
        predictor.predict(_vector(300))
        assert "packets" in predictor.selected_features
        assert predictor.overhead_cycles > 0

    def test_replace_last_observation(self):
        predictor = MLRPredictor(history=10)
        predictor.observe(_vector(100), 1e9)   # corrupted measurement
        predictor.replace_last_observation(1000.0)
        assert predictor.history.responses()[-1] == 1000.0

    def test_negative_predictions_clamped(self):
        predictor = MLRPredictor(history=10, fcbf_threshold=0.0)
        for packets in (100.0, 200.0, 300.0):
            predictor.observe(_vector(packets), packets)
        assert predictor.predict(_vector(0.0)) >= 0.0


class TestFactoryAndTracker:
    def test_make_predictor(self):
        assert isinstance(make_predictor("mlr"), MLRPredictor)
        assert isinstance(make_predictor("slr"), SLRPredictor)
        assert isinstance(make_predictor("ewma"), EWMAPredictor)
        with pytest.raises(ValueError):
            make_predictor("nope")

    def test_error_tracker_statistics(self):
        tracker = PredictionErrorTracker()
        assert tracker.record(90.0, 100.0) == pytest.approx(0.1)
        assert tracker.record(100.0, 100.0) == 0.0
        assert tracker.record(0.0, 0.0) == 0.0
        assert tracker.record(5.0, 0.0) == 1.0
        assert tracker.mean == pytest.approx((0.1 + 0 + 0 + 1) / 4)
        assert tracker.maximum == 1.0
        assert 0.0 <= tracker.percentile(95) <= 1.0
