"""Tests for the synthetic traffic generator, anomalies and trace I/O."""

import numpy as np
import pytest

from repro.monitor.packet import PROTO_TCP
from repro.traffic import (AnomalyWindow, TrafficProfile, byte_burst,
                           ddos_attack, flow_spike, generate_trace, inject,
                           load_preset, load_trace, merge_traces, save_trace,
                           syn_flood, trace_profile, worm_outbreak)
from repro.traffic.generator import P2P_SIGNATURES


class TestGenerator:
    def test_deterministic_given_seed(self):
        profile = TrafficProfile(duration=2.0, flow_arrival_rate=100.0)
        a = generate_trace(profile, seed=42)
        b = generate_trace(profile, seed=42)
        assert len(a) == len(b)
        assert np.array_equal(a.packets.ts, b.packets.ts)

    def test_different_seeds_differ(self):
        profile = TrafficProfile(duration=2.0, flow_arrival_rate=100.0)
        a = generate_trace(profile, seed=1)
        b = generate_trace(profile, seed=2)
        assert len(a) != len(b) or not np.array_equal(a.packets.ts, b.packets.ts)

    def test_timestamps_sorted_and_bounded(self):
        profile = TrafficProfile(duration=3.0, flow_arrival_rate=120.0)
        trace = generate_trace(profile, seed=5)
        ts = trace.packets.ts
        assert np.all(np.diff(ts) >= 0)
        assert ts.max() <= profile.duration + 1e-9

    def test_traffic_volume_scales_with_rate(self):
        low = generate_trace(TrafficProfile(duration=3.0,
                                            flow_arrival_rate=50.0), seed=1)
        high = generate_trace(TrafficProfile(duration=3.0,
                                             flow_arrival_rate=400.0), seed=1)
        assert len(high) > 3 * len(low)

    def test_payload_generation(self):
        profile = TrafficProfile(duration=2.0, flow_arrival_rate=120.0,
                                 with_payloads=True)
        trace = generate_trace(profile, seed=9)
        assert trace.packets.has_payloads
        assert len(trace.packets.payloads) == len(trace)
        p2p_payloads = sum(
            1 for p in trace.packets.payloads
            if any(sig in p for sig in P2P_SIGNATURES))
        assert p2p_payloads > 0

    def test_application_mix_ports_present(self):
        trace = generate_trace(TrafficProfile(duration=3.0), seed=3)
        ports = set(np.unique(trace.packets.dst_port).tolist())
        assert 80 in ports and 53 in ports

    def test_empty_duration(self):
        trace = generate_trace(TrafficProfile(duration=0.05,
                                              flow_arrival_rate=0.1), seed=1)
        assert len(trace) >= 0  # must not raise


class TestPresets:
    def test_named_presets_load(self):
        trace = load_preset("CESCA-I", seed=1, duration=1.0)
        assert len(trace) > 0
        assert trace.name == "CESCA-I"

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            trace_profile("NOT-A-TRACE")

    def test_override(self):
        profile = trace_profile("CESCA-II", duration=2.0,
                                flow_arrival_rate=10.0)
        assert profile.duration == 2.0
        assert profile.flow_arrival_rate == 10.0
        assert profile.with_payloads


class TestAnomalies:
    def test_ddos_targets_single_destination(self):
        attack = ddos_attack(AnomalyWindow(1.0, 2.0), packets_per_second=500.0)
        assert len(np.unique(attack.packets.dst_ip)) == 1
        assert len(np.unique(attack.packets.src_ip)) > 100

    def test_syn_flood_small_packets(self):
        attack = syn_flood(AnomalyWindow(0.0, 1.0), packets_per_second=1000.0)
        assert attack.packets.size.max() <= 64
        assert np.all(attack.packets.proto == PROTO_TCP)

    def test_worm_fixed_port(self):
        attack = worm_outbreak(AnomalyWindow(0.0, 1.0),
                               packets_per_second=500.0, target_port=445)
        assert np.all(attack.packets.dst_port == 445)
        assert len(np.unique(attack.packets.dst_ip)) > 100

    def test_byte_burst_large_packets(self):
        attack = byte_burst(AnomalyWindow(0.0, 1.0), packets_per_second=200.0,
                            packet_size=1500)
        assert np.all(attack.packets.size == 1500)

    def test_flow_spike_many_flows(self):
        attack = flow_spike(AnomalyWindow(0.0, 1.0), flows_per_second=1000.0)
        assert len(np.unique(attack.packets.src_port)) > 300

    def test_on_off_attack_has_gaps(self):
        attack = ddos_attack(AnomalyWindow(0.0, 4.0), packets_per_second=500.0,
                             on_off_period=2.0)
        ts = attack.packets.ts
        # No packets should fall in the "off" half-periods.
        phase = np.mod(ts, 2.0)
        assert np.all(phase <= 1.0 + 1e-9)

    def test_window_end(self):
        window = AnomalyWindow(start=3.0, duration=2.0)
        assert window.end == 5.0

    def test_inject_sorted_and_complete(self, small_trace):
        attack = ddos_attack(AnomalyWindow(1.0, 1.0), packets_per_second=300.0)
        merged = inject(small_trace, attack)
        assert len(merged) == len(small_trace) + len(attack)
        assert np.all(np.diff(merged.packets.ts) >= 0)

    def test_inject_preserves_payload_completeness(self, payload_trace_small):
        attack = ddos_attack(AnomalyWindow(1.0, 1.0), packets_per_second=200.0)
        merged = inject(payload_trace_small, attack)
        assert merged.packets.has_payloads
        assert len(merged.packets.payloads) == len(merged)


class TestMergeAndIO:
    def test_merge_empty(self):
        from repro.monitor.packet import Batch, PacketTrace
        merged = merge_traces(PacketTrace(Batch.empty()))
        assert len(merged) == 0

    def test_save_load_roundtrip(self, tmp_path, small_trace):
        path = tmp_path / "trace.npz"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(small_trace)
        assert np.array_equal(loaded.packets.ts, small_trace.packets.ts)
        assert np.array_equal(loaded.packets.src_ip, small_trace.packets.src_ip)
        assert loaded.name == small_trace.name

    def test_save_load_payloads(self, tmp_path, payload_trace_small):
        path = tmp_path / "payload.npz"
        save_trace(payload_trace_small, path)
        loaded = load_trace(path)
        assert loaded.packets.payloads[:10] == \
            payload_trace_small.packets.payloads[:10]
