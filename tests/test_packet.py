"""Tests for the packet / batch / trace data model."""

import numpy as np
import pytest

from repro.monitor.packet import Batch, PacketTrace, format_ip, ip
from tests.conftest import make_batch


class TestIpHelpers:
    def test_ip_roundtrip(self):
        addr = ip(147, 83, 30, 12)
        assert format_ip(addr) == "147.83.30.12"

    def test_ip_bounds(self):
        with pytest.raises(ValueError):
            ip(256, 0, 0, 1)

    def test_ip_ordering(self):
        assert ip(10, 0, 0, 1) < ip(10, 0, 0, 2) < ip(10, 0, 1, 0)


class TestBatch:
    def test_length_and_counts(self):
        batch = make_batch(n=50)
        assert len(batch) == 50
        assert batch.packet_count == 50
        assert batch.byte_count == int(batch.size.sum())

    def test_empty_batch(self):
        batch = Batch.empty()
        assert len(batch) == 0
        assert batch.byte_count == 0
        assert not batch.has_payloads

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Batch(ts=[0.0, 0.1], src_ip=[1], dst_ip=[1, 2], src_port=[1, 2],
                  dst_port=[1, 2], proto=[6, 6], size=[40, 40])

    def test_payload_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Batch(ts=[0.0], src_ip=[1], dst_ip=[1], src_port=[1],
                  dst_port=[1], proto=[6], size=[40], payloads=[b"a", b"b"])

    def test_select_by_mask(self):
        batch = make_batch(n=30)
        mask = np.zeros(30, dtype=bool)
        mask[:10] = True
        sub = batch.select(mask)
        assert len(sub) == 10
        assert np.all(sub.ts == batch.ts[:10])

    def test_select_by_index(self):
        batch = make_batch(n=30)
        sub = batch.select(np.array([0, 5, 7]))
        assert len(sub) == 3
        assert sub.src_ip[1] == batch.src_ip[5]

    def test_select_preserves_payloads(self):
        batch = make_batch(n=10, payloads=True)
        sub = batch.select(np.array([2, 3]))
        assert sub.payloads == [batch.payloads[2], batch.payloads[3]]

    def test_iteration_yields_packets(self):
        batch = make_batch(n=5)
        packets = list(batch)
        assert len(packets) == 5
        assert packets[0].size == int(batch.size[0])
        assert packets[0].flow_key[0] == int(batch.src_ip[0])

    def test_flow_keys_structured(self):
        batch = make_batch(n=20)
        keys = batch.flow_keys()
        assert keys.shape == (20,)
        assert np.all(keys["src_ip"] == batch.src_ip)

    def test_concatenate(self):
        a = make_batch(n=10, seed=1)
        b = make_batch(n=15, seed=2, start_ts=0.1)
        merged = Batch.concatenate([a, b])
        assert len(merged) == 25

    def test_concatenate_empty_list(self):
        assert len(Batch.concatenate([])) == 0


class TestPacketTrace:
    def test_duration(self):
        batch = make_batch(n=100, time_bin=1.0)
        trace = PacketTrace(batch)
        assert trace.duration == pytest.approx(
            float(batch.ts[-1] - batch.ts[0]))

    def test_batches_cover_all_packets(self):
        batch = make_batch(n=500, time_bin=2.0)
        trace = PacketTrace(batch)
        total = sum(len(b) for b in trace.batches(0.1))
        assert total == 500

    def test_batches_are_time_ordered_and_contiguous(self):
        batch = make_batch(n=300, time_bin=1.0)
        trace = PacketTrace(batch)
        batches = list(trace.batches(0.1))
        starts = [b.start_ts for b in batches]
        assert starts == sorted(starts)
        diffs = np.diff(starts)
        assert np.allclose(diffs, 0.1)

    def test_empty_bins_are_yielded(self):
        ts = np.array([0.0, 0.05, 0.95])
        batch = Batch(ts=ts, src_ip=[1, 2, 3], dst_ip=[4, 5, 6],
                      src_port=[1, 2, 3], dst_port=[4, 5, 6],
                      proto=[6, 6, 6], size=[40, 40, 40])
        trace = PacketTrace(batch)
        batches = list(trace.batches(0.1))
        assert len(batches) == 10
        assert len(batches[0]) == 2
        assert all(len(b) == 0 for b in batches[1:9])
        assert len(batches[9]) == 1

    def test_num_batches_matches(self):
        batch = make_batch(n=200, time_bin=1.5)
        trace = PacketTrace(batch)
        assert trace.num_batches(0.1) == len(list(trace.batches(0.1)))

    def test_empty_trace(self):
        trace = PacketTrace(Batch.empty())
        assert trace.duration == 0.0
        assert list(trace.batches(0.1)) == []
