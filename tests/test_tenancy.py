"""Multi-tenant allocation engine: groups, kernels, round-trips, fairness.

Covers the vectorised allocation engine end to end:

* ``TenantGroup``/``TenantRegistry`` validation and JSON round-trips,
  including the derived-``queries`` rule on :class:`SystemConfig`;
* bit-identity of the columnar flat kernels against the historical scalar
  references (which also pins the sort+cumsum+searchsorted rewrite of
  ``_disable_largest_min_demands`` to the old O(n^2) loop's decisions);
* the shared ``(min_cycles, name)`` tie-break between
  ``game.active_players`` and the allocator's disable rule;
* Hypothesis property suites for ``_water_fill`` and the two-tier tenant
  kernel (conservation, box constraints, max-min dominance, capacity
  monotonicity, vectorised == scalar reference);
* fairness guarantees at scale: no tenant starved below its floor, cheaters
  capped at the ``C/|Q|`` equilibrium payoff;
* tenant budgets surviving ``to_dict``/``from_dict``, checkpoint/restore,
  the sharded merge tier and 16-node fleet federation.
"""

import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import game
from repro.core.fairness import (ARRAY_STRATEGIES, QueryDemand,
                                 SCALAR_REFERENCE, _water_fill, mmfs_cpu,
                                 name_ranks)
from repro.core.tenancy import (TenantAssignment, TenantGroup, TenantRegistry,
                                parse_tenant_groups, two_tier_allocate,
                                two_tier_scalar)
from repro.fleet import FleetRunner, FleetTopology
from repro.monitor.config import SystemConfig
from repro.monitor.sharding import ShardedSystem
from repro.serve.checkpoint import capture, restore_session
from repro.testing import assert_results_identical

TENANTS = (
    TenantGroup(name="ops",
                queries=(("counter", {"name": "c0"}),
                         ("flows", {"name": "f0"})),
                weight=2.0, min_rate=0.05),
    TenantGroup(name="research",
                queries=(("top-k", {"name": "t0"}),
                         ("application", {"name": "a0"})),
                budget_share=0.5),
)


def _tenant_config(**overrides):
    kwargs = dict(mode="predictive", strategy="mmfs_cpu", tenants=TENANTS,
                  cycles_per_second=2.0e7, seed=5)
    kwargs.update(overrides)
    return SystemConfig(**kwargs)


def _columns(n, seed, tie_fraction=0.3):
    """Random demand columns with deliberate ties in both columns."""
    rng = np.random.default_rng(seed)
    predicted = rng.uniform(1e2, 1e6, n)
    ties = rng.random(n) < tie_fraction
    predicted[ties] = np.round(predicted[ties], -3)
    min_rates = np.where(rng.random(n) < 0.4,
                         rng.choice([0.0, 0.1, 0.25], size=n), 0.0)
    names = [f"q{i:04d}" for i in rng.permutation(n)]
    return names, predicted, min_rates


# ----------------------------------------------------------------------
# TenantGroup / registry / config round-trips
# ----------------------------------------------------------------------
class TestTenantGroups:
    def test_validation_errors(self):
        with pytest.raises(ValueError, match="non-empty"):
            TenantGroup(name="")
        with pytest.raises(ValueError, match="weight"):
            TenantGroup(name="t", weight=0.0)
        with pytest.raises(ValueError, match="budget_share"):
            TenantGroup(name="t", budget_share=1.5)
        with pytest.raises(ValueError, match="min_rate"):
            TenantGroup(name="t", min_rate=-0.1)
        with pytest.raises(ValueError, match="duplicate tenant"):
            parse_tenant_groups([TenantGroup(name="t"),
                                 TenantGroup(name="t")])
        with pytest.raises(ValueError, match="belongs to both"):
            parse_tenant_groups([
                TenantGroup(name="a", queries=("counter",)),
                TenantGroup(name="b", queries=("counter",))])

    def test_group_round_trips_through_dict(self):
        for group in TENANTS:
            again = TenantGroup.from_dict(
                json.loads(json.dumps(group.to_dict())))
            assert again == group
        with pytest.raises(ValueError, match="unknown tenant group keys"):
            TenantGroup.from_dict({"name": "t", "wieght": 2.0})

    def test_registry_columns(self):
        registry = TenantRegistry(TENANTS)
        assert registry.declared and registry.names == ["ops", "research"]
        assert registry.weight[registry.slot("ops")] == 2.0
        assert registry.min_rate_for("c0") == 0.05
        assert registry.min_rate_for("t0") == 0.0
        caps = registry.capacity_caps(100.0)
        assert caps[registry.slot("ops")] == np.inf
        assert caps[registry.slot("research")] == 50.0
        # Implicit singleton tenants for unowned queries, stable slots.
        slot = registry.assign("stray")
        assert registry.assign("stray") == slot
        assert "stray" not in registry.declared_tenant_of

    def test_config_derives_queries_from_tenants(self):
        config = _tenant_config()
        assert [spec.instance_name for spec in config.queries] == \
            ["c0", "f0", "t0", "a0"]

    def test_config_rejects_disagreeing_queries(self):
        with pytest.raises(ValueError, match="queries and tenants disagree"):
            _tenant_config(queries=("counter",))

    def test_config_accepts_matching_queries(self):
        derived = _tenant_config().queries
        config = _tenant_config(queries=derived)
        assert config.tenants == TENANTS

    def test_config_round_trips_with_tenants(self):
        config = _tenant_config()
        again = SystemConfig.from_dict(json.loads(json.dumps(
            config.to_dict())))
        assert again == config
        assert again.tenants == TENANTS


# ----------------------------------------------------------------------
# Columnar kernels == scalar references, bit for bit
# ----------------------------------------------------------------------
class TestKernelBitIdentity:
    """The array kernels must reproduce the historical per-object scalar
    strategies *exactly* — same floats, same disable decisions — which also
    pins the sort+cumsum+searchsorted ``_disable_largest_min_demands`` to
    the old quadratic loop."""

    @pytest.mark.parametrize("key", sorted(ARRAY_STRATEGIES))
    @pytest.mark.parametrize("n", [1, 7, 137, 500])
    def test_kernel_matches_scalar_reference(self, key, n):
        names, predicted, min_rates = _columns(n, seed=n)
        demands = [QueryDemand(names[i], float(predicted[i]),
                               float(min_rates[i])) for i in range(n)]
        total = float(predicted.sum())
        for capacity in (0.0, 0.05 * total, 0.4 * total, 2.0 * total):
            reference = SCALAR_REFERENCE[key](demands, capacity)
            kernel = ARRAY_STRATEGIES[key](names, predicted, min_rates,
                                           capacity,
                                           rank=name_ranks(names))
            assert kernel.rates == reference.rates
            assert kernel.cycles == reference.cycles
            assert kernel.disabled == reference.disabled
            assert kernel.total_cycles == reference.total_cycles

    def test_disable_rule_under_extreme_floors(self):
        # Floors alone exceed capacity: the disable loop does all the work.
        n = 64
        names = [f"q{i:02d}" for i in range(n)]
        predicted = np.full(n, 1000.0)
        min_rates = np.ones(n)
        demands = [QueryDemand(names[i], 1000.0, 1.0) for i in range(n)]
        for capacity in (500.0, 1000.0, 17_500.0, 63_999.0):
            for key in ARRAY_STRATEGIES:
                reference = SCALAR_REFERENCE[key](demands, capacity)
                kernel = ARRAY_STRATEGIES[key](names, predicted, min_rates,
                                               capacity)
                assert kernel.rates == reference.rates
                assert kernel.disabled == reference.disabled


# ----------------------------------------------------------------------
# Shared tie-break between the game and the allocator
# ----------------------------------------------------------------------
class TestTieBreakConsistency:
    def test_game_and_allocator_disable_the_same_queries(self):
        # Nine players with identical demands and binding floors; capacity
        # admits exactly four.  Both code paths must keep the four
        # lexicographically smallest names.
        rng = np.random.default_rng(8)
        names = [f"q{i}" for i in rng.permutation(9)]
        demand = 100.0
        capacity = 4 * demand + 1.0
        mask = game.active_players([demand] * 9, capacity, names=names)
        from_game = {names[i] for i in np.flatnonzero(mask)}
        allocation = mmfs_cpu(
            [QueryDemand(name, demand, 1.0) for name in names], capacity)
        from_allocator = set(names) - set(allocation.disabled)
        assert from_game == from_allocator == set(sorted(names)[:4])

    def test_boundary_is_stable_across_orderings(self):
        demand = 50.0
        capacity = 2 * demand  # exactly two fit
        for ordering in (["b", "a", "c"], ["c", "b", "a"], ["a", "b", "c"]):
            mask = game.active_players([demand] * 3, capacity,
                                       names=ordering)
            assert {ordering[i] for i in np.flatnonzero(mask)} == {"a", "b"}
            allocation = mmfs_cpu(
                [QueryDemand(name, demand, 1.0) for name in ordering],
                capacity)
            assert allocation.disabled == ["c"]


# ----------------------------------------------------------------------
# Hypothesis: _water_fill properties
# ----------------------------------------------------------------------
def _boxes(draw, size):
    floors = np.array(draw(st.lists(
        st.floats(0.0, 1e4), min_size=size, max_size=size)))
    spans = np.array(draw(st.lists(
        st.floats(0.0, 1e4), min_size=size, max_size=size)))
    weights = np.array(draw(st.lists(
        st.floats(0.1, 8.0), min_size=size, max_size=size)))
    return floors, floors + spans, weights


@st.composite
def water_fill_cases(draw):
    size = draw(st.integers(1, 20))
    floors, ceilings, weights = _boxes(draw, size)
    fraction = draw(st.floats(0.0, 1.5))
    capacity = fraction * float((weights * ceilings).sum())
    return floors, ceilings, weights, capacity


class TestWaterFillProperties:
    @given(water_fill_cases())
    @settings(deadline=None, max_examples=80)
    def test_box_conservation_and_common_level(self, case):
        floors, ceilings, weights, capacity = case
        filled = _water_fill(floors, ceilings, weights, capacity)
        tol = 1e-6 * max(1.0, float(ceilings.max()))
        assert np.all(filled >= floors - tol)
        assert np.all(filled <= ceilings + tol)
        used = float((weights * filled).sum())
        min_total = float((weights * floors).sum())
        max_total = float((weights * ceilings).sum())
        if capacity >= max_total:
            np.testing.assert_allclose(filled, ceilings)
        elif capacity <= min_total:
            np.testing.assert_allclose(filled, floors)
        else:
            # Binding capacity is exhausted to bisection tolerance.
            assert abs(used - capacity) <= \
                1e-6 * max(1.0, capacity) + len(filled) * tol
        # Max-min dominance: a strictly poorer element is capped by its own
        # ceiling, or the richer one is propped up by its floor.
        for i in range(len(filled)):
            for j in range(len(filled)):
                if filled[i] < filled[j] - tol:
                    assert (filled[i] >= ceilings[i] - tol or
                            filled[j] <= floors[j] + tol)

    @given(water_fill_cases(), st.floats(1.01, 4.0))
    @settings(deadline=None, max_examples=60)
    def test_capacity_monotonicity(self, case, growth):
        floors, ceilings, weights, capacity = case
        tol = 1e-6 * max(1.0, float(ceilings.max()))
        smaller = _water_fill(floors, ceilings, weights, capacity)
        larger = _water_fill(floors, ceilings, weights, capacity * growth)
        assert np.all(larger >= smaller - tol)


# ----------------------------------------------------------------------
# Hypothesis: two-tier tenant kernel vs scalar reference
# ----------------------------------------------------------------------
@st.composite
def tenanted_cases(draw):
    n_queries = draw(st.integers(1, 24))
    n_tenants = draw(st.integers(1, 5))
    # Zero demand is a real case; sub-milli magnitudes only probe float
    # underflow in the per-weight divisions, which both implementations
    # share by construction.
    predicted = np.array(draw(st.lists(
        st.one_of(st.just(0.0), st.floats(1e-3, 1e4)),
        min_size=n_queries, max_size=n_queries)))
    min_rates = np.array(draw(st.lists(
        st.floats(0.0, 1.0), min_size=n_queries, max_size=n_queries)))
    ids = np.array(draw(st.lists(
        st.integers(0, n_tenants - 1),
        min_size=n_queries, max_size=n_queries)), dtype=np.intp)
    groups = tuple(
        TenantGroup(
            name=f"t{slot}",
            weight=draw(st.floats(0.2, 5.0)),
            budget_share=draw(st.one_of(st.none(), st.floats(0.1, 1.0))))
        for slot in range(n_tenants))
    fraction = draw(st.floats(0.0, 1.2))
    capacity = fraction * (float(predicted.sum()) + 1.0)
    packet_fair = draw(st.booleans())
    names = [f"q{i:03d}" for i in range(n_queries)]
    return names, predicted, min_rates, ids, groups, capacity, packet_fair


class TestTwoTierProperties:
    @given(tenanted_cases())
    @settings(deadline=None, max_examples=60)
    def test_vectorised_matches_scalar_reference(self, case):
        names, predicted, min_rates, ids, groups, capacity, packet_fair = \
            case
        registry = TenantRegistry(groups)
        kernel = two_tier_allocate(names, predicted, min_rates, ids,
                                   registry, capacity,
                                   packet_fair=packet_fair)
        scalar = two_tier_scalar(names, predicted, min_rates, ids, registry,
                                 capacity, packet_fair=packet_fair)
        assert set(kernel.disabled) == set(scalar.disabled)
        for name in names:
            assert kernel.rate(name) == pytest.approx(scalar.rate(name),
                                                      abs=1e-4)

    @given(tenanted_cases())
    @settings(deadline=None, max_examples=60)
    def test_conservation_floors_and_budget_caps(self, case):
        names, predicted, min_rates, ids, groups, capacity, packet_fair = \
            case
        registry = TenantRegistry(groups)
        allocation = two_tier_allocate(names, predicted, min_rates, ids,
                                       registry, capacity,
                                       packet_fair=packet_fair)
        tol = 1e-6 * max(1.0, capacity)
        assert allocation.total_cycles <= capacity + tol
        disabled = set(allocation.disabled)
        caps = registry.capacity_caps(capacity)
        used_per_tenant = np.zeros(registry.size)
        for index, name in enumerate(names):
            rate = allocation.rate(name)
            assert 0.0 <= rate <= 1.0
            if name not in disabled:
                # Active queries never sample below their floor.
                assert rate >= min_rates[index] - 1e-9
                used_per_tenant[ids[index]] += rate * predicted[index]
        # Budget ceilings hold per tenant.
        assert np.all(used_per_tenant <= caps + tol)

    @given(tenanted_cases(), st.floats(1.05, 3.0))
    @settings(deadline=None, max_examples=40)
    def test_capacity_monotonicity(self, case, growth):
        names, predicted, min_rates, ids, groups, capacity, packet_fair = \
            case
        registry = TenantRegistry(groups)
        small = two_tier_allocate(names, predicted, min_rates, ids,
                                  registry, capacity,
                                  packet_fair=packet_fair)
        large = two_tier_allocate(names, predicted, min_rates, ids,
                                  registry, capacity * growth,
                                  packet_fair=packet_fair)
        # More capacity never disables more queries.
        assert set(large.disabled) <= set(small.disabled)


# ----------------------------------------------------------------------
# Fairness guarantees at scale
# ----------------------------------------------------------------------
class TestFairnessAtScale:
    def test_no_tenant_starved_below_its_floor(self):
        rng = np.random.default_rng(11)
        n_queries, n_tenants = 400, 40
        names = [f"q{i:04d}" for i in range(n_queries)]
        groups = tuple(
            TenantGroup(
                name=f"tenant-{slot:02d}",
                queries=tuple(("counter", {"name": member})
                              for member in names[slot::n_tenants]),
                weight=float(1 + slot % 4),
                min_rate=0.02,
                budget_share=(0.5 if slot % 7 == 0 else None))
            for slot in range(n_tenants))
        registry = TenantRegistry(groups)
        ids = np.array([registry.slot(registry.declared_tenant_of[name])
                        for name in names], dtype=np.intp)
        predicted = rng.uniform(1e3, 1e5, n_queries)
        min_rates = np.array([registry.min_rate_for(name)
                              for name in names])
        # Severe overload, but the floors fit: nobody may be disabled and
        # every query keeps at least its tenant's guaranteed rate.
        capacity = 0.15 * float(predicted.sum())
        assert float((min_rates * predicted).sum()) < capacity
        allocation = TenantAssignment(registry, ids).allocate(
            "mmfs_cpu", names, predicted, min_rates, capacity)
        assert allocation.disabled == []
        rates = np.array([allocation.rate(name) for name in names])
        assert np.all(rates >= 0.02 - 1e-9)
        assert allocation.total_cycles <= capacity * (1 + 1e-9)
        assert set(allocation.tenant_shares) == set(registry.names)

    def test_inflated_minimum_demand_is_disabled_first(self):
        # Section 5.2.1: when floors exceed capacity, the largest minimum
        # demands go first — inflating your floor ejects you, it does not
        # crowd out honest queries.
        names = [f"q{i}" for i in range(20)] + ["cheater"]
        predicted = np.full(21, 1000.0)
        predicted[-1] = 50_000.0
        min_rates = np.full(21, 0.5)
        min_rates[-1] = 1.0
        capacity = 12_000.0  # honest floors: 21 * 500; cheater floor: 50k
        allocation = ARRAY_STRATEGIES["mmfs_cpu"](list(names), predicted,
                                                  min_rates, capacity)
        assert "cheater" in allocation.disabled
        assert set(allocation.disabled) == {"cheater"}

    def test_cheater_capped_at_equilibrium_payoff(self):
        # Section 5.3: against |Q|-1 players at the C/|Q| equilibrium, no
        # demand earns more than C/|Q|, and overbidding earns zero.
        n, capacity = 200, 1.0e6
        fair = capacity / n
        others = np.full(n - 1, fair)
        assert game.payoff_of(0, fair * 1.5, others, capacity) == 0.0
        _, best_payoff = game.best_response(0, others, capacity)
        assert best_payoff <= fair * (1 + 1e-6)
        profile = game.equilibrium_profile(n, capacity)
        assert game.is_nash_equilibrium(profile, capacity)
        assert game.aggregate_utility_equilibrium(n, capacity) == \
            pytest.approx(capacity)


# ----------------------------------------------------------------------
# Tenant budgets through the system: sessions, checkpoints, shards, fleet
# ----------------------------------------------------------------------
class TestTenantsThroughTheSystem:
    def test_session_accounts_cycles_per_tenant(self, small_trace):
        config = _tenant_config()
        session = config.build().open_session(time_bin=0.2)
        for batch in small_trace.batch_list(0.2):
            session.ingest(batch)
        metrics = session.metrics
        assert metrics["tenants"]["count"] == 2
        result = session.close()
        totals = result.tenant_cycle_totals()
        assert set(totals) <= {"ops", "research"}
        by_query = {}
        for record in result.bins:
            for name, cycles in record.query_cycles_by_query.items():
                by_query[name] = by_query.get(name, 0.0) + cycles
        expected_ops = by_query.get("c0", 0.0) + by_query.get("f0", 0.0)
        assert totals.get("ops", 0.0) == pytest.approx(expected_ops)

    def test_tenants_survive_checkpoint_restore(self, small_trace):
        config = _tenant_config()
        bins = small_trace.batch_list(0.2)
        half = len(bins) // 2

        session = config.build().open_session(time_bin=0.2)
        for batch in bins:
            session.ingest(batch)
        uninterrupted = session.close()

        session = config.build().open_session(time_bin=0.2)
        for batch in bins[:half]:
            session.ingest(batch)
        state = pickle.loads(pickle.dumps(capture(session)))
        session.close()
        restored = restore_session(state)
        assert restored.system.config.tenants == TENANTS
        for batch in bins[half:]:
            restored.ingest(batch)
        resumed = restored.close()
        assert_results_identical(resumed, uninterrupted)
        assert resumed.tenant_cycle_totals() == \
            uninterrupted.tenant_cycle_totals()

    def test_tenants_survive_sharded_merge(self, small_trace):
        config = _tenant_config(num_shards=4)
        sharded = ShardedSystem(config=config, n_workers=1,
                                respect_cores=False, backend="inprocess")
        session = sharded.open_session(time_bin=0.2)
        for batch in small_trace.batch_list(0.2):
            session.ingest(batch)
        metrics = session.metrics
        assert metrics["tenants"]["count"] == 2
        result = session.close()
        totals = result.tenant_cycle_totals()
        assert set(totals) <= {"ops", "research"}
        # Merged tenant accounting is consistent with merged query cycles.
        by_query = {}
        for record in result.bins:
            for name, cycles in record.query_cycles_by_query.items():
                by_query[name] = by_query.get(name, 0.0) + cycles
        assert totals.get("research", 0.0) == pytest.approx(
            by_query.get("t0", 0.0) + by_query.get("a0", 0.0))

    def test_scenario_matrix_tenant_axis(self):
        from repro.experiments.parallel import ScenarioMatrix
        matrix = ScenarioMatrix(traces=("cesca",), overloads=(0.3,),
                                modes=("predictive",),
                                strategies=("mmfs_cpu",),
                                queries=("counter", "flows", "top-k"),
                                tenant_counts=(0, 2))
        cells = list(matrix.cells())
        assert len(cells) == len(matrix) == 2
        plain, tenanted = cells
        assert plain.tenant_count == 0 and "/tenants=" not in plain.cell_id
        assert tenanted.cell_id.endswith("/tenants=2")
        config = tenanted.to_config(cycles_per_second=1e7)
        assert len(config.tenants) == 2
        assert sorted(spec.instance_name for group in config.tenants
                      for spec in group.queries) == \
            sorted(spec.instance_name for spec in plain.to_config(
                cycles_per_second=1e7).queries)
        with pytest.raises(ValueError, match="exceeds the"):
            ScenarioMatrix(traces=("cesca",), queries=("counter",),
                           tenant_counts=(3,))

    def test_tenants_survive_fleet_federation(self, small_trace):
        config = _tenant_config()
        fleet = FleetRunner(FleetTopology.uniform(16), config=config,
                            backend="inprocess")
        result = fleet.run(small_trace, time_bin=0.5)
        federated = result.federated.tenant_cycle_totals()
        assert set(federated) <= {"ops", "research"}
        summed = {}
        for node_result in result.node_results:
            for tenant, cycles in node_result.tenant_cycle_totals().items():
                summed[tenant] = summed.get(tenant, 0.0) + cycles
        assert set(summed) == set(federated)
        for tenant, cycles in federated.items():
            assert cycles == pytest.approx(summed[tenant])
