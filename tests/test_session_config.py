"""Tests for the SystemConfig / MonitoringSession API redesign.

Three families:

* **Config** — eager validation with helpful messages, ``replace``, and
  ``to_dict``/``from_dict`` round-tripping (the serialisation contract that
  lets grids, pool workers and checkpoints speak one type).
* **Session** — ``run()`` must be bit-identical to driving
  ``open_session``/``ingest``/``close`` by hand; live ``add_query`` must
  reproduce the pre-registered arrival scenario of Figure 6.9 bit for bit;
  departures must flush logs and leave no stale enforcer/controller state;
  ``set_capacity`` must take effect at the next bin boundary.
* **Shim** — the legacy ``**system_kwargs`` surface of the experiment
  helpers keeps working (user overrides now *win* over harness defaults
  instead of raising ``TypeError``) but warns with
  :class:`ReproDeprecationWarning`.
"""

import json

import numpy as np
import pytest

from repro import MonitoringSystem, ReproDeprecationWarning, SystemConfig
from repro.experiments import runner
from repro.queries import make_query
from repro.testing import assert_results_identical as _assert_results_identical

QUERY_SET = ("counter", "flows", "top-k")


@pytest.fixture(scope="module")
def calibrated(small_trace):
    return runner.calibrate_capacity(QUERY_SET, small_trace)




# ----------------------------------------------------------------------
# SystemConfig
# ----------------------------------------------------------------------
class TestSystemConfig:
    def test_roundtrip_to_dict_from_dict(self):
        config = SystemConfig(mode="reactive", strategy="mmfs_cpu",
                              predictor="ewma",
                              predictor_kwargs={"alpha": 0.5},
                              cycles_per_second=2.5e8, buffer_seconds=0.4,
                              feature_method="exact", measurement_noise=0.05,
                              reactive_min_rate=0.1, seed=11)
        data = config.to_dict()
        # The dict must be plain JSON (what a checkpoint or a grid spec is).
        rebuilt = SystemConfig.from_dict(json.loads(json.dumps(data)))
        assert rebuilt == config
        assert rebuilt.to_dict() == data

    def test_replace_revalidates_and_preserves(self):
        config = SystemConfig(strategy="mmfs_pkt")
        changed = config.replace(seed=9, cycles_per_second=1e8)
        assert changed.strategy == "mmfs_pkt"
        assert changed.seed == 9
        assert config.seed == 0, "replace must not mutate the original"
        with pytest.raises(ValueError, match="valid modes"):
            config.replace(mode="warp-speed")
        with pytest.raises(ValueError, match="unknown SystemConfig field"):
            config.replace(warp_factor=9)

    def test_mode_alias_canonicalised(self):
        assert SystemConfig(mode="no_lshed").mode == "original"

    @pytest.mark.parametrize("kwargs, message", [
        ({"strategy": "fair-ish"}, "valid strategies"),
        ({"predictor": "oracle"}, "valid predictors"),
        ({"mode": "turbo"}, "valid modes"),
        ({"feature_method": "sketchy"}, "valid methods"),
        ({"cycles_per_second": -1.0}, "cycles_per_second"),
        ({"reactive_min_rate": 1.5}, "reactive_min_rate"),
    ])
    def test_eager_validation_lists_options(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            SystemConfig(**kwargs)

    def test_monitoring_system_validates_eagerly(self):
        # The constructor path goes through SystemConfig, so a typo fails at
        # construction, not deep inside the controller on first use.
        with pytest.raises(ValueError, match="valid strategies"):
            MonitoringSystem([make_query("counter")], strategy="fair-ish")
        with pytest.raises(ValueError, match="valid predictors"):
            MonitoringSystem([make_query("counter")], predictor="oracle")

    def test_callable_strategy_allowed_but_not_serialisable(self):
        from repro.core.fairness import eq_srates
        config = SystemConfig(strategy=eq_srates)
        assert callable(config.strategy)
        with pytest.raises(TypeError, match="not serialisable"):
            config.to_dict()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown SystemConfig field"):
            SystemConfig.from_dict({"mode": "predictive", "warp_factor": 9})

    def test_unknown_field_error_suggests_close_match(self):
        # Hot-reload safety: a daemon's POST /config rejects typo'd keys
        # with a did-you-mean hint, so the operator sees the fix in the
        # HTTP error body instead of hunting through the field list.
        with pytest.raises(ValueError,
                           match=r"did you mean 'cycles_per_second'\?"):
            SystemConfig.from_dict({"cycles_per_secnod": 1e8})
        with pytest.raises(ValueError, match=r"did you mean 'num_shards'\?"):
            SystemConfig().replace(num_shard=4)
        # A key nothing like any field still names itself and the options.
        with pytest.raises(ValueError, match=r"'zzz'.*valid fields"):
            SystemConfig.from_dict({"zzz": 1})

    def test_build_constructs_equivalent_system(self, small_trace, calibrated):
        capacity, _ = calibrated
        config = runner.system_config(strategy="mmfs_pkt",
                                      cycles_per_second=capacity * 0.5)
        built = config.build([make_query(n) for n in QUERY_SET])
        assert built.config == config
        kwargs_system = MonitoringSystem.from_config(
            config, [make_query(n) for n in QUERY_SET])
        _assert_results_identical(built.run(small_trace),
                                  kwargs_system.run(small_trace))


# ----------------------------------------------------------------------
# MonitoringSession
# ----------------------------------------------------------------------
class TestSessionEquivalence:
    def test_run_is_bit_identical_to_manual_session(self, small_trace,
                                                    calibrated):
        capacity, _ = calibrated
        config = runner.system_config(cycles_per_second=capacity * 0.5)
        ran = config.build([make_query(n) for n in QUERY_SET]).run(small_trace)

        system = config.build([make_query(n) for n in QUERY_SET])
        session = system.open_session(time_bin=runner.TIME_BIN,
                                      name=small_trace.name)
        records = [session.ingest(batch)
                   for batch in small_trace.batches(runner.TIME_BIN)]
        streamed = session.close()

        assert len(records) == len(ran.bins)
        _assert_results_identical(ran, streamed)
        # close() is idempotent and ingest-after-close is an error.
        assert session.close() is streamed
        with pytest.raises(RuntimeError):
            session.ingest(next(iter(small_trace.batches(runner.TIME_BIN))))

    def test_live_add_query_matches_preregistered_arrival(self, small_trace,
                                                          calibrated):
        """The Chapter 6 dynamic-arrival behaviour, both ways.

        Pre-registering a query with ``start_time`` (the old offline idiom)
        and submitting it live through ``session.add_query`` when the stream
        reaches the arrival time must produce bit-identical executions.
        """
        capacity, _ = calibrated
        arrival = small_trace.duration * 0.5
        config = runner.system_config(cycles_per_second=capacity * 0.6)

        offline = config.build([make_query("counter"), make_query("flows")])
        offline.add_query(make_query("top-k"), start_time=arrival)
        expected = offline.run(small_trace)

        live = config.build([make_query("counter"), make_query("flows")])
        session = live.open_session(time_bin=runner.TIME_BIN,
                                    name=small_trace.name)
        added = False
        for batch in small_trace.batches(runner.TIME_BIN):
            if not added and batch.start_ts + 1e-9 >= arrival:
                session.add_query(make_query("top-k"), start_time=arrival)
                added = True
            session.ingest(batch)
        streamed = session.close()

        assert added
        _assert_results_identical(expected, streamed)
        # The arriving query really was inactive before its arrival bin.
        early = [record for record in streamed.bins
                 if record.start_ts + 1e-9 < arrival]
        assert early and all("top-k" not in record.rates for record in early)

    def test_figure_6_9_runs_on_session_api(self, payload_trace_small):
        from repro.experiments import chapter6
        outcome = chapter6.figure_6_9_query_arrivals(trace=payload_trace_small)
        assert "top-k" in outcome["accuracy"]
        assert "p2p-detector" in outcome["accuracy"]
        rates = outcome["rates_over_time"]["top-k"]
        arrival = list(outcome["arrival_times"].values())[0]
        assert np.all(rates[:max(1, int(arrival / runner.TIME_BIN) - 1)] == 1.0)


class TestSessionLiveReconfiguration:
    def test_remove_query_flushes_log_and_clears_state(self, small_trace,
                                                       calibrated):
        capacity, _ = calibrated
        config = runner.system_config(cycles_per_second=capacity * 0.6)
        system = config.build([make_query("counter"), make_query("flows")])
        session = system.open_session(time_bin=runner.TIME_BIN)
        batches = small_trace.batch_list(runner.TIME_BIN)
        half = len(batches) // 2
        for batch in batches[:half]:
            session.ingest(batch)
        # Leave a trace in the per-query state the removal must clear.
        system.enforcer.record("flows", expected_cycles=1.0,
                               actual_cycles=100.0, bin_index=0)
        session.remove_query("flows")
        for batch in batches[half:]:
            session.ingest(batch)
        result = session.close()

        # Departed mid-stream: present in the result, absent from late bins.
        assert "flows" in result.query_logs
        assert len(result.query_logs["flows"]) > 0
        assert all("flows" not in record.rates
                   for record in result.bins[half:])
        assert "flows" not in system.query_names
        # No stale enforcer/controller state survives the departure.
        assert system.enforcer.state("flows").total_violations == 0
        assert "flows" not in system.controller.last_rates

    def test_remove_then_readd_same_name_starts_clean(self, small_trace,
                                                      calibrated):
        capacity, _ = calibrated
        config = runner.system_config(cycles_per_second=capacity * 0.6)
        system = config.build([make_query("counter"), make_query("flows")])
        session = system.open_session(time_bin=runner.TIME_BIN)
        batches = small_trace.batch_list(runner.TIME_BIN)
        third = len(batches) // 3
        for batch in batches[:third]:
            session.ingest(batch)
        session.remove_query("flows")
        session.add_query(make_query("flows"))
        for batch in batches[third:]:
            session.ingest(batch)
        result = session.close()
        # The re-added query ran (rates appear again after the boundary) and
        # the final result holds the newer query's log.
        assert any("flows" in record.rates for record in result.bins[third:])
        assert len(result.query_logs["flows"]) > 0

    def test_unknown_removal_and_duplicate_add_rejected(self, small_trace):
        system = runner.system_config().build([make_query("counter")])
        session = system.open_session()
        with pytest.raises(KeyError):
            session.remove_query("nope")
        with pytest.raises(ValueError, match="already registered"):
            session.add_query(make_query("counter"))
        # A double removal fails at the second call, not later inside
        # ingest() when the queued duplicate is applied.
        session.remove_query("counter")
        with pytest.raises(KeyError):
            session.remove_query("counter")

    def test_departed_log_survives_readd_and_second_departure(
            self, small_trace, calibrated):
        """A replaced query's flushed intervals must not be overwritten."""
        capacity, _ = calibrated
        config = runner.system_config(cycles_per_second=capacity)
        system = config.build([make_query("counter"), make_query("flows")])
        session = system.open_session(time_bin=runner.TIME_BIN)
        batches = small_trace.batch_list(runner.TIME_BIN)
        third = len(batches) // 3
        for batch in batches[:third]:
            session.ingest(batch)
        session.remove_query("flows")
        session.add_query(make_query("flows"))
        for batch in batches[third: 2 * third]:
            session.ingest(batch)
        first_lifetime = len(session.partial_result().query_logs["flows"])
        assert first_lifetime > 0
        session.remove_query("flows")   # departs a second time
        for batch in batches[2 * third:]:
            session.ingest(batch)
        result = session.close()
        log = result.query_logs["flows"]
        # Both lifetimes are present, in chronological order.
        assert len(log) > first_lifetime
        assert log.intervals == sorted(log.intervals)

    def test_set_capacity_takes_effect_next_bin(self, small_trace,
                                                calibrated):
        capacity, _ = calibrated
        config = runner.system_config(cycles_per_second=capacity * 2.0)
        system = config.build([make_query(n) for n in QUERY_SET])
        session = system.open_session(time_bin=runner.TIME_BIN)
        batches = small_trace.batch_list(runner.TIME_BIN)
        half = len(batches) // 2
        for batch in batches[:half]:
            session.ingest(batch)
        before = session.partial_result()
        assert before.mean_sampling_rate() > 0.98, "ample capacity: no shedding"
        session.set_capacity(capacity * 0.3)
        after_records = [session.ingest(batch) for batch in batches[half:]]
        session.close()
        # The budget visible to the pipeline changed exactly at the boundary.
        assert before.bins[-1].available_cycles == \
            pytest.approx(capacity * 2.0 * runner.TIME_BIN)
        assert after_records[0].available_cycles == \
            pytest.approx(capacity * 0.3 * runner.TIME_BIN)
        # And the system started shedding under the reduced capacity.
        late_rates = [record.mean_rate for record in after_records]
        assert min(late_rates) < 0.95

    def test_partial_result_is_a_stable_snapshot(self, small_trace,
                                                 calibrated):
        capacity, reference = calibrated
        config = runner.system_config(cycles_per_second=capacity * 0.5)
        system = config.build([make_query(n) for n in QUERY_SET])
        session = system.open_session(time_bin=runner.TIME_BIN)
        batches = small_trace.batch_list(runner.TIME_BIN)
        for batch in batches[: len(batches) // 2]:
            session.ingest(batch)
        snapshot = session.partial_result()
        bins_then = len(snapshot.bins)
        logs_then = {name: len(log)
                     for name, log in snapshot.query_logs.items()}
        # Accuracy-so-far is computable against a full reference execution.
        accuracy = runner.accuracy_by_query(snapshot, reference)
        assert set(accuracy) == set(QUERY_SET)
        for batch in batches[len(batches) // 2:]:
            session.ingest(batch)
        session.close()
        # Continuing the session must not mutate the earlier snapshot.
        assert len(snapshot.bins) == bins_then
        assert {name: len(log)
                for name, log in snapshot.query_logs.items()} == logs_then


# ----------------------------------------------------------------------
# Legacy kwargs shim
# ----------------------------------------------------------------------
class TestKwargsShim:
    def test_feature_method_override_no_longer_collides(self, small_trace,
                                                        calibrated):
        """Regression: ``**FEATURE_CONFIG`` vs ``**system_kwargs`` collision.

        ``run_system(..., feature_method='exact')`` used to raise
        ``TypeError: got multiple values for keyword argument``; the user
        override must simply win over the harness default (via the
        deprecation shim).
        """
        capacity, _ = calibrated
        with pytest.warns(ReproDeprecationWarning):
            result = runner.run_system(["counter"], small_trace, capacity,
                                       feature_method="exact")
        assert result.total_packets == len(small_trace)
        with pytest.warns(ReproDeprecationWarning):
            bitmap = runner.run_system(["counter"], small_trace, capacity,
                                       feature_method="bitmap")
        assert bitmap.total_packets == len(small_trace)

    def test_shim_kwargs_reach_the_system(self, small_trace, calibrated):
        capacity, _ = calibrated
        with pytest.warns(ReproDeprecationWarning):
            result, _ = runner.run_with_overload(
                ("counter",), small_trace, 0.3, base_capacity=capacity,
                reference=object(), seed=5)
        assert isinstance(result.mean_sampling_rate(), float)

    def test_config_path_does_not_warn(self, small_trace, calibrated):
        import warnings
        capacity, _ = calibrated
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            runner.run_system(["counter"], small_trace, capacity,
                              config=runner.system_config(seed=5))

    def test_shim_and_config_agree(self, small_trace, calibrated):
        capacity, _ = calibrated
        with pytest.warns(ReproDeprecationWarning):
            shimmed = runner.run_system(QUERY_SET, small_trace,
                                        capacity * 0.5, seed=3)
        canonical = runner.run_system(QUERY_SET, small_trace, capacity * 0.5,
                                      config=runner.system_config(seed=3))
        _assert_results_identical(shimmed, canonical)
