"""Merge-invariant property tests for every registered query.

For each kind in :data:`repro.queries.QUERY_CLASSES`, Hypothesis draws a
random multi-batch stream, flow-partitions every batch across N sub-streams
(the exact split :mod:`repro.monitor.sharding` performs), runs one query
instance per sub-stream plus one over the whole stream, and checks that
``merge_interval_results`` over the sub-stream results reproduces the
whole-stream result — exactly where the merge is exact, within the
documented bound where it is a mergeable approximation:

===============  ====================================================
counter          exact (additive, flow-disjoint)
flows            exact (flow tables are disjoint across shards)
trace            exact (per-packet additive)
pattern-search   exact (per-packet additive)
application      exact (per-class additive)
high-watermark   bounded: ``true <= merged <= N * true`` (per-shard
                 peaks sum; exact only when shards peak in one bin)
top-k            with untruncated shard tables: the merged ranking is
                 an exact prefix of the whole-stream one (k recovers
                 as the widest shard ranking), byte volumes exact,
                 ``table_size`` in ``[true, N * true]``; heuristic
                 once local top-k truncation kicks in
p2p-detector     exact (handshakes are flow-affine)
super-sources    bounded: ``true <= merged <= N * true`` per source
                 (a source's pairs spread across shards); requires
                 untruncated fan-out reports, since a source falling
                 out of one shard's local top-N loses that shard's
                 contribution
autofocus        ``total_bytes`` exact; the cluster report is the
                 union of per-shard delta reports (per-shard
                 thresholds differ from the global one, so no
                 subset/superset relation to the whole-stream report
                 is guaranteed)
===============  ====================================================

These properties replace the earlier hand-written per-query merge example
tests; the exact semantics those examples pinned (k-recovery for top-k,
verdict union for p2p, watermark summation) are re-pinned here as
deterministic regressions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import system_config
from repro.monitor.config import ReproDeprecationWarning
from repro.monitor.pipeline import BinRecord
from repro.monitor.sharding import (FLOW_FIELDS, merge_bin_records,
                                    merge_execution_results)
from repro.monitor.system import ExecutionResult
from repro.queries import (MERGE_EXACT_KINDS, MERGE_EXACTNESS,
                           QUERY_CLASSES, make_query, parse_query_specs)
from tests.conftest import make_batch

#: Queries whose merged result must equal the whole-stream result bit-near.
EXACT = ("counter", "flows", "trace", "pattern-search", "application",
         "p2p-detector")
#: Queries merged within a documented [true, N * true] bound.
BOUNDED = ("high-watermark", "super-sources")

#: Per-kind constructor arguments for the property runs: report-width
#: limits are lifted so the properties probe the merge itself, not the
#: interaction with local top-N truncation (the documented heuristic case).
PROPERTY_KWARGS = {"top-k": {"k": 10_000},
                   "super-sources": {"top_n": 10_000}}

NEEDS_PAYLOAD = tuple(kind for kind, cls in QUERY_CLASSES.items()
                      if cls.needs_payload)


def _stream(seed, n_batches, packets, n_hosts, payloads):
    return [make_batch(n=packets, seed=seed + index, start_ts=0.1 * index,
                       n_hosts=n_hosts, payloads=payloads)
            for index in range(n_batches)]


def _run(kind, batches):
    query = make_query(kind, **PROPERTY_KWARGS.get(kind, {}))
    for batch in batches:
        query.update(query.filter.apply(batch), 1.0)
        query.consume_cycles()
    result = query.interval_result()
    query.consume_cycles()
    return result


def _shard_results(kind, seed, n_batches, packets, n_hosts, num_shards):
    payloads = kind in NEEDS_PAYLOAD
    batches = _stream(seed, n_batches, packets, n_hosts, payloads)
    sub_streams = [[] for _ in range(num_shards)]
    for batch in batches:
        for index, part in enumerate(batch.partition(num_shards,
                                                     FLOW_FIELDS)):
            sub_streams[index].append(part)
    return [_run(kind, sub) for sub in sub_streams]


def _merged_and_whole(kind, seed, n_batches, packets, n_hosts, num_shards):
    payloads = kind in NEEDS_PAYLOAD
    batches = _stream(seed, n_batches, packets, n_hosts, payloads)
    whole = _run(kind, batches)
    shard_results = _shard_results(kind, seed, n_batches, packets, n_hosts,
                                   num_shards)
    merged = QUERY_CLASSES[kind].merge_interval_results(shard_results)
    return merged, whole, shard_results


def _assert_values_close(merged, whole, path=""):
    assert type(merged) is type(whole) or (
        isinstance(merged, (int, float)) and isinstance(whole, (int, float))
    ), f"{path}: {type(merged)} vs {type(whole)}"
    if isinstance(whole, dict):
        assert set(merged) == set(whole), path
        for key in whole:
            _assert_values_close(merged[key], whole[key], f"{path}.{key}")
    elif isinstance(whole, (list, tuple)):
        assert sorted(map(repr, merged)) == sorted(map(repr, whole)), path
    elif isinstance(whole, float):
        assert merged == pytest.approx(whole, rel=1e-9, abs=1e-9), path
    else:
        assert merged == whole, path


stream_params = dict(
    seed=st.integers(min_value=0, max_value=10_000),
    n_batches=st.integers(min_value=1, max_value=3),
    packets=st.integers(min_value=1, max_value=250),
    n_hosts=st.integers(min_value=2, max_value=25),
    num_shards=st.integers(min_value=2, max_value=4),
)


@pytest.mark.parametrize("kind", EXACT)
@settings(deadline=None)
@given(**stream_params)
def test_exact_merge_equals_whole_stream(kind, seed, n_batches, packets,
                                         n_hosts, num_shards):
    merged, whole, _ = _merged_and_whole(kind, seed, n_batches, packets,
                                         n_hosts, num_shards)
    _assert_values_close(merged, whole, path=kind)


@pytest.mark.parametrize("kind", BOUNDED)
@settings(deadline=None)
@given(**stream_params)
def test_bounded_merge_brackets_whole_stream(kind, seed, n_batches, packets,
                                             n_hosts, num_shards):
    merged, whole, _ = _merged_and_whole(kind, seed, n_batches, packets,
                                         n_hosts, num_shards)
    if kind == "high-watermark":
        for key in whole:
            assert whole[key] - 1e-9 <= merged[key] \
                <= num_shards * whole[key] + 1e-9, key
    else:  # super-sources
        assert whole["sources"] - 1e-9 <= merged["sources"] \
            <= num_shards * whole["sources"] + 1e-9
        # Per-source fan-outs present in both reports bracket the truth.
        for src, true_fanout in whole["fanout"].items():
            if src in merged["fanout"]:
                assert true_fanout - 1e-9 <= merged["fanout"][src] \
                    <= num_shards * true_fanout + 1e-9, src


@settings(deadline=None)
@given(**stream_params)
def test_top_k_merge_is_exact_prefix_of_whole_stream(seed, n_batches,
                                                     packets, n_hosts,
                                                     num_shards):
    """With untruncated shard tables the re-rank merge is an exact prefix.

    ``k`` is recovered from the widest shard ranking, which can still be
    narrower than the whole-stream table (a shard only ranks destinations
    it saw), so the merged ranking is the whole-stream ranking truncated to
    that width — with *exact* byte volumes, since every shard reported its
    full table.  ``table_size`` sums per-shard tables, an upper bound when
    one destination's flows land on several shards.
    """
    merged, whole, shard_results = _merged_and_whole(
        "top-k", seed, n_batches, packets, n_hosts, num_shards)
    width = max(len(result["ranking"]) for result in shard_results)
    assert merged["ranking"] == whole["ranking"][:width]
    for dst, volume in merged["bytes"].items():
        assert volume == pytest.approx(whole["bytes"][dst], rel=1e-9), dst
    assert whole["table_size"] - 1e-9 <= merged["table_size"] \
        <= num_shards * whole["table_size"] + 1e-9


@settings(deadline=None)
@given(**stream_params)
def test_autofocus_merge_unions_shard_reports(seed, n_batches, packets,
                                              n_hosts, num_shards):
    merged, whole, shard_results = _merged_and_whole(
        "autofocus", seed, n_batches, packets, n_hosts, num_shards)
    assert merged["total_bytes"] == pytest.approx(whole["total_bytes"],
                                                  rel=1e-9)
    union = set()
    for result in shard_results:
        union.update(tuple(cluster) for cluster in result["clusters"])
    assert {tuple(c) for c in merged["clusters"]} == union


@pytest.mark.parametrize("kind", sorted(QUERY_CLASSES))
@settings(deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_merge_of_identical_copies_is_stable(kind, seed):
    """Algebraic sanity: merging a result with an empty shard keeps it."""
    payloads = kind in NEEDS_PAYLOAD
    result = _run(kind, _stream(seed, 2, 60, 8, payloads))
    empty = _run(kind, [batch.select(np.zeros(len(batch), dtype=bool))
                        for batch in _stream(seed, 2, 60, 8, payloads)])
    merged = QUERY_CLASSES[kind].merge_interval_results([result, empty])
    for key, value in result.items():
        if isinstance(value, float):
            assert merged[key] == pytest.approx(value + empty[key], rel=1e-9)


@pytest.mark.parametrize("kind", sorted(QUERY_CLASSES))
@settings(deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       order_seed=st.integers(min_value=0, max_value=10_000))
def test_merge_is_associative_and_permutation_invariant(kind, seed,
                                                        order_seed):
    """Any grouping or ordering of partition results folds identically.

    This is the property the fleet tier's second merge level rides on:
    ``merge([a, b, c])`` must equal ``merge([merge([a, b]), c])`` and
    ``merge([a, merge([b, c])])`` (regional pre-aggregation composes) and
    must not care which node reports first.  The property runs with
    untruncated report widths (:data:`PROPERTY_KWARGS`), where every
    registered merge — including the re-ranking ones — is associative.
    """
    results = _shard_results(kind, seed, 2, 150, 12, 3)
    merge = QUERY_CLASSES[kind].merge_interval_results
    flat = merge(results)
    left = merge([merge(results[:2]), results[2]])
    right = merge([results[0], merge(results[1:])])
    order = np.random.default_rng(order_seed).permutation(3)
    permuted = merge([results[index] for index in order])
    _assert_values_close(left, flat, path=f"{kind}:left-grouping")
    _assert_values_close(right, flat, path=f"{kind}:right-grouping")
    _assert_values_close(permuted, flat, path=f"{kind}:permutation")


def test_exactness_registry_covers_documented_classification():
    """The MERGE_EXACTNESS registry must not drift from this suite.

    The EXACT/BOUNDED tuples above *are* the documented classification the
    properties enforce; the registry (which the fleet exactness gate and
    the README table are driven by) must agree with them kind for kind.
    """
    assert set(MERGE_EXACTNESS) == set(QUERY_CLASSES)
    assert MERGE_EXACT_KINDS == tuple(sorted(EXACT))
    assert all(MERGE_EXACTNESS[kind] == "exact" for kind in EXACT)
    assert all(MERGE_EXACTNESS[kind] == "bounded" for kind in BOUNDED)
    assert MERGE_EXACTNESS["top-k"] == "prefix"
    assert MERGE_EXACTNESS["autofocus"] == "union"


# ----------------------------------------------------------------------
# Deprecated shims: must warn, must stay bit-identical to the new API.
# ----------------------------------------------------------------------
class TestDeprecatedMergeShims:
    @staticmethod
    def _bin_record(packets, cycles, delay, rate):
        return BinRecord(
            index=1, start_ts=0.5, incoming_packets=packets,
            incoming_bytes=packets * 100, dropped_packets=2,
            unsampled_packets=1.0, predicted_cycles=cycles,
            query_cycles=cycles, prediction_overhead=1.0,
            shedding_overhead=2.0, system_overhead=3.0,
            available_cycles=100.0, delay=delay, buffer_occupation=0.4,
            rates={"q": rate}, query_cycles_by_query={"q": cycles})

    @staticmethod
    def _execution(seed):
        config = system_config(queries=parse_query_specs("counter"),
                               mode="reference", cycles_per_second=1e8,
                               seed=seed)
        session = config.build().open_session(time_bin=0.1,
                                              name=f"part{seed}")
        for index in range(3):
            session.ingest(make_batch(n=40, seed=seed * 10 + index,
                                      start_ts=0.1 * index))
        return session.close()

    def test_merge_bin_records_warns_and_matches_classmethod(self):
        records = [self._bin_record(10, 50.0, 5.0, 1.0),
                   self._bin_record(20, 70.0, 9.0, 0.5)]
        with pytest.warns(ReproDeprecationWarning, match="BinRecord.merge"):
            shimmed = merge_bin_records(records)
        assert shimmed == BinRecord.merge(records)

    def test_merge_execution_results_warns_and_matches_classmethod(self):
        results = [self._execution(0), self._execution(1)]
        classes = {"counter": QUERY_CLASSES["counter"]}
        with pytest.warns(ReproDeprecationWarning,
                          match="ExecutionResult.merge"):
            shimmed = merge_execution_results(results, classes,
                                              results[0].budget, "shim")
        direct = ExecutionResult.merge(results, query_classes=classes,
                                       budget=results[0].budget,
                                       name="shim")
        assert shimmed.bins == direct.bins
        assert shimmed.trace_name == direct.trace_name == "shim"
        log, reference = (shimmed.query_logs["counter"],
                          direct.query_logs["counter"])
        assert log.intervals == reference.intervals
        assert log.results == reference.results


# ----------------------------------------------------------------------
# Deterministic regressions re-pinning the documented merge semantics the
# replaced hand-written examples covered.
# ----------------------------------------------------------------------
class TestMergeSemanticsRegressions:
    def test_high_watermark_merges_by_summation(self):
        results = [{"watermark_bytes": 100.0, "watermark_packets": 10.0},
                   {"watermark_bytes": 250.0, "watermark_packets": 5.0}]
        merged = QUERY_CLASSES["high-watermark"].merge_interval_results(results)
        assert merged == {"watermark_bytes": 350.0,
                          "watermark_packets": 15.0}

    def test_top_k_reranks_summed_volumes(self):
        results = [
            {"ranking": [1, 2], "bytes": {1: 50.0, 2: 40.0},
             "table_size": 4.0},
            {"ranking": [2, 3], "bytes": {2: 30.0, 3: 60.0},
             "table_size": 3.0},
        ]
        merged = QUERY_CLASSES["top-k"].merge_interval_results(results)
        # k is recovered from the widest shard ranking (2 here): the summed
        # volumes re-rank 2 (70) above 3 (60), and 1 (50) falls off the
        # ranking — but the merged volume table keeps every summed entry
        # (volume-descending) so nested merges stay associative.
        assert merged["ranking"] == [2, 3]
        assert merged["bytes"] == {2: 70.0, 3: 60.0, 1: 50.0}
        assert list(merged["bytes"]) == [2, 3, 1]
        assert merged["table_size"] == 7.0

    def test_p2p_detector_unions_verdicts(self):
        results = [
            {"p2p_flows": [3, 5], "flows_seen": 10.0, "p2p_flow_count": 2.0},
            {"p2p_flows": [5, 9], "flows_seen": 7.0, "p2p_flow_count": 2.0},
        ]
        merged = QUERY_CLASSES["p2p-detector"].merge_interval_results(results)
        assert merged["p2p_flows"] == [3, 5, 9]
        assert merged["flows_seen"] == 17.0

    def test_super_sources_retops_summed_fanouts(self):
        results = [
            {"fanout": {1: 4.0, 2: 3.0}, "sources": 2.0},
            {"fanout": {2: 5.0, 3: 1.0}, "sources": 2.0},
        ]
        merged = QUERY_CLASSES["super-sources"].merge_interval_results(results)
        # The merged map keeps every summed source (fan-out descending) so
        # nested merges stay associative; consumers re-truncate if needed.
        assert merged["fanout"] == {2: 8.0, 1: 4.0, 3: 1.0}
        assert list(merged["fanout"]) == [2, 1, 3]
        assert merged["sources"] == 4.0

    def test_autofocus_unions_and_sorts_clusters(self):
        results = [
            {"clusters": [(16, 8), (4096, 16)], "total_bytes": 100.0},
            {"clusters": [[16, 8], [99, 32]], "total_bytes": 50.0},
        ]
        merged = QUERY_CLASSES["autofocus"].merge_interval_results(results)
        assert merged["clusters"] == [(16, 8), (4096, 16), (99, 32)]
        assert merged["total_bytes"] == 150.0
