"""Tests for traffic feature extraction."""

import numpy as np
import pytest

from repro.core.features import (NUM_FEATURES, FeatureExtractor,
                                 FeatureVector, feature_names, select_values)
from repro.monitor.packet import Batch
from tests.conftest import make_batch


class TestFeatureNames:
    def test_42_features(self):
        assert NUM_FEATURES == 42
        assert len(feature_names()) == 42
        assert feature_names()[:2] == ["packets", "bytes"]

    def test_every_aggregate_has_four_counters(self):
        names = feature_names()
        assert sum(1 for n in names if n.endswith("_unique")) == 10
        assert sum(1 for n in names if n.endswith("_new")) == 10
        assert sum(1 for n in names if n.endswith("_interval_repeated")) == 10


class TestFeatureVector:
    def test_lookup_by_name(self):
        values = np.arange(NUM_FEATURES, dtype=float)
        vector = FeatureVector(values)
        assert vector["packets"] == 0.0
        assert vector["bytes"] == 1.0
        assert len(vector) == NUM_FEATURES

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            FeatureVector(np.zeros(5))

    def test_as_dict_and_select(self):
        vector = FeatureVector(np.arange(NUM_FEATURES, dtype=float))
        d = vector.as_dict()
        assert d["packets"] == 0.0
        assert np.array_equal(select_values(vector, ["bytes", "packets"]),
                              np.array([1.0, 0.0]))


@pytest.mark.parametrize("method", ["exact", "bitmap"])
class TestFeatureExtractor:
    def test_packets_and_bytes_exact(self, method):
        batch = make_batch(n=150, seed=2)
        extractor = FeatureExtractor(method=method)
        features = extractor.extract(batch)
        assert features["packets"] == 150
        assert features["bytes"] == batch.byte_count

    def test_unique_counts_reasonable(self, method):
        batch = make_batch(n=300, seed=5, n_hosts=25)
        extractor = FeatureExtractor(method=method)
        features = extractor.extract(batch)
        true_unique = len(np.unique(batch.src_ip))
        assert abs(features["src_ip_unique"] - true_unique) <= \
            max(3, 0.15 * true_unique)

    def test_new_resets_each_interval(self, method):
        extractor = FeatureExtractor(measurement_interval=1.0, method=method)
        batch1 = make_batch(n=200, seed=7, start_ts=0.0)
        batch2 = make_batch(n=200, seed=7, start_ts=0.5)   # same content
        batch3 = make_batch(n=200, seed=7, start_ts=1.0)   # new interval
        f1 = extractor.extract(batch1)
        f2 = extractor.extract(batch2)
        f3 = extractor.extract(batch3)
        # Second batch repeats the first: very few new items.
        assert f2["five_tuple_new"] <= 0.2 * f1["five_tuple_new"] + 5
        # After the interval rolls over, items count as new again.
        assert f3["five_tuple_new"] >= 0.5 * f1["five_tuple_new"]

    def test_repeated_definition(self, method):
        batch = make_batch(n=250, seed=9)
        extractor = FeatureExtractor(method=method)
        features = extractor.extract(batch)
        for agg in ("src_ip", "five_tuple"):
            assert features[f"{agg}_repeated"] == pytest.approx(
                max(0.0, 250 - features[f"{agg}_unique"]), abs=1e-6)

    def test_empty_batch(self, method):
        extractor = FeatureExtractor(method=method)
        features = extractor.extract(Batch.empty())
        assert features["packets"] == 0
        assert all(v == 0 for v in features.values)

    def test_peek_does_not_update_state(self, method):
        extractor = FeatureExtractor(method=method)
        batch = make_batch(n=200, seed=11, start_ts=0.0)
        peek = extractor.extract(batch, update_state=False)
        again = extractor.extract(batch, update_state=False)
        # Since state was not updated, "new" stays identical.
        assert peek["five_tuple_new"] == pytest.approx(
            again["five_tuple_new"], rel=0.05, abs=2)

    def test_commit_matches_update_state(self, method):
        batch1 = make_batch(n=200, seed=13, start_ts=0.0)
        batch2 = make_batch(n=200, seed=14, start_ts=0.1)
        committed = FeatureExtractor(method=method)
        updated = FeatureExtractor(method=method)
        peek = committed.extract(batch1, update_state=False)
        committed.commit(batch1)
        updated.extract(batch1, update_state=True)
        f_committed = committed.extract(batch2, update_state=False)
        f_updated = updated.extract(batch2, update_state=False)
        assert f_committed["five_tuple_new"] == pytest.approx(
            f_updated["five_tuple_new"], rel=0.05, abs=2)

    def test_extraction_cost_linear_in_packets(self, method):
        extractor = FeatureExtractor(method=method)
        small = make_batch(n=10)
        large = make_batch(n=1000)
        assert extractor.extraction_cost(large) > extractor.extraction_cost(small)


class TestExtractorValidation:
    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            FeatureExtractor(measurement_interval=0.0)

    def test_reset_clears_interval_state(self):
        extractor = FeatureExtractor(method="exact")
        batch = make_batch(n=100, seed=15, start_ts=0.0)
        extractor.extract(batch, update_state=True)
        extractor.reset()
        fresh = extractor.extract(batch, update_state=False)
        assert fresh["five_tuple_new"] > 0
