"""Tests for the experiment harness (small-scale sanity of each chapter)."""

import numpy as np
import pytest

from repro.experiments import (chapter2, chapter3, chapter5, reporting,
                               runner, scenarios)
from repro.queries import make_query

SCALE = 0.5


@pytest.fixture(scope="module")
def header_trace():
    return scenarios.header_trace(scale=SCALE, seed=31)


@pytest.fixture(scope="module")
def flows_observations(header_trace):
    return runner.collect_observations(make_query("flows"), header_trace)


class TestRunner:
    def test_collect_observations_lengths(self, flows_observations,
                                          header_trace):
        expected = header_trace.num_batches(runner.TIME_BIN)
        assert len(flows_observations) == expected
        assert len(flows_observations.features) == expected

    def test_evaluate_predictor_tracks_errors(self, flows_observations):
        from repro.core.prediction import MLRPredictor
        tracker = runner.evaluate_predictor(MLRPredictor(), flows_observations)
        assert len(tracker.errors) == len(flows_observations) - 2
        assert tracker.mean < 0.5

    def test_calibrate_capacity_positive(self, header_trace):
        capacity, reference = runner.calibrate_capacity(("counter", "flows"),
                                                        header_trace)
        assert capacity > 0
        assert reference.dropped_packets == 0

    def test_run_with_overload_validation(self, header_trace):
        with pytest.raises(ValueError):
            runner.run_with_overload(("counter",), header_trace, overload=1.5)

    def test_accuracy_vs_sampling_rate_monotone_ends(self, header_trace):
        curve = runner.accuracy_vs_sampling_rate("counter", header_trace,
                                                 rates=(0.3, 1.0))
        assert curve[1.0] >= curve[0.3] - 0.05
        assert curve[1.0] > 0.98


class TestChapter2:
    def test_cost_ranking(self, header_trace):
        result = chapter2.figure_2_2_query_costs(
            trace=scenarios.payload_trace(scale=0.4, seed=32))
        costs = result["cycles_per_second"]
        # Payload-inspection queries must dominate simple counters.
        assert costs["p2p-detector"] > costs["counter"]
        assert costs["pattern-search"] > costs["counter"]
        assert costs["counter"] <= min(costs["application"], costs["flows"])


class TestChapter3:
    def test_flow_anomaly_correlations(self):
        result = chapter3.figure_3_1_unknown_query_anomaly(scale=0.4)
        corr = result["correlation_with_cycles"]
        assert corr["five_tuple_flows"] > corr["bytes"]

    def test_mlr_beats_slr_for_flows(self, header_trace):
        result = chapter3.figure_3_4_slr_vs_mlr(trace=header_trace)
        assert result["mlr_mean_error"] <= result["slr_mean_error"]

    def test_baseline_comparison_ordering(self, header_trace):
        result = chapter3.figure_3_11_baseline_comparison(
            trace=header_trace, query_names=("counter", "flows", "top-k"))
        means = result["mean_error"]
        assert means["mlr"] <= means["slr"] + 0.02
        assert means["mlr"] < means["ewma"]

    def test_parameter_sweep_shapes(self, header_trace):
        result = chapter3.figure_3_5_parameter_sweep(
            trace=header_trace, histories=(10, 60), thresholds=(0.0, 0.6),
            query_names=("counter", "flows"))
        assert len(result["history_sweep"]) == 2
        assert len(result["threshold_sweep"]) == 2
        # Cost grows with history length.
        assert result["history_sweep"][1]["mean_cost_cycles"] >= \
            result["history_sweep"][0]["mean_cost_cycles"]

    def test_table_3_2_selected_features(self, header_trace):
        result = chapter3.table_3_2_error_by_query(
            trace=header_trace, query_names=("counter", "flows"))
        rows = {row["query"]: row for row in result["rows"]}
        assert "packets" in rows["counter"]["selected_features"]
        assert rows["counter"]["mean_error"] < 0.05

    def test_ddos_robustness_mlr_best(self):
        result = chapter3.figure_3_13_ddos_robustness(scale=0.4)
        assert result["mlr"]["mean_error"] <= result["ewma"]["mean_error"]


class TestChapter5:
    def test_simulation_surface_pkt_never_worse_on_minimum(self):
        result = chapter5.figure_5_1_simulation_surface(
            min_rates=(0.0, 0.4, 0.8), overloads=(0.0, 0.4, 0.8))
        assert np.all(result["minimum_accuracy_difference"] >= -1e-9)

    def test_min_srate_table_orders_queries(self, header_trace):
        result = chapter5.table_5_2_min_srates(
            trace=header_trace, query_names=("counter", "top-k"),
            rates=(0.1, 0.5, 1.0))
        rows = {row["query"]: row["min_sampling_rate"]
                for row in result["rows"]}
        assert rows["counter"] <= rows["top-k"]

    def test_nash_equilibrium_check(self):
        result = chapter5.nash_equilibrium_check(n_players=3, grid=60)
        assert result["equal_share_is_nash"]
        assert not result["greedy_profile_is_nash"]
        assert result["dynamics_converged"]
        assert result["distance_to_equal_share"] < 0.05


class TestReporting:
    def test_format_table(self):
        rows = [{"query": "counter", "error": 0.01},
                {"query": "flows", "error": 0.02}]
        text = reporting.format_table(rows, ["query", "error"], title="T")
        assert "counter" in text and "0.0200" in text

    def test_format_series_downsamples(self):
        text = reporting.format_series({"x": np.arange(1000)}, max_points=10)
        assert len(text.splitlines()) == 1

    def test_summarize_distribution(self):
        summary = reporting.summarize_distribution([1.0, 2.0, 3.0])
        assert summary["mean"] == pytest.approx(2.0)
        assert reporting.summarize_distribution([])["max"] == 0.0
