"""Golden end-to-end regression tests.

A fixed-seed scenario matrix is executed in all four operating modes and the
headline outcomes — drop fraction, mean sampling rate, per-query accuracy —
are pinned against stored tolerance bands.  A second family of tests pins the
determinism contract of the scenario engine: the same matrix must produce
bit-identical :class:`ExecutionResult` series on repeated serial runs and
across the serial and process-pool execution paths.

The bands are deliberately wider than run-to-run variation (which is zero,
everything is seeded) to absorb numerical drift across NumPy versions; a
band violation means the physics of an operating mode changed, not noise.
"""

import numpy as np
import pytest

from repro.experiments import parallel

#: The golden matrix: one trace, one overload, all four modes.
GOLDEN_MATRIX = parallel.ScenarioMatrix(
    traces=("cesca",),
    overloads=(0.5,),
    modes=("predictive", "reactive", "original", "reference"),
    scale=0.25,
    base_seed=2024,
)

#: Stored tolerance bands per mode (measured: predictive drop=0.000
#: rate=0.667 acc=0.959 | reactive drop=0.000 rate=0.718 acc=0.971 |
#: original drop=0.322 rate=0.800 acc=0.870 | reference exact).
GOLDEN = {
    "predictive": {
        "drop_fraction": (0.0, 0.02),
        "mean_sampling_rate": (0.45, 0.85),
        "mean_accuracy": (0.90, 1.0),
        "min_query_accuracy": 0.85,
    },
    "reactive": {
        "drop_fraction": (0.0, 0.05),
        "mean_sampling_rate": (0.50, 0.90),
        "mean_accuracy": (0.90, 1.0),
        "min_query_accuracy": 0.85,
    },
    "original": {
        "drop_fraction": (0.15, 0.50),
        "mean_sampling_rate": (0.60, 1.0),
        "mean_accuracy": (0.70, 0.97),
        "min_query_accuracy": 0.60,
    },
    "reference": {
        "drop_fraction": (0.0, 0.0),
        "mean_sampling_rate": (1.0, 1.0),
        "mean_accuracy": (1.0, 1.0),
        "min_query_accuracy": 1.0,
    },
}

#: Frozen cell seeds: the deterministic seed derivation is part of the
#: golden contract (changing it silently re-seeds every stored expectation).
GOLDEN_CELL_SEEDS = {
    "cesca/K=0.5/predictive/eq_srates/mlr": 539108683,
    "cesca/K=0.5/reactive/eq_srates/mlr": 949882144,
    "cesca/K=0.5/original/eq_srates/mlr": 623241081,
    "cesca/K=0.5/reference/eq_srates/mlr": 1211544256,
}


@pytest.fixture(scope="module")
def golden_run():
    return parallel.ParallelRunner(n_workers=1).run(GOLDEN_MATRIX)


def _series_fingerprint(result):
    """The per-bin series that must be reproduced bit for bit."""
    return {
        "query_cycles": result.series("query_cycles"),
        "mean_rate": result.series("mean_rate"),
        "dropped_packets": result.series("dropped_packets"),
        "predicted_cycles": result.series("predicted_cycles"),
    }


class TestGoldenOutcomes:
    def test_matrix_shape(self, golden_run):
        assert len(golden_run) == 4
        assert [c.cell.mode for c in golden_run] == [
            "predictive", "reactive", "original", "reference"]

    def test_cell_seed_derivation_frozen(self):
        seeds = {cell.cell_id: cell.seed for cell in GOLDEN_MATRIX.cells()}
        assert seeds == GOLDEN_CELL_SEEDS

    @pytest.mark.parametrize("mode", list(GOLDEN))
    def test_mode_within_stored_tolerances(self, golden_run, mode):
        cell_result = golden_run.select(mode=mode)[0]
        bands = GOLDEN[mode]
        lo, hi = bands["drop_fraction"]
        assert lo <= cell_result.drop_fraction <= hi
        lo, hi = bands["mean_sampling_rate"]
        assert lo <= cell_result.mean_sampling_rate <= hi
        lo, hi = bands["mean_accuracy"]
        assert lo <= cell_result.mean_accuracy <= hi
        assert cell_result.accuracy, "accuracy join must not be empty"
        assert min(cell_result.accuracy.values()) >= \
            bands["min_query_accuracy"]

    def test_shedding_modes_beat_uncontrolled_drops(self, golden_run):
        by_mode = {c.cell.mode: c for c in golden_run}
        assert by_mode["predictive"].mean_accuracy > \
            by_mode["original"].mean_accuracy
        assert by_mode["predictive"].drop_fraction < \
            by_mode["original"].drop_fraction


class TestDeterminism:
    def test_serial_rerun_is_bit_identical(self, golden_run):
        rerun = parallel.ParallelRunner(n_workers=1).run(GOLDEN_MATRIX)
        for first, second in zip(golden_run, rerun):
            assert first.cell == second.cell
            first_series = _series_fingerprint(first.result)
            second_series = _series_fingerprint(second.result)
            for name in first_series:
                assert np.array_equal(first_series[name],
                                      second_series[name]), name
            assert first.accuracy == second.accuracy

    def test_parallel_matches_serial_bit_for_bit(self, golden_run):
        # respect_cores=False forces a real process pool even on single-core
        # hosts, so the fork path is always exercised.
        pooled = parallel.ParallelRunner(
            n_workers=2, respect_cores=False).run(GOLDEN_MATRIX)
        for serial_cell, pooled_cell in zip(golden_run, pooled):
            assert serial_cell.cell == pooled_cell.cell
            assert serial_cell.capacity == pooled_cell.capacity
            serial_series = _series_fingerprint(serial_cell.result)
            pooled_series = _series_fingerprint(pooled_cell.result)
            for name in serial_series:
                assert np.array_equal(serial_series[name],
                                      pooled_series[name]), name
            for name, log in serial_cell.result.query_logs.items():
                assert log.results == \
                    pooled_cell.result.query_logs[name].results
            assert serial_cell.accuracy == pooled_cell.accuracy

    def test_query_logs_identical_across_reruns(self, golden_run):
        rerun = parallel.ParallelRunner(n_workers=1).run(GOLDEN_MATRIX)
        for first, second in zip(golden_run, rerun):
            for name, log in first.result.query_logs.items():
                assert log.results == second.result.query_logs[name].results
