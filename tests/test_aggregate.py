"""Unit tests for the keyed-aggregation kernels and the merge engine.

Covers :mod:`repro.core.aggregate` (KeyedAccumulator / DistinctFanout /
payload_hits), the declarative ``RESULT_MERGE`` engine of
:class:`repro.monitor.query.Query` — including the key-union regression
(merging used to iterate the first shard's keys only, dropping keys present
only on later shards and raising ``KeyError`` on keys missing from later
shards) — and the registry drift guard over ``repro.queries``.
"""

import importlib
import inspect
import pkgutil

import numpy as np
import pytest

import repro.queries as queries_pkg
from repro.core.aggregate import (DistinctFanout, KeyedAccumulator,
                                  aggregate_batch, payload_hits)
from repro.core.distinct import make_counter
from repro.monitor.query import Query, merge_additive
from repro.queries import QUERY_CLASSES, make_query


class TestAggregateBatch:
    def test_counts_without_weights(self):
        keys = np.array([5, 3, 5, 5, 3, 9], dtype=np.uint64)
        unique, sums = aggregate_batch(keys)
        assert unique.tolist() == [3, 5, 9]
        assert sums.tolist() == [2.0, 3.0, 1.0]

    def test_weighted_sums(self):
        keys = np.array([1, 2, 1], dtype=np.uint64)
        unique, sums = aggregate_batch(keys, np.array([10.0, 5.0, 2.5]))
        assert unique.tolist() == [1, 2]
        assert sums.tolist() == [12.5, 5.0]


class TestKeyedAccumulator:
    def test_observe_reports_new_key_count(self):
        table = KeyedAccumulator(columns=("v",))
        assert table.observe(np.array([2, 4], dtype=np.uint64),
                             v=np.array([1.0, 2.0])) == 2
        assert table.observe(np.array([2, 3], dtype=np.uint64),
                             v=np.array([5.0, 7.0])) == 1
        assert table.as_dict("v") == {2: 6.0, 3: 7.0, 4: 2.0}
        assert len(table) == 3

    def test_keys_stay_sorted(self):
        table = KeyedAccumulator()
        rng = np.random.default_rng(0)
        for _ in range(5):
            table.observe(np.unique(rng.integers(0, 1000, 50).astype(np.uint64)))
        assert np.all(np.diff(table.keys.astype(np.int64)) > 0)

    def test_lookup_and_contains(self):
        table = KeyedAccumulator(columns=("v",))
        table.observe(np.array([10, 20], dtype=np.uint64),
                      v=np.array([1.5, 2.5]))
        probe = np.array([20, 99, 10], dtype=np.uint64)
        assert table.contains(probe).tolist() == [True, False, True]
        assert table.lookup(probe, "v").tolist() == [2.5, 0.0, 1.5]
        assert table.lookup(probe, "v", default=-1.0).tolist() == [2.5, -1.0, 1.5]

    def test_top_breaks_ties_by_smaller_key(self):
        table = KeyedAccumulator(columns=("v",))
        table.observe(np.array([1, 2, 3], dtype=np.uint64),
                      v=np.array([5.0, 9.0, 5.0]))
        assert table.top(2, "v") == [(2, 9.0), (1, 5.0)]

    def test_merge_equals_whole_stream(self):
        rng = np.random.default_rng(1)
        whole = KeyedAccumulator(columns=("v",))
        parts = [KeyedAccumulator(columns=("v",)) for _ in range(3)]
        for round_ in range(4):
            keys = rng.integers(0, 200, 100).astype(np.uint64)
            weights = rng.random(100)
            unique, sums = aggregate_batch(keys, weights)
            whole.observe(unique, v=sums)
            shard = keys % 3
            for index, part in enumerate(parts):
                mask = shard == index
                unique, sums = aggregate_batch(keys[mask], weights[mask])
                part.observe(unique, v=sums)
        merged = parts[0].copy()
        merged.merge(parts[1])
        merged.merge(parts[2])
        assert merged.keys.tolist() == whole.keys.tolist()
        np.testing.assert_allclose(merged.column("v"), whole.column("v"),
                                   rtol=1e-12)

    def test_merge_rejects_mismatched_columns(self):
        with pytest.raises(ValueError):
            KeyedAccumulator(columns=("a",)).merge(
                KeyedAccumulator(columns=("b",)))

    def test_reset_and_copy_are_independent(self):
        table = KeyedAccumulator(columns=("v",))
        table.observe(np.array([1], dtype=np.uint64), v=np.array([2.0]))
        clone = table.copy()
        table.reset()
        assert len(table) == 0 and clone.as_dict("v") == {1: 2.0}


class TestDistinctFanout:
    def test_counts_distinct_items_per_key(self):
        fanout = DistinctFanout()
        src = np.array([1, 1, 1, 2, 2], dtype=np.uint64)
        dst = np.array([7, 7, 8, 7, 9], dtype=np.uint64)
        new = fanout.observe(DistinctFanout.pair_u32(src, dst), src)
        assert new == 4  # (1,7) duplicated
        keys, counts = fanout.fanout()
        assert keys.tolist() == [1, 2]
        assert counts.tolist() == [2, 2]
        assert len(fanout) == 4 and fanout.num_keys == 2

    def test_merge_is_exact_union(self):
        rng = np.random.default_rng(2)
        whole, parts = DistinctFanout(), [DistinctFanout(), DistinctFanout()]
        for _ in range(3):
            src = rng.integers(0, 10, 80).astype(np.uint64)
            dst = rng.integers(0, 30, 80).astype(np.uint64)
            pair = DistinctFanout.pair_u32(src, dst)
            whole.observe(pair, src)
            half = pair % 2
            for index, part in enumerate(parts):
                mask = half == index
                part.observe(pair[mask], src[mask])
        merged = parts[0].copy()
        merged.merge(parts[1])
        keys, counts = merged.fanout()
        whole_keys, whole_counts = whole.fanout()
        assert keys.tolist() == whole_keys.tolist()
        assert counts.tolist() == whole_counts.tolist()

    def test_optional_total_counter_tracks_pairs(self):
        fanout = DistinctFanout(total_counter=make_counter("exact"))
        src = np.array([1, 2, 1], dtype=np.uint64)
        dst = np.array([5, 5, 5], dtype=np.uint64)
        fanout.observe(DistinctFanout.pair_u32(src, dst), src)
        assert fanout.total_estimate() == 2.0


class TestPayloadHits:
    def _naive(self, payloads, patterns):
        return [any(payload.find(pattern) >= 0 for pattern in patterns)
                for payload in payloads]

    def test_matches_naive_scan(self):
        rng = np.random.default_rng(3)
        patterns = (b"needle", b"xyz")
        payloads = []
        for _ in range(200):
            body = bytes(rng.integers(97, 123, size=40, dtype=np.uint8))
            if rng.random() < 0.3:
                cut = int(rng.integers(0, len(body)))
                body = body[:cut] + patterns[int(rng.random() < 0.5)] + body[cut:]
            payloads.append(body)
        hit, lengths = payload_hits(payloads, patterns)
        assert hit.tolist() == self._naive(payloads, patterns)
        assert lengths.tolist() == [len(p) for p in payloads]

    def test_no_cross_payload_match(self):
        # "ab" + "cd" must not match "bc" across the boundary.
        hit, _ = payload_hits([b"ab", b"cd"], (b"bc",))
        assert hit.tolist() == [False, False]

    def test_empty_payloads_and_edges(self):
        hit, lengths = payload_hits([b"", b"pat", b""], (b"pat",))
        assert hit.tolist() == [False, True, False]
        assert lengths.tolist() == [0, 3, 0]
        hit, lengths = payload_hits([], (b"pat",))
        assert hit.tolist() == [] and lengths.tolist() == []

    def test_pattern_at_boundaries(self):
        hit, _ = payload_hits([b"patx", b"xpat", b"pat"], (b"pat",))
        assert hit.tolist() == [True, True, True]


class TestMergeEngine:
    """Key-union regressions: the old default merge iterated ``results[0]``."""

    def test_key_only_in_later_shard_is_not_dropped(self):
        merged = make_query("counter").merge_interval_results(
            [{"packets": 1.0}, {"packets": 2.0, "bytes": 30.0}])
        assert merged == {"packets": 3.0, "bytes": 30.0}

    def test_key_missing_from_later_shard_does_not_raise(self):
        merged = make_query("counter").merge_interval_results(
            [{"packets": 1.0, "bytes": 10.0}, {"packets": 2.0}])
        assert merged == {"packets": 3.0, "bytes": 10.0}

    def test_union_rule_over_partial_shards(self):
        merged = make_query("p2p-detector").merge_interval_results(
            [{"p2p_flows": [3], "flows_seen": 2.0, "p2p_flow_count": 1.0},
             {"flows_seen": 1.0, "p2p_flow_count": 0.0}])
        assert merged["p2p_flows"] == [3]
        assert merged["flows_seen"] == 3.0

    def test_derived_keys_recomputed_over_union(self):
        merged = make_query("top-k").merge_interval_results(
            [{"ranking": [1], "bytes": {1: 5.0}, "table_size": 1.0},
             {"bytes": {2: 9.0}, "table_size": 1.0}])
        assert merged["ranking"] == [2]
        # The merged volume table keeps every summed entry (descending) so
        # nested merges stay associative; only the ranking truncates to k.
        assert merged["bytes"] == {2: 9.0, 1: 5.0}
        assert list(merged["bytes"]) == [2, 1]
        assert merged["table_size"] == 2.0

    def test_unmergeable_type_still_raises_with_guidance(self):
        with pytest.raises(TypeError, match="RESULT_MERGE"):
            make_query("counter").merge_interval_results(
                [{"packets": [1, 2]}, {"packets": [3]}])

    def test_merge_additive_unions_dict_keys(self):
        assert merge_additive([{"a": 1.0}, {"b": 2.0, "a": 1.0}]) == \
            {"a": 2.0, "b": 2.0}

    def test_empty_and_single_results(self):
        query = make_query("counter")
        assert query.merge_interval_results([]) == {}
        single = {"packets": 5.0}
        merged = query.merge_interval_results([single])
        assert merged == single and merged is not single


class TestRegistryDriftGuard:
    """Every concrete query shipped under ``repro.queries`` is registered."""

    @staticmethod
    def _concrete_query_classes():
        found = {}
        for info in pkgutil.iter_modules(queries_pkg.__path__):
            module = importlib.import_module(f"{queries_pkg.__name__}."
                                             f"{info.name}")
            for _, cls in inspect.getmembers(module, inspect.isclass):
                if (issubclass(cls, Query) and cls is not Query and
                        not inspect.isabstract(cls) and
                        cls.__module__.startswith(queries_pkg.__name__)):
                    found[cls] = module.__name__
        return found

    def test_every_concrete_query_is_registered(self):
        registered = set(QUERY_CLASSES.values())
        # The Chapter 6 misbehaving variants are deliberately unregistered:
        # they exist to violate the contract, not to be part of a mix.
        from repro.queries import (BuggyP2PDetectorQuery,
                                   SelfishP2PDetectorQuery)
        exempt = {SelfishP2PDetectorQuery, BuggyP2PDetectorQuery}
        for cls, module in self._concrete_query_classes().items():
            if cls in exempt:
                continue
            assert cls in registered, \
                f"{cls.__name__} (in {module}) is not in QUERY_CLASSES"

    def test_registry_names_match_class_names_uniquely(self):
        names = [cls.name for cls in QUERY_CLASSES.values()]
        assert len(set(names)) == len(names), "duplicate default query names"
        for registry_name, cls in QUERY_CLASSES.items():
            assert registry_name == cls.name, \
                f"registry key {registry_name!r} != {cls.__name__}.name " \
                f"({cls.name!r})"

    @pytest.mark.parametrize("kind", sorted(QUERY_CLASSES))
    def test_make_query_round_trips_each_kind(self, kind):
        query = make_query(kind)
        assert isinstance(query, QUERY_CLASSES[kind])
        assert query.name == kind
        # A registered kind must also round-trip through the spec layer.
        from repro.queries import QuerySpec
        spec = QuerySpec(kind)
        assert QuerySpec.from_dict(spec.to_dict()) == spec
        assert type(spec.build()) is QUERY_CLASSES[kind]
