"""Persistent shard workers: transport, lifecycle, and bit-identity.

The contracts under test:

* **Buffer transport** — a :class:`Batch` packed into the canonical column
  layout and rebuilt from the buffer is bit-identical to the original.
* **Backend transparency** — a sharded execution on the persistent worker
  pool is bit-identical to the in-process one in *all four* operating
  modes, including ``shard_rebalance=True`` (the capability the legacy
  fork pool never had) and including live reconfiguration mid-stream.
* **Lifecycle** — close/stop are idempotent, a worker dying mid-stream
  surfaces a :class:`ShardWorkerError` naming the shard (not a hang), and
  every shared-memory segment the pool ever created is unlinked by the
  time it stops — no ``/dev/shm`` leaks, even after failures.
* **Driver hygiene** — the pre-fork ``_POOL_STATE`` handoff never leaks
  past an exception, sessions that silently lost their requested
  parallelism warn instead, and streaming-trace telemetry is reset per
  replay run.
"""

import numpy as np
import pytest

from repro.experiments import runner, scenarios
from repro.monitor import sharding
from repro.monitor.packet import COLUMN_FIELDS, Batch, column_layout
from repro.monitor.sharding import ShardedSystem
from repro.monitor.workers import (ShardExecutionWarning, ShardWorkerError,
                                   fork_start_available)
from repro.queries import make_query
from repro.traffic.trace_io import save_trace_store
from tests.conftest import make_batch

QUERY_SET = ("counter", "flows", "top-k", "application")

needs_fork = pytest.mark.skipif(
    not fork_start_available(),
    reason="persistent shard workers prefer the fork start method")


def _factory(names=QUERY_SET):
    return lambda: [make_query(name) for name in names]


@pytest.fixture(scope="module")
def golden_scenario():
    """Shared trace plus calibrated capacity for the golden query set."""
    trace = scenarios.build_workload("cesca", seed=2024, scale=0.15)
    capacity, reference = runner.calibrate_capacity(QUERY_SET, trace)
    return trace, capacity, reference


def _series_fingerprint(result):
    return {
        "query_cycles": result.series("query_cycles"),
        "mean_rate": result.series("mean_rate"),
        "dropped_packets": result.series("dropped_packets"),
        "predicted_cycles": result.series("predicted_cycles"),
        "delay": result.series("delay"),
    }


def _assert_identical(in_process, workers):
    serial = _series_fingerprint(in_process)
    pooled = _series_fingerprint(workers)
    for name in serial:
        assert np.array_equal(serial[name], pooled[name]), name
    assert in_process.total_packets == workers.total_packets
    assert in_process.dropped_packets == workers.dropped_packets
    for qname, log in in_process.query_logs.items():
        assert workers.query_logs[qname].intervals == log.intervals, qname
        assert workers.query_logs[qname].results == log.results, qname


def _attachable(segment_name):
    from multiprocessing import shared_memory
    try:
        handle = shared_memory.SharedMemory(name=segment_name)
    except FileNotFoundError:
        return False
    handle.close()
    return True


# ----------------------------------------------------------------------
# Column-buffer transport
# ----------------------------------------------------------------------
class TestBatchBufferTransport:
    def test_layout_keeps_every_column_8_byte_aligned(self):
        columns, total = column_layout(1001)
        assert [name for name, _, _ in columns] == list(COLUMN_FIELDS)
        for _, dtype, offset in columns:
            assert offset % 8 == 0
        assert total % 8 == 0

    def test_pack_unpack_roundtrip_is_bit_identical(self):
        batch = make_batch(n=257, seed=11, payloads=True, start_ts=3.4)
        buffer = bytearray(batch.buffer_nbytes())
        used = batch.pack_into(buffer)
        assert used == batch.buffer_nbytes()
        rebuilt = Batch.from_buffer(buffer, len(batch),
                                    time_bin=batch.time_bin,
                                    start_ts=batch.start_ts,
                                    payloads=batch.payloads, copy=True)
        for column in COLUMN_FIELDS:
            original = getattr(batch, column)
            restored = getattr(rebuilt, column)
            assert restored.dtype == original.dtype, column
            assert np.array_equal(restored, original), column
        assert rebuilt.payloads == batch.payloads
        assert rebuilt.start_ts == batch.start_ts
        assert rebuilt.time_bin == batch.time_bin

    def test_copied_views_do_not_alias_the_buffer(self):
        batch = make_batch(n=64, seed=2)
        buffer = bytearray(batch.buffer_nbytes())
        batch.pack_into(buffer)
        rebuilt = Batch.from_buffer(buffer, len(batch), copy=True)
        before = rebuilt.src_ip.copy()
        buffer[:] = b"\x00" * len(buffer)  # worker slot gets repacked
        assert np.array_equal(rebuilt.src_ip, before)

    def test_pack_rejects_undersized_buffers(self):
        batch = make_batch(n=100, seed=5)
        with pytest.raises(ValueError):
            batch.pack_into(bytearray(batch.buffer_nbytes() - 1))


# ----------------------------------------------------------------------
# Backend transparency (bit-identity)
# ----------------------------------------------------------------------
@needs_fork
class TestWorkerBitIdentity:
    @pytest.mark.parametrize("mode", ["predictive", "reactive", "original",
                                      "reference"])
    def test_workers_match_in_process_with_rebalancing(self, golden_scenario,
                                                       mode):
        """All four modes, rebalancing ON — the configuration the legacy
        fork pool refuses outright runs bit-identically on workers."""
        trace, capacity, _ = golden_scenario
        config = runner.system_config(
            mode=mode, cycles_per_second=capacity * 0.5, seed=99,
            shard_rebalance=True)
        in_process = ShardedSystem(_factory(), config=config,
                                   num_shards=2).run(trace)
        workers = ShardedSystem(_factory(), config=config, num_shards=2,
                                backend="workers").run(trace)
        _assert_identical(in_process, workers)

    def test_pipelined_streaming_matches_lockstep(self, golden_scenario):
        """Rebalancing off takes the pipelined (run-ahead) ingest path;
        results must still match the strictly serial in-process replay."""
        trace, capacity, _ = golden_scenario
        config = runner.system_config(cycles_per_second=capacity * 0.5,
                                      shard_rebalance=False, seed=7)
        in_process = ShardedSystem(_factory(), config=config,
                                   num_shards=4).run(trace)
        workers = ShardedSystem(_factory(), config=config, num_shards=4,
                                backend="workers").run(trace)
        _assert_identical(in_process, workers)

    def test_streamed_store_with_prefetch_matches_in_memory(self,
                                                            golden_scenario,
                                                            tmp_path):
        """Out-of-core replay (store -> prefetching streaming trace ->
        worker shards) equals the fully in-memory in-process run."""
        trace, capacity, _ = golden_scenario
        store = save_trace_store(trace, tmp_path / "golden")
        streaming = store.streaming(
            chunk_packets=max(1, len(trace) // 8), max_resident_chunks=2,
            prefetch=True)
        config = runner.system_config(cycles_per_second=capacity * 0.5,
                                      seed=13)
        in_memory = ShardedSystem(_factory(), config=config,
                                  num_shards=2).run(trace)
        streamed = ShardedSystem(_factory(), config=config, num_shards=2,
                                 backend="workers").run(streaming)
        assert streaming.prefetched > 0
        serial = _series_fingerprint(in_memory)
        pooled = _series_fingerprint(streamed)
        for name in serial:
            assert np.array_equal(serial[name], pooled[name]), name

    def test_live_reconfiguration_matches_in_process(self):
        """Query departures/arrivals, capacity changes and partial
        snapshots mid-stream behave identically across backends."""
        config = runner.system_config(cycles_per_second=5e7, seed=3)
        batches = [make_batch(n=80, seed=s, start_ts=0.1 * s)
                   for s in range(24)]

        def drive(backend):
            sharded = ShardedSystem(_factory(("counter", "flows")),
                                    config=config, num_shards=2,
                                    backend=backend)
            session = sharded.open_session(name="reconfig")
            for batch in batches[:12]:
                session.ingest(batch)
            session.remove_query("flows")
            session.add_query(lambda: make_query("top-k"))
            session.set_capacity(4e7)
            for batch in batches[12:]:
                session.ingest(batch)
            partial = session.partial_result()
            return partial, session.close()

        partial_in, final_in = drive("inprocess")
        partial_w, final_w = drive("workers")
        _assert_identical(final_in, final_w)
        assert set(partial_w.query_logs) == set(partial_in.query_logs)
        for qname, log in partial_in.query_logs.items():
            assert partial_w.query_logs[qname].results == log.results

    def test_partial_result_mid_stream_is_bit_identical(self):
        """Snapshot-while-streaming: a ``partial_result`` taken from a
        live worker-pool session matches the serial session's snapshot at
        the same bin, and taking it perturbs neither stream."""
        config = runner.system_config(cycles_per_second=4e7, seed=11)
        batches = [make_batch(n=90, seed=s, start_ts=0.1 * s)
                   for s in range(20)]

        def drive(backend):
            sharded = ShardedSystem(_factory(("counter", "flows", "top-k")),
                                    config=config, num_shards=2,
                                    backend=backend)
            session = sharded.open_session(name="snapshot")
            partials = []
            for index, batch in enumerate(batches):
                session.ingest(batch)
                if index in (6, 13):
                    partials.append(session.partial_result())
            return partials, session.close()

        partials_in, final_in = drive("inprocess")
        partials_w, final_w = drive("workers")
        for snap_in, snap_w in zip(partials_in, partials_w):
            _assert_identical(snap_in, snap_w)
        _assert_identical(final_in, final_w)
        # The snapshots are frozen: the stream moved on, they did not.
        assert len(partials_w[0].bins) == 7
        assert len(partials_w[1].bins) == 14

    def test_auto_resolves_to_workers_when_parallelism_requested(self):
        system = ShardedSystem(_factory(("counter",)), num_shards=2,
                               n_workers=2, respect_cores=False,
                               config=runner.system_config())
        assert system.resolve_backend() == "workers"
        serial = ShardedSystem(_factory(("counter",)), num_shards=2,
                               config=runner.system_config())
        assert serial.resolve_backend() == "inprocess"


# ----------------------------------------------------------------------
# Pool lifecycle
# ----------------------------------------------------------------------
@needs_fork
class TestPoolLifecycle:
    def _open_worker_session(self, num_shards=2):
        sharded = ShardedSystem(_factory(("counter",)), num_shards=num_shards,
                                backend="workers",
                                config=runner.system_config(
                                    cycles_per_second=1e9))
        return sharded.open_session(name="lifecycle")

    def test_close_is_idempotent_and_unlinks_every_segment(self):
        session = self._open_worker_session()
        for s in range(6):
            session.ingest(make_batch(n=120, seed=s, start_ts=0.1 * s))
        pool = session._pool
        assert pool.created_segments
        assert any(_attachable(name) for name in pool.created_segments)
        first = session.close()
        assert session.close() is first
        assert pool.stopped
        for name in pool.created_segments:
            assert not _attachable(name), f"segment {name} leaked"

    def test_stop_is_idempotent_and_safe_after_close(self):
        session = self._open_worker_session()
        session.ingest(make_batch(n=50, seed=1))
        session.close()
        pool = session._pool
        pool.stop()
        pool.stop()
        assert pool.stopped

    def test_worker_death_mid_stream_surfaces_clear_error(self):
        session = self._open_worker_session()
        session.ingest(make_batch(n=50, seed=1))
        pool = session._pool
        pool._workers[1].process.kill()
        pool._workers[1].process.join(timeout=10.0)
        with pytest.raises(ShardWorkerError, match="shard worker 1"):
            for s in range(2, 12):
                session.ingest(make_batch(n=50, seed=s, start_ts=0.1 * s))
        # The failure stops the pool and releases every segment...
        assert pool.stopped
        for name in pool.created_segments:
            assert not _attachable(name), f"segment {name} leaked"
        # ...and later use reports the failure instead of hanging.
        with pytest.raises(ShardWorkerError):
            session.ingest(make_batch(n=50, seed=99))

    def test_closed_worker_session_rejects_use(self):
        session = self._open_worker_session()
        session.ingest(make_batch(n=40, seed=2))
        session.close()
        with pytest.raises(RuntimeError):
            session.ingest(make_batch(n=40, seed=3))
        with pytest.raises(RuntimeError):
            session.set_capacity(1e6)

    def test_worker_session_validates_queries_in_the_parent(self):
        session = self._open_worker_session()
        with pytest.raises(ValueError):
            session.add_query(lambda: make_query("counter"))  # duplicate
        with pytest.raises(KeyError):
            session.remove_query("no-such-query")
        session.close()

    def test_context_manager_stops_pool_on_error(self):
        session = self._open_worker_session()
        with pytest.raises(RuntimeError):
            with session:
                raise RuntimeError("boom")
        assert session._pool.stopped
        for name in session._pool.created_segments:
            assert not _attachable(name), f"segment {name} leaked"


# ----------------------------------------------------------------------
# Driver hygiene
# ----------------------------------------------------------------------
class TestPoolStateSafety:
    def test_pool_state_cleared_when_the_pool_map_raises(self, monkeypatch):
        """A crash inside the fork pool must not leak the pre-partitioned
        stream into the parent (and into every later fork)."""
        def exploding_map(*args, **kwargs):
            assert sharding._POOL_STATE  # populated for the workers
            raise RuntimeError("worker crashed")

        monkeypatch.setattr(sharding, "fork_pool_map", exploding_map)
        system = ShardedSystem(
            _factory(("counter",)), num_shards=2, n_workers=2,
            respect_cores=False, backend="fork",
            config=runner.system_config(cycles_per_second=1e9,
                                        shard_rebalance=False))
        trace = scenarios.build_workload("cesca", seed=1, scale=0.05)
        with pytest.raises(RuntimeError, match="worker crashed"):
            system.run(trace)
        assert sharding._POOL_STATE == {}


class TestExecutionWarnings:
    def test_session_warns_when_requested_workers_run_in_process(self):
        system = ShardedSystem(_factory(("counter",)), num_shards=2,
                               n_workers=4, backend="inprocess",
                               config=runner.system_config(
                                   cycles_per_second=1e9))
        with pytest.warns(ShardExecutionWarning, match="in-process"):
            session = system.open_session(name="degraded")
        session.ingest(make_batch(n=30, seed=1))
        session.close()

    def test_no_warning_when_serial_execution_was_asked_for(self,
                                                            recwarn):
        system = ShardedSystem(_factory(("counter",)), num_shards=2,
                               config=runner.system_config(
                                   cycles_per_second=1e9))
        session = system.open_session(name="serial")
        session.close()
        assert not [w for w in recwarn
                    if issubclass(w.category, ShardExecutionWarning)]


class TestStreamingTelemetry:
    @pytest.fixture()
    def store(self, tmp_path):
        trace = scenarios.build_workload("cesca", seed=5, scale=0.05)
        return save_trace_store(trace, tmp_path / "telemetry")

    def test_stats_reset_per_replay_run(self, store):
        streaming = store.streaming(chunk_packets=max(1, len(store) // 6),
                                    max_resident_chunks=2)
        config = runner.system_config(cycles_per_second=1e9)
        config.build([make_query("counter")]).run(streaming)
        first = (streaming.cache_hits, streaming.cache_misses,
                 streaming.max_resident)
        config.build([make_query("counter")]).run(streaming)
        second = (streaming.cache_hits, streaming.cache_misses,
                  streaming.max_resident)
        assert first == second  # per-run numbers, not accumulated totals
        assert second[1] > 0

    def test_reset_stats_keeps_cache_contents(self, store):
        streaming = store.streaming(chunk_packets=max(1, len(store) // 4),
                                    max_resident_chunks=8)
        list(streaming.batches(0.1))
        resident = streaming.resident_chunks
        streaming.reset_stats()
        assert (streaming.cache_hits, streaming.cache_misses,
                streaming.max_resident, streaming.prefetched) == (0, 0, 0, 0)
        assert streaming.resident_chunks == resident

    def test_prefetch_is_counted_and_bit_identical(self, store):
        plain = store.streaming(chunk_packets=max(1, len(store) // 6),
                                max_resident_chunks=3)
        prefetching = store.streaming(chunk_packets=max(1, len(store) // 6),
                                      max_resident_chunks=3, prefetch=True)
        for mine, theirs in zip(plain.batches(0.1), prefetching.batches(0.1)):
            for column in COLUMN_FIELDS:
                assert np.array_equal(getattr(mine, column),
                                      getattr(theirs, column))
        assert prefetching.prefetched > 0
        # Prefetched loads are accounted separately, so the hit/miss
        # telemetry still reflects what the consumer actually requested.
        assert (prefetching.cache_hits + prefetching.cache_misses
                + prefetching.prefetched >= plain.cache_misses)
