"""The v2 trace store and the out-of-core streaming replay path.

The contract under test: a trace persisted as a memory-mapped columnar
store and replayed chunk-by-chunk through :class:`StreamingTrace` /
``ingest_trace`` must be indistinguishable — bit for bit, across all four
operating modes, serial and sharded — from loading the same packets in
memory and running them the classic way, while the chunk cache never holds
more than its K chunks.
"""

import json

import numpy as np
import pytest

from repro.experiments import runner
from repro.monitor.packet import COLUMN_FIELDS, StreamingTrace, as_trace
from repro.monitor.sharding import ShardedSystem
from repro.queries import make_query
from repro.traffic import generate_trace, generate_trace_store
from repro.traffic.generator import TrafficProfile
from repro.traffic.trace_io import (MANIFEST_NAME, TraceStore, TraceWriter,
                                    open_trace, save_trace, save_trace_store)
from repro import replay
from repro.testing import assert_results_identical as _assert_results_identical

QUERY_SET = ("counter", "flows", "top-k")


def _assert_batches_identical(mem_batches, streamed_batches):
    mem_batches = list(mem_batches)
    streamed_batches = list(streamed_batches)
    assert len(mem_batches) == len(streamed_batches)
    for index, (mem, streamed) in enumerate(zip(mem_batches,
                                                streamed_batches)):
        assert mem.start_ts == streamed.start_ts, index
        assert mem.time_bin == streamed.time_bin, index
        for column in COLUMN_FIELDS:
            original = getattr(mem, column)
            restored = getattr(streamed, column)
            assert restored.dtype == original.dtype, (index, column)
            assert np.array_equal(restored, original), (index, column)
        assert mem.payloads == streamed.payloads, index


@pytest.fixture(scope="module")
def store_and_trace(tmp_path_factory, request):
    trace = request.getfixturevalue("small_trace")
    path = tmp_path_factory.mktemp("stores") / "header"
    return save_trace_store(trace, path), trace


# ----------------------------------------------------------------------
# Store round trip and format
# ----------------------------------------------------------------------
def test_store_roundtrip_is_bit_identical(store_and_trace):
    store, trace = store_and_trace
    assert store.num_packets == len(trace)
    assert store.name == trace.name
    restored = store.to_trace()
    for column in COLUMN_FIELDS:
        original = getattr(trace.packets, column)
        back = getattr(restored.packets, column)
        assert back.dtype == original.dtype, column
        assert np.array_equal(back, original), column
    assert restored.packets.payloads is None


def test_payload_store_roundtrip(tmp_path, payload_trace_small):
    store = save_trace_store(payload_trace_small, tmp_path / "payload")
    assert store.has_payloads
    restored = store.to_trace()
    assert restored.packets.payloads == payload_trace_small.packets.payloads


def test_columns_are_memory_mapped(store_and_trace):
    store, _ = store_and_trace
    assert isinstance(store.column("ts"), np.memmap)
    assert not store.column("ts").flags.writeable


def test_manifest_contents(store_and_trace):
    store, trace = store_and_trace
    manifest = json.loads((store.path / MANIFEST_NAME).read_text())
    assert manifest["version"] == 2
    assert manifest["num_packets"] == len(trace)
    assert manifest["has_payloads"] is False
    assert set(manifest["columns"]) == set(COLUMN_FIELDS)
    bounds = manifest["bin_index"]["bounds"]
    assert bounds[0] == 0 and bounds[-1] == len(trace)
    assert bounds == sorted(bounds)


def test_stored_bin_index_matches_column_scan(store_and_trace):
    store, _ = store_and_trace
    stored = store.bin_bounds(0.1)
    assert stored is not None
    ts = np.asarray(store.column("ts"))
    n_bins = int(np.floor((ts[-1] - ts[0]) / 0.1)) + 1
    edges = float(ts[0]) + 0.1 * np.arange(n_bins + 1)
    assert np.array_equal(stored, np.searchsorted(ts, edges))
    # An unindexed time_bin sends the caller to the column scan...
    assert store.bin_bounds(0.25) is None
    # ...and the streaming layout agrees with in-memory slicing anyway.
    streaming = store.streaming(chunk_packets=913)
    mem = store.to_trace()
    _assert_batches_identical(mem.batch_list(0.25),
                              streaming.batch_list(0.25))


def test_open_trace_dispatches_on_format(tmp_path, small_trace):
    npz = save_trace(small_trace, tmp_path / "v1.npz")
    loaded = open_trace(npz)
    assert loaded.name == small_trace.name
    assert not isinstance(loaded, TraceStore)
    store = save_trace_store(small_trace, tmp_path / "v2")
    assert isinstance(open_trace(store.path), TraceStore)
    with pytest.raises(FileNotFoundError):
        open_trace(tmp_path)  # a directory without a manifest


# ----------------------------------------------------------------------
# The append-mode writer
# ----------------------------------------------------------------------
def test_writer_chunked_appends_equal_one_shot(tmp_path, small_trace):
    one_shot = save_trace_store(small_trace, tmp_path / "oneshot")
    writer = TraceWriter(tmp_path / "chunked", name=small_trace.name)
    pkts = small_trace.packets
    for lo in range(0, len(pkts), 769):
        writer.append(pkts.select(np.arange(lo, min(lo + 769, len(pkts)))))
    chunked = writer.close()
    assert chunked.num_packets == one_shot.num_packets
    for column in COLUMN_FIELDS:
        assert np.array_equal(np.asarray(chunked.column(column)),
                              np.asarray(one_shot.column(column))), column
    # The incrementally maintained bin index must equal the one-shot one.
    assert np.array_equal(chunked.bin_bounds(0.1), one_shot.bin_bounds(0.1))


def test_writer_rejects_unordered_and_mismatched_chunks(tmp_path,
                                                        small_trace):
    pkts = small_trace.packets
    writer = TraceWriter(tmp_path / "bad", name="bad")
    writer.append(pkts.select(np.arange(100, 200)))
    with pytest.raises(ValueError, match="chronologically"):
        writer.append(pkts.select(np.arange(0, 50)))
    with pytest.raises(ValueError, match="payloads"):
        writer.append(_payload_batch())
    writer.close()
    with pytest.raises(RuntimeError):
        writer.append(pkts.select(np.arange(300, 310)))


def _payload_batch():
    return generate_trace(
        TrafficProfile(duration=0.5, flow_arrival_rate=50.0,
                       with_payloads=True), seed=9).packets


def test_writer_refuses_to_overwrite_a_store(tmp_path, small_trace):
    save_trace_store(small_trace, tmp_path / "once")
    with pytest.raises(FileExistsError):
        TraceWriter(tmp_path / "once")


def test_empty_store(tmp_path):
    store = TraceWriter(tmp_path / "empty", name="empty").close()
    assert store.num_packets == 0
    streaming = store.streaming()
    assert streaming.num_batches() == 0
    assert list(streaming.batches()) == []
    assert len(store.to_trace()) == 0


def test_generate_trace_store_is_deterministic_and_bounded(tmp_path):
    profile = TrafficProfile(duration=3.0, flow_arrival_rate=120.0,
                             name="gen")
    first = generate_trace_store(tmp_path / "a", profile, seed=4,
                                 segment_duration=1.0)
    second = generate_trace_store(tmp_path / "b", profile, seed=4,
                                  segment_duration=1.0)
    assert first.num_packets == second.num_packets > 0
    for column in COLUMN_FIELDS:
        assert np.array_equal(np.asarray(first.column(column)),
                              np.asarray(second.column(column))), column
    ts = np.asarray(first.column("ts"))
    assert np.all(np.diff(ts) >= 0)
    assert float(ts[-1]) <= profile.duration + 1e-9


# ----------------------------------------------------------------------
# Streaming: chunking, residency, batch equality
# ----------------------------------------------------------------------
def test_streaming_batches_equal_in_memory_batches(store_and_trace):
    store, trace = store_and_trace
    # A chunk size that never divides the bin boundaries: most bins
    # straddle chunks, the case the piecewise assembly must get right.
    streaming = store.streaming(chunk_packets=601, max_resident_chunks=3)
    _assert_batches_identical(trace.batch_list(0.1),
                              streaming.batch_list(0.1))
    assert streaming.num_batches(0.1) == trace.num_batches(0.1)
    assert streaming.duration == trace.duration


def test_streaming_payload_batches(tmp_path, payload_trace_small):
    store = save_trace_store(payload_trace_small, tmp_path / "p")
    streaming = store.streaming(chunk_packets=347, max_resident_chunks=2)
    _assert_batches_identical(payload_trace_small.batch_list(0.1),
                              streaming.batch_list(0.1))


def test_single_chunk_bins_are_zero_copy_views(store_and_trace):
    store, _ = store_and_trace
    streaming = store.streaming(chunk_packets=len(store) or 1)
    batch = next(b for b in streaming.batches(0.1) if len(b) > 0)
    assert batch.ts.base is not None  # a view into the chunk, not a copy


def test_lru_never_exceeds_budget(store_and_trace):
    store, _ = store_and_trace
    k = 2
    streaming = store.streaming(chunk_packets=max(1, len(store) // 16),
                                max_resident_chunks=k)
    assert streaming.num_chunks >= 4 * k  # the out-of-core regime
    for _ in streaming.batches(0.1):
        assert streaming.resident_chunks <= k
    assert streaming.max_resident <= k
    assert streaming.cache_misses >= streaming.num_chunks


def test_close_leaves_no_dangling_prefetch_threads(store_and_trace):
    """Abandoning a prefetching iteration mid-trace and closing the
    streaming trace must join every loader thread — a daemon rotating to
    a newer segment cannot leak one thread per abandoned trace."""
    import threading
    store, _ = store_and_trace

    def prefetch_threads():
        return [t for t in threading.enumerate()
                if t.name.startswith("repro-prefetch-")]

    streaming = store.streaming(chunk_packets=max(1, len(store) // 16),
                                max_resident_chunks=2, prefetch=True)
    for index, _batch in enumerate(streaming.batches(0.1)):
        if index == 3:  # abandon mid-iteration, prefetch in flight
            break
    streaming.close()
    streaming.close()  # idempotent
    assert prefetch_threads() == []
    # The cache stays readable after close; only prefetching stops.
    assert len(streaming.batch_list(0.1)) > 0
    assert prefetch_threads() == []


def test_as_trace_coercion(store_and_trace):
    store, trace = store_and_trace
    assert as_trace(trace) is trace
    streaming = store.streaming()
    assert as_trace(streaming) is streaming
    assert isinstance(as_trace(store), StreamingTrace)
    with pytest.raises(TypeError):
        as_trace(42)


# ----------------------------------------------------------------------
# Out-of-core replay: the golden pin
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def shed_setup(store_and_trace):
    store, trace = store_and_trace
    capacity, _ = runner.calibrate_capacity(QUERY_SET, trace)
    return store, trace, capacity * 0.5


@pytest.mark.parametrize("mode", ["predictive", "reactive", "original",
                                  "reference"])
def test_streaming_replay_bit_identical_all_modes(shed_setup, mode):
    """The golden pin: v1 in-memory vs v2 mmap replay, all four modes."""
    store, trace, capacity = shed_setup
    config = runner.system_config(mode=mode, seed=7)
    in_memory = runner.run_system(QUERY_SET, trace, capacity, config=config)
    streaming = store.streaming(chunk_packets=max(1, len(store) // 8),
                                max_resident_chunks=2)
    streamed = runner.run_system(QUERY_SET, streaming, capacity,
                                 config=config)
    _assert_results_identical(in_memory, streamed, mode)
    assert streaming.max_resident <= 2


def test_sharded_streaming_replay_bit_identical(shed_setup):
    """num_shards=4 over a store >= 4x the chunk budget == in-memory."""
    store, trace, capacity = shed_setup
    config = runner.system_config(cycles_per_second=capacity, num_shards=4,
                                  seed=3)

    def factory():
        return [make_query(name) for name in QUERY_SET]

    in_memory = ShardedSystem(factory, config=config).run(trace)
    k = 2
    streaming = store.streaming(chunk_packets=max(1, len(store) // (4 * k)),
                                max_resident_chunks=k)
    assert streaming.num_chunks >= 4 * k
    session = ShardedSystem(factory, config=config).open_session(
        name=streaming.name)
    streamed = runner.ingest_trace(session, streaming)
    _assert_results_identical(in_memory, streamed, "sharded")
    assert streaming.max_resident <= k


def test_session_ingest_trace_accepts_store_directly(shed_setup):
    store, trace, capacity = shed_setup
    config = runner.system_config(cycles_per_second=capacity, seed=7)
    in_memory = config.build(
        [make_query(name) for name in QUERY_SET]).run(trace)
    session = config.build(
        [make_query(name) for name in QUERY_SET]).open_session(
        name=store.name)
    streamed = session.ingest_trace(store).close()
    _assert_results_identical(in_memory, streamed, "store-direct")


# ----------------------------------------------------------------------
# The replay CLI
# ----------------------------------------------------------------------
def test_replay_cli_on_a_store(tmp_path, capsys, small_trace):
    store = save_trace_store(small_trace, tmp_path / "cli")
    code = replay.main([str(store.path), "--queries", "counter,flows",
                        "--cycles-per-second", "2e8", "--chunk-packets",
                        "500", "--max-chunks", "2", "--json"])
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["trace"]["packets"] == len(small_trace)
    assert summary["trace"]["streaming"] is True
    assert summary["streaming"]["max_resident"] <= 2
    assert summary["outcome"]["intervals_by_query"].keys() == {"counter",
                                                               "flows"}


def test_replay_cli_on_a_v1_archive(tmp_path, capsys, small_trace):
    path = save_trace(small_trace, tmp_path / "v1.npz")
    code = replay.main([str(path), "--queries", "counter",
                        "--overload", "0.3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "outcome" in out and "streamed out-of-core" not in out
