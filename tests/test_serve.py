"""The serve subsystem: feeds, daemon, ops API, end-to-end bit-identity.

The contracts under test:

* **Feeds** — every feed delivers exactly the bins an offline replay of
  the same source would: ReplayFeed mirrors ``batch_list``, TailFeed
  follows a store another writer is still flushing and converges on the
  finished store's bins, GeneratorFeed reproduces the
  ``generate_trace_store`` segment recipe, SocketFeed bins JSONL records
  at ``time_bin`` boundaries.
* **Daemon end to end** — a daemon fed live traffic, reconfigured over
  HTTP mid-stream and checkpointed, produces (a) the same final result as
  an uninterrupted in-process run with the same reconfiguration, and (b)
  a checkpoint whose restore finishes to that same result.
* **Ops API** — /status, /queries, /capacity, /config, /result behave;
  /metrics emits parseable Prometheus text exposition format; errors map
  to 400/404/409 with JSON bodies.
"""

import asyncio
import json
import re
import shutil
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.experiments import runner
from repro.serve import (GeneratorFeed, MonitorDaemon, ReplayFeed,
                         SocketFeed, TailFeed, restore_session)
from repro.serve.api import render_metrics
from repro.testing import assert_results_identical
from repro.traffic.generator import TrafficProfile, generate_trace_store
from repro.traffic.trace_io import TraceStore, TraceWriter

CAPACITY = 2.0e7
TIME_BIN = 0.1


def _collect(feed):
    """Drain a feed's async iterator into a list of batches."""
    async def gather():
        return [batch async for batch in feed.batches()]
    return asyncio.run(gather())


def _assert_batches_equal(actual, expected, label=""):
    assert len(actual) == len(expected), label
    for index, (a, b) in enumerate(zip(actual, expected)):
        assert len(a) == len(b), (label, index)
        assert np.array_equal(a.ts, b.ts), (label, index)
        assert np.array_equal(a.src_ip, b.src_ip), (label, index)
        assert np.array_equal(a.size, b.size), (label, index)
        assert a.start_ts == pytest.approx(b.start_ts), (label, index)


# ----------------------------------------------------------------------
# Feeds
# ----------------------------------------------------------------------
def test_replay_feed_matches_batch_list(small_trace):
    feed = ReplayFeed(small_trace, time_bin=TIME_BIN)
    batches = _collect(feed)
    _assert_batches_equal(batches, small_trace.batch_list(TIME_BIN),
                          "replay")
    assert feed.done


def test_replay_feed_from_store_path(tmp_path, small_trace):
    from repro.traffic.trace_io import save_trace_store
    store = save_trace_store(small_trace, tmp_path / "store")
    feed = ReplayFeed(str(tmp_path / "store"), time_bin=TIME_BIN)
    batches = _collect(feed)
    _assert_batches_equal(batches,
                          store.streaming().batch_list(TIME_BIN),
                          "replay-store")


def test_replay_feed_stop_ends_early(small_trace):
    feed = ReplayFeed(small_trace, time_bin=TIME_BIN)

    async def gather():
        got = []
        async for batch in feed.batches():
            got.append(batch)
            if len(got) == 3:
                feed.stop()
        return got

    got = asyncio.run(gather())
    assert len(got) == 3
    assert feed.done


def test_generator_feed_matches_trace_store(tmp_path):
    """The live generator reproduces the store generator's exact stream."""
    profile = TrafficProfile(duration=3.0, flow_arrival_rate=120.0,
                             name="genfeed")
    store = generate_trace_store(tmp_path / "gen", profile, seed=11,
                                 segment_duration=1.0, time_bin=TIME_BIN)
    expected = store.streaming().batch_list(TIME_BIN)
    feed = GeneratorFeed(profile, seed=11, time_bin=TIME_BIN,
                         segment_duration=1.0)
    _assert_batches_equal(_collect(feed), list(expected), "generator")


def test_generator_feed_max_bins():
    profile = TrafficProfile(duration=5.0, flow_arrival_rate=120.0)
    feed = GeneratorFeed(profile, seed=2, time_bin=TIME_BIN,
                         segment_duration=1.0, max_bins=7)
    assert len(_collect(feed)) == 7


def test_tail_feed_follows_growing_store(tmp_path, small_trace):
    """Bins stream out while the writer is mid-flight; total = full store."""
    pkts = small_trace.packets
    split = int(np.searchsorted(pkts.ts, float(pkts.ts[0]) + 2.0))
    path = tmp_path / "tail"
    writer = TraceWriter(path, name="tail", time_bin=TIME_BIN)
    writer.append(pkts.select(np.arange(split)))
    writer.flush()
    assert TraceStore(path).complete is False

    feed = TailFeed(path, time_bin=TIME_BIN, poll_interval=0.05)
    progressed = threading.Event()

    def finish_writing():
        progressed.wait(timeout=10.0)
        writer.append(pkts.select(np.arange(split, len(pkts))))
        writer.close()

    finisher = threading.Thread(target=finish_writing)
    finisher.start()

    async def gather():
        got = []
        async for batch in feed.batches():
            got.append(batch)
            progressed.set()  # first bins arrived from the partial store
        return got

    batches = asyncio.run(gather())
    finisher.join()
    store = TraceStore(path)
    assert store.complete is True
    _assert_batches_equal(batches, store.streaming().batch_list(TIME_BIN),
                          "tail")


def test_socket_feed_bins_jsonl_records():
    # Timestamps i/16 and a bin width of 1/4 are exact binary fractions,
    # so the expected binning has no edge-rounding ambiguity.
    records = [{"ts": i / 16, "src_ip": "10.0.0.%d" % (i % 4),
                "dst_ip": 167772161, "src_port": 1024 + i, "dst_port": 80,
                "proto": 6, "size": 100 + i} for i in range(25)]

    async def scenario():
        feed = SocketFeed(time_bin=0.25)
        await feed.start()
        got = []

        async def consume():
            async for batch in feed.batches():
                got.append(batch)

        consumer = asyncio.ensure_future(consume())
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       feed.bound_port)
        for record in records:
            writer.write((json.dumps(record) + "\n").encode())
        writer.write(b"this is not json\n")  # ignored, stream stays alive
        await writer.drain()
        writer.close()
        await asyncio.sleep(0.2)
        feed.stop()
        await asyncio.wait_for(consumer, timeout=5.0)
        return got

    batches = asyncio.run(scenario())
    total = sum(len(batch) for batch in batches)
    assert total == len(records)
    # Records span [0, 1.5]s -> 7 bins of 250 ms anchored at ts=0; the
    # last bin holds only the final record.
    assert [len(batch) for batch in batches] == [4, 4, 4, 4, 4, 4, 1]
    assert batches[0].src_port[0] == 1024


# ----------------------------------------------------------------------
# Daemon + ops API (driven over real HTTP)
# ----------------------------------------------------------------------
class DaemonHarness:
    """Run a MonitorDaemon on a background thread; talk HTTP to it."""

    def __init__(self, daemon):
        self.daemon = daemon
        self.result = None
        self.error = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        try:
            self.result = asyncio.run(self.daemon.run())
        except BaseException as exc:  # surfaced by join()
            self.error = exc

    def __enter__(self):
        self._thread.start()
        deadline = time.monotonic() + 10.0
        while self.daemon.bound_port == 0:
            if self.error is not None or time.monotonic() > deadline:
                raise RuntimeError(f"daemon failed to start: {self.error}")
            time.sleep(0.01)
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.daemon.stop()
        self.join(timeout=30.0)

    def join(self, timeout=30.0):
        self._thread.join(timeout=timeout)
        if self.error is not None:
            raise self.error
        return self.result

    # -- HTTP helpers --------------------------------------------------
    def _url(self, path):
        return f"http://127.0.0.1:{self.daemon.bound_port}{path}"

    def get(self, path):
        with urllib.request.urlopen(self._url(path), timeout=10) as resp:
            body = resp.read()
        if path == "/metrics":
            return body.decode()
        return json.loads(body)

    def request(self, method, path, document=None):
        data = (json.dumps(document).encode()
                if document is not None else b"")
        req = urllib.request.Request(self._url(path), data=data,
                                     method=method)
        req.add_header("Content-Type", "application/json")
        with urllib.request.urlopen(req, timeout=10) as resp:
            return json.loads(resp.read())

    def wait_status(self, predicate, timeout=20.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status = self.get("/status")
            if predicate(status):
                return status
            time.sleep(0.05)
        raise AssertionError(f"status never satisfied predicate; "
                             f"last: {self.get('/status')}")


def _daemon_config(**overrides):
    return runner.system_config(mode="predictive", seed=5,
                                queries="counter,flows",
                                cycles_per_second=CAPACITY, **overrides)


@pytest.fixture(scope="module")
def serve_trace():
    from repro.traffic import generate_trace
    profile = TrafficProfile(duration=4.0, flow_arrival_rate=150.0,
                             name="serve-e2e")
    return generate_trace(profile, seed=3)


def test_daemon_end_to_end_checkpoint_restore(tmp_path, serve_trace):
    """The acceptance path: tail a growing store, live-add a query over
    HTTP, checkpoint mid-stream, restore — all three results identical."""
    pkts = serve_trace.packets
    first_ts = float(pkts.ts[0])
    split = int(np.searchsorted(pkts.ts, first_ts + 2.0))
    path = tmp_path / "live"
    writer = TraceWriter(path, name="live", time_bin=TIME_BIN)
    writer.append(pkts.select(np.arange(split)))
    writer.flush()
    # Bins the tail feed will deliver from the partial store: every bin
    # whose upper edge is at or before the last written timestamp.
    part1_end = float(pkts.ts[split - 1])
    k1 = int(np.floor((part1_end - first_ts) / TIME_BIN))
    assert k1 >= 5

    spec = {"kind": "top-k", "kwargs": {"k": 5, "name": "live-topk"}}
    config = _daemon_config()
    feed = TailFeed(path, time_bin=TIME_BIN, poll_interval=0.05)
    daemon = MonitorDaemon(config, feed, checkpoint_dir=tmp_path / "ckpt",
                           name="e2e")
    with DaemonHarness(daemon) as harness:
        harness.wait_status(lambda s: s["bins_ingested"] == k1)
        # The store can grow no further until we append below, so the add
        # lands deterministically at the bin-k1 boundary.
        added = harness.request("POST", "/queries", {"spec": spec})
        assert added["added"] == "live-topk"
        ckpt = harness.request("POST", "/checkpoint")
        assert ckpt["bins_ingested"] == k1
        frozen = tmp_path / "frozen.pkl"  # shutdown overwrites the live one
        shutil.copy(ckpt["checkpoint"], frozen)

        writer.append(pkts.select(np.arange(split, len(pkts))))
        writer.close()
        result_daemon = harness.join(timeout=60.0)
    assert result_daemon is not None
    assert "live-topk" in result_daemon.query_logs

    store = TraceStore(path)
    bins = store.streaming().batch_list(TIME_BIN)
    assert len(result_daemon.bins) == len(bins)

    # Reference: uninterrupted in-process run, same add at the same bin.
    reference = config.build().open_session(time_bin=TIME_BIN, name="ref")
    for batch in bins[:k1]:
        reference.ingest(batch)
    from repro.queries import QuerySpec
    reference.add_query(QuerySpec.from_dict(spec).build())
    for batch in bins[k1:]:
        reference.ingest(batch)
    expected = reference.close()
    assert_results_identical(expected, result_daemon, label="daemon-vs-ref")

    # Restore the mid-stream checkpoint (captured with the add still
    # pending) and finish it by hand: same result again.
    restored = restore_session(frozen)
    assert restored.bins_ingested == k1
    for batch in bins[k1:]:
        restored.ingest(batch)
    assert_results_identical(expected, restored.close(),
                             label="restore-vs-ref")


def test_daemon_status_metrics_and_ops(tmp_path, serve_trace):
    config = _daemon_config()
    feed = ReplayFeed(serve_trace, time_bin=TIME_BIN, pace=1.0)
    daemon = MonitorDaemon(config, feed, checkpoint_dir=tmp_path / "ck",
                           rotate_dir=tmp_path / "rot",
                           rotate_every_bins=10, name="ops")
    with DaemonHarness(daemon) as harness:
        status = harness.wait_status(lambda s: s["bins_ingested"] >= 5)
        assert status["mode"] == "predictive"
        assert status["feed"]["kind"] == "replay"
        assert set(status["queries"]) == {"counter", "flows"}
        assert status["uptime_seconds"] > 0

        assert harness.get("/queries")["queries"] == ["counter", "flows"]
        capacity = harness.request("POST", "/capacity",
                                   {"cycles_per_second": CAPACITY / 2})
        assert capacity["cycles_per_second"] == CAPACITY / 2

        applied = harness.request("POST", "/config",
                                  {"cycles_per_second": CAPACITY})
        assert applied["applied"] == {"cycles_per_second": CAPACITY}

        # Hot-reload rejections: dead fields and typos, as HTTP 400s.
        with pytest.raises(urllib.error.HTTPError) as err:
            harness.request("POST", "/config", {"mode": "reactive"})
        assert err.value.code == 400
        assert "cannot change while" in json.loads(err.value.read())["error"]
        with pytest.raises(urllib.error.HTTPError) as err:
            harness.request("POST", "/config", {"cycles_per_secnod": 1.0})
        assert err.value.code == 400
        assert "did you mean" in json.loads(err.value.read())["error"]

        with pytest.raises(urllib.error.HTTPError) as err:
            harness.request("DELETE", "/queries/nope")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            harness.get("/bogus")
        assert err.value.code == 404

        text = harness.get("/metrics")
        names = _assert_prometheus_text(text)
        for expected in ("repro_bins_ingested_total", "repro_packets_total",
                         "repro_dropped_packets_total",
                         "repro_feed_lag_seconds", "repro_uptime_seconds",
                         "repro_mean_prediction_error",
                         "repro_checkpoints_total"):
            assert expected in names, f"missing metric {expected}"
        doc = harness.request("POST", "/shutdown")
        assert doc["stopping"] is True
        result = harness.join(timeout=30.0)
    assert result is not None
    # Rotation wrote (at least) one finished v2 segment of the traffic.
    segments = sorted((tmp_path / "rot").glob("segment-*"))
    assert segments
    rotated = TraceStore(segments[0])
    assert rotated.complete and len(rotated) > 0
    # The shutdown checkpoint is loadable and self-describing.
    from repro.serve import describe_checkpoint
    meta = describe_checkpoint(tmp_path / "ck" / "checkpoint.pkl")
    assert meta["kind"] == "monitoring"


_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(\\.|[^\"\\])*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(\\.|[^\"\\])*\")*\})? -?[0-9.eE+\-]+$")


def _assert_prometheus_text(text):
    """A tiny exposition-format parser: HELP/TYPE pairs + sample lines."""
    lines = text.strip().splitlines()
    assert lines, "empty /metrics"
    documented = set()
    for line in lines:
        if line.startswith("# HELP "):
            documented.add(line.split()[2])
        elif line.startswith("# TYPE "):
            parts = line.split()
            assert parts[2] in documented, f"TYPE before HELP: {line}"
            assert parts[3] in ("counter", "gauge"), line
        else:
            assert _METRIC_LINE.match(line), f"unparseable sample: {line}"
            name = line.split("{")[0].split()[0]
            assert name in documented, f"undocumented sample: {line}"
    samples = [line for line in lines if not line.startswith("#")]
    return {line.split("{")[0].split()[0] for line in samples}


def test_render_metrics_labels_and_escaping():
    text = render_metrics([
        {"name": "m_total", "type": "counter", "help": "a\nb",
         "samples": [({}, 3)]},
        {"name": "g", "type": "gauge", "help": "per query",
         "samples": [({"query": 'with"quote'}, 1.5),
                     ({"query": "plain"}, 2.0)]},
    ])
    assert "# HELP m_total a\\nb" in text
    assert "m_total 3" in text.splitlines()
    assert 'g{query="with\\"quote"} 1.5' in text
    assert 'g{query="plain"} 2' in text
    _assert_prometheus_text(text)


def test_daemon_requires_declarative_queries(serve_trace):
    config = runner.system_config(cycles_per_second=CAPACITY)  # no queries
    with pytest.raises(ValueError, match="declarative 'queries'"):
        MonitorDaemon(config, ReplayFeed(serve_trace, time_bin=TIME_BIN))


def test_daemon_max_bins_stops_ingest(serve_trace):
    config = _daemon_config()
    daemon = MonitorDaemon(config,
                           ReplayFeed(serve_trace, time_bin=TIME_BIN),
                           max_bins=5)
    result = asyncio.run(daemon.run())
    assert len(result.bins) == 5


def test_sharded_daemon_serves_and_reports_shards(serve_trace):
    config = _daemon_config(num_shards=4)
    daemon = MonitorDaemon(config,
                           ReplayFeed(serve_trace, time_bin=TIME_BIN,
                                      pace=1.0),
                           name="sharded")
    with DaemonHarness(daemon) as harness:
        status = harness.wait_status(lambda s: s["bins_ingested"] >= 3)
        assert status["num_shards"] == 4
        text = harness.get("/metrics")
        assert "repro_shard_cycles" in text
        harness.request("POST", "/shutdown")
        result = harness.join(timeout=30.0)
    assert result is not None

    # And the daemon's execution matches the plain offline sharded run.
    expected = runner.run_system(None, serve_trace, CAPACITY,
                                 time_bin=TIME_BIN, config=config)
    prefix = len(result.bins)
    assert np.array_equal(
        result.series("query_cycles"),
        expected.series("query_cycles")[:prefix])


# ----------------------------------------------------------------------
# TraceWriter.flush / incremental manifests (the TailFeed substrate)
# ----------------------------------------------------------------------
def test_trace_writer_flush_publishes_readable_prefix(tmp_path, small_trace):
    pkts = small_trace.packets
    split = len(pkts) // 3
    writer = TraceWriter(tmp_path / "prefix", name="p", time_bin=TIME_BIN)
    writer.append(pkts.select(np.arange(split)))
    writer.flush()
    partial = TraceStore(tmp_path / "prefix")
    assert partial.complete is False
    assert len(partial) == split
    assert np.array_equal(partial.column("ts"), pkts.ts[:split])
    writer.append(pkts.select(np.arange(split, len(pkts))))
    final = writer.close()
    assert final.complete is True
    assert len(final) == len(pkts)
    reread = TraceStore(tmp_path / "prefix")
    assert reread.complete is True


def test_trace_writer_flush_empty_and_closed(tmp_path, small_trace):
    writer = TraceWriter(tmp_path / "empty", time_bin=TIME_BIN)
    writer.flush()  # no packets yet: quietly a no-op
    writer.append(small_trace.packets)
    writer.close()
    with pytest.raises(RuntimeError, match="closed"):
        writer.flush()
