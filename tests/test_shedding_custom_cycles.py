"""Tests for the cycle substrate, the shedding controller and enforcement."""

import numpy as np
import pytest

from repro.core.custom import CustomShedEnforcer
from repro.core.cycles import (CycleBudget, CycleClock, CycleMeter,
                               OperationCosts)
from repro.core.fairness import QueryDemand
from repro.core.shedding import (BufferDiscovery, LoadSheddingController,
                                 reactive_rate)


class TestOperationCosts:
    def test_default_costs_positive(self):
        costs = OperationCosts()
        assert costs["packet"] > 0
        assert costs.cost("hash_insert", 3) == 3 * costs["hash_insert"]

    def test_unknown_operation(self):
        with pytest.raises(KeyError):
            OperationCosts().cost("teleport")

    def test_overrides(self):
        costs = OperationCosts({"packet": 1.0})
        assert costs["packet"] == 1.0
        assert "byte" in costs


class TestCycleMeter:
    def test_accumulate_and_consume(self):
        meter = CycleMeter()
        meter.charge("packet", 10)
        meter.charge_cycles(100.0)
        total = meter.consume()
        assert total == pytest.approx(10 * meter.costs["packet"] + 100.0)
        assert meter.consume() == 0.0

    def test_noise_is_multiplicative(self):
        meter = CycleMeter(noise_std=0.1, rng=np.random.default_rng(0))
        meter.charge_cycles(1000.0)
        noisy = meter.consume()
        assert noisy != 1000.0
        assert abs(noisy - 1000.0) < 600.0


class TestCycleClock:
    def test_budget_per_bin(self):
        budget = CycleBudget(cycles_per_second=1e6, time_bin=0.1)
        assert budget.per_bin == pytest.approx(1e5)
        assert budget.scaled(0.5).per_bin == pytest.approx(5e4)

    def test_delay_accumulates_on_overrun(self):
        clock = CycleClock(CycleBudget(1e6, 0.1))
        clock.start_bin()
        clock.charge_query(2e5)   # budget is 1e5
        clock.end_bin()
        assert clock.delay == pytest.approx(1e5)
        clock.start_bin()
        clock.charge_query(0.0)
        clock.end_bin()
        assert clock.delay == pytest.approx(0.0)

    def test_overhead_accounting(self):
        clock = CycleClock(CycleBudget(1e6, 0.1))
        clock.start_bin()
        clock.charge_system(10.0)
        clock.charge_prediction(20.0)
        clock.charge_shedding(30.0)
        assert clock.overhead_so_far() == pytest.approx(60.0)
        usage = clock.end_bin()
        assert usage.total == pytest.approx(60.0)


class TestBufferDiscovery:
    def test_probes_when_under_budget(self):
        discovery = BufferDiscovery(initial_increment=10.0)
        discovery.update(used_cycles=50.0, available_cycles=100.0,
                         buffer_occupation=0.0)
        assert discovery.rtthresh > 0

    def test_backs_off_when_buffer_fills(self):
        discovery = BufferDiscovery(initial_increment=10.0)
        for _ in range(5):
            discovery.update(50.0, 100.0, 0.0)
        assert discovery.rtthresh > 0
        discovery.update(50.0, 100.0, buffer_occupation=0.9)
        assert discovery.rtthresh == 0.0

    def test_configure_budget_caps_allowance(self):
        discovery = BufferDiscovery()
        discovery.configure_budget(per_bin_budget=1000.0, buffer_cycles=2000.0)
        for _ in range(100):
            discovery.update(10.0, 1000.0, 0.0)
        assert discovery.allowance() <= 1000.0 + 1e-9


class TestLoadSheddingController:
    def test_no_overload_no_shedding(self):
        controller = LoadSheddingController()
        demands = [QueryDemand("q", 100.0, 0.0)]
        plan = controller.plan(demands, bin_budget=1000.0, overhead_cycles=0.0,
                               delay=0.0)
        assert not plan.overload
        assert plan.rates["q"] == 1.0

    def test_overload_reduces_rates(self):
        controller = LoadSheddingController()
        demands = [QueryDemand("a", 600.0, 0.0), QueryDemand("b", 600.0, 0.0)]
        plan = controller.plan(demands, bin_budget=700.0, overhead_cycles=100.0,
                               delay=0.0)
        assert plan.overload
        assert all(rate < 1.0 for rate in plan.rates.values())

    def test_error_correction_increases_shedding(self):
        lenient = LoadSheddingController()
        strict = LoadSheddingController()
        strict.record_prediction_error(predicted_after_shedding=100.0,
                                       actual_cycles=200.0)
        demands = [QueryDemand("q", 900.0, 0.0)]
        plan_lenient = lenient.plan(demands, 1000.0, 200.0, 0.0)
        plan_strict = strict.plan(demands, 1000.0, 200.0, 0.0)
        assert plan_strict.rates["q"] <= plan_lenient.rates["q"]

    def test_delay_reduces_available_cycles(self):
        controller = LoadSheddingController()
        assert controller.available_cycles(1000.0, 100.0, delay=300.0) == \
            pytest.approx(600.0)

    def test_overhead_ewma_updates(self):
        controller = LoadSheddingController()
        controller.record_shedding_overhead(100.0)
        assert controller.shedding_overhead_ewma == pytest.approx(90.0)

    def test_strategy_plumbing(self):
        controller = LoadSheddingController(strategy="mmfs_pkt")
        demands = [QueryDemand("a", 800.0, 0.1), QueryDemand("b", 200.0, 0.1)]
        plan = controller.plan(demands, 500.0, 0.0, 0.0)
        assert plan.allocation is not None
        assert plan.rates["a"] == pytest.approx(plan.rates["b"], rel=1e-3)


class TestReactiveRate:
    def test_scales_with_consumption(self):
        rate = reactive_rate(previous_rate=1.0, consumed_cycles=2000.0,
                             available_cycles=1000.0, delay=0.0)
        assert rate == pytest.approx(0.5)

    def test_bounded(self):
        assert reactive_rate(0.5, 100.0, 1000.0, 0.0) == 1.0
        assert reactive_rate(0.5, 0.0, 1000.0, 0.0) == 1.0
        assert reactive_rate(0.1, 1e6, 10.0, 0.0, min_rate=0.05) == 0.05


class TestCustomShedEnforcer:
    def test_allowed_fraction_uses_correction(self):
        enforcer = CustomShedEnforcer()
        # Query consistently uses twice what it is granted.
        for bin_index in range(20):
            enforcer.record("q", expected_cycles=100.0, actual_cycles=200.0,
                            bin_index=bin_index)
        assert enforcer.state("q").correction > 1.5
        assert enforcer.allowed_fraction("q", 0.5) < 0.35

    def test_violations_lead_to_disable(self):
        enforcer = CustomShedEnforcer(tolerance=0.1, violation_limit=3,
                                      base_penalty_bins=10)
        bin_index = 0
        while not enforcer.is_disabled("q", bin_index):
            enforcer.record("q", 100.0, 500.0, bin_index)
            bin_index += 1
            assert bin_index < 20
        state = enforcer.state("q")
        assert state.total_disables == 1
        assert enforcer.is_disabled("q", bin_index)
        assert not enforcer.is_disabled("q", state.disabled_until_bin + 1)

    def test_penalty_doubles(self):
        enforcer = CustomShedEnforcer(tolerance=0.1, violation_limit=1,
                                      base_penalty_bins=5)
        enforcer.record("q", 100.0, 1000.0, bin_index=0)
        first = enforcer.state("q").penalty_bins
        enforcer.record("q", 100.0, 1000.0, bin_index=100)
        assert enforcer.state("q").penalty_bins == 2 * first

    def test_compliant_query_never_disabled(self):
        enforcer = CustomShedEnforcer()
        for bin_index in range(50):
            enforcer.record("good", 100.0, 95.0, bin_index)
        assert enforcer.state("good").total_disables == 0
        assert not enforcer.is_disabled("good", 51)

    def test_reset_and_summary(self):
        enforcer = CustomShedEnforcer()
        enforcer.record("q", 100.0, 300.0, 0)
        assert "q" in enforcer.summary()
        enforcer.reset("q")
        assert enforcer.state("q").total_violations == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CustomShedEnforcer(tolerance=-1.0)
        with pytest.raises(ValueError):
            CustomShedEnforcer(violation_limit=0)
