"""Tests for the standard query plug-ins and their accuracy metrics."""

import numpy as np
import pytest

from repro.monitor import metrics
from repro.monitor.packet import Batch
from repro.monitor.query import SAMPLING_CUSTOM, SAMPLING_FLOW
from repro.queries import (QUERY_CLASSES, BuggyP2PDetectorQuery,
                           P2PDetectorQuery, SelfishP2PDetectorQuery,
                           make_query, standard_queries)
from repro.queries.pattern_search import boyer_moore_horspool
from tests.conftest import make_batch


class TestQueryFactory:
    def test_all_standard_queries_instantiate(self):
        queries = standard_queries()
        assert len(queries) == len(QUERY_CLASSES)
        assert len({q.name for q in queries}) == len(queries)

    def test_unknown_query(self):
        with pytest.raises(KeyError):
            make_query("nope")

    def test_minimum_sampling_rates_in_range(self):
        for query in standard_queries():
            assert 0.0 <= query.minimum_sampling_rate <= 1.0

    def test_every_query_has_a_metric(self):
        for name in QUERY_CLASSES:
            assert name in metrics.ERROR_FUNCTIONS


class TestQueryProcessing:
    @pytest.mark.parametrize("name", sorted(QUERY_CLASSES))
    def test_process_charges_cycles(self, name, payload_trace_small):
        query = make_query(name)
        batch = next(payload_trace_small.batches(0.1))
        cycles = query.process(batch, sampling_rate=1.0)
        assert cycles > 0
        result = query.interval_result()
        assert isinstance(result, dict) and result

    @pytest.mark.parametrize("name", sorted(QUERY_CLASSES))
    def test_empty_batch_handled(self, name):
        query = make_query(name)
        cycles = query.process(Batch.empty(with_payloads=True), 1.0)
        assert cycles >= 0
        query.interval_result()

    @pytest.mark.parametrize("name", sorted(QUERY_CLASSES))
    def test_reset_clears_state(self, name, payload_trace_small):
        query = make_query(name)
        batch = next(payload_trace_small.batches(0.1))
        query.process(batch, 1.0)
        query.reset()
        assert query.meter.pending == 0.0


class TestCounterQuery:
    def test_exact_counts(self):
        query = make_query("counter")
        batch = make_batch(n=120)
        query.process(batch, 1.0)
        result = query.interval_result()
        assert result["packets"] == 120
        assert result["bytes"] == batch.byte_count

    def test_sampling_scaling(self):
        query = make_query("counter")
        batch = make_batch(n=100)
        query.process(batch, sampling_rate=0.5)
        result = query.interval_result()
        assert result["packets"] == pytest.approx(200)

    def test_interval_reset(self):
        query = make_query("counter")
        query.process(make_batch(n=50), 1.0)
        query.interval_result()
        assert query.interval_result()["packets"] == 0


class TestFlowsQuery:
    def test_counts_distinct_flows(self):
        query = make_query("flows")
        batch = make_batch(n=400, seed=3, n_hosts=15)
        query.process(batch, 1.0)
        result = query.interval_result()
        true_flows = len(np.unique(batch.flow_keys()))
        assert result["flows"] == pytest.approx(true_flows, rel=0.01)

    def test_duplicate_packets_not_double_counted(self):
        query = make_query("flows")
        batch = make_batch(n=100, seed=4)
        query.process(batch, 1.0)
        query.process(batch, 1.0)
        result = query.interval_result()
        assert result["flows"] == len(np.unique(batch.flow_keys()))

    def test_uses_flow_sampling(self):
        assert make_query("flows").sampling_method == SAMPLING_FLOW


class TestTopKQuery:
    def test_ranking_matches_truth(self):
        query = make_query("top-k")
        batch = make_batch(n=800, seed=6, n_hosts=12)
        query.process(batch, 1.0)
        result = query.interval_result()
        volumes = {}
        for dst, size in zip(batch.dst_ip, batch.size):
            volumes[int(dst)] = volumes.get(int(dst), 0) + int(size)
        true_top = sorted(volumes, key=lambda d: (-volumes[d], d))[:10]
        assert result["ranking"] == true_top

    def test_misranked_pairs_zero_for_identical(self):
        query = make_query("top-k")
        batch = make_batch(n=500, seed=7)
        query.process(batch, 1.0)
        result = query.interval_result()
        assert metrics.top_k_misranked_pairs(result, result) == 0


class TestHighWatermarkAndApplication:
    def test_watermark_is_max(self):
        query = make_query("high-watermark")
        query.process(make_batch(n=50, seed=1), 1.0)
        query.process(make_batch(n=200, seed=2), 1.0)
        big = make_batch(n=200, seed=2)
        result = query.interval_result()
        assert result["watermark_bytes"] >= big.byte_count * 0.99

    def test_application_classification_total(self):
        query = make_query("application")
        batch = make_batch(n=300, seed=8)
        query.process(batch, 1.0)
        result = query.interval_result()
        assert sum(result["packets_by_app"].values()) == pytest.approx(300)


class TestPatternSearch:
    def test_boyer_moore_matches_find(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            haystack = bytes(rng.integers(97, 105, size=200, dtype=np.uint8))
            needle = bytes(rng.integers(97, 105, size=3, dtype=np.uint8))
            assert boyer_moore_horspool(haystack, needle) == haystack.find(needle)

    def test_bmh_edge_cases(self):
        assert boyer_moore_horspool(b"abc", b"") == 0
        assert boyer_moore_horspool(b"ab", b"abc") == -1
        assert boyer_moore_horspool(b"hello world", b"world") == 6

    def test_counts_matches(self):
        query = make_query("pattern-search")
        payloads = [b"nothing here", b"xx" + query.pattern + b"yy", b"zzz"]
        batch = make_batch(n=3, payloads=False)
        batch.payloads = payloads
        query.process(batch, 1.0)
        result = query.interval_result()
        assert result["matches"] == 1
        assert result["packets_scanned"] == 3


class TestP2PDetector:
    def _p2p_batch(self, n_handshake=2):
        from repro.traffic.generator import P2P_SIGNATURES
        batch = make_batch(n=6, payloads=True, seed=20)
        payloads = [b"x" * 40 for _ in range(6)]
        for i in range(n_handshake):
            payloads[i] = P2P_SIGNATURES[0] + b"rest"
        batch.payloads = payloads
        # Make all six packets belong to one flow.
        for column in ("src_ip", "dst_ip", "src_port", "dst_port", "proto"):
            arr = getattr(batch, column)
            arr[:] = arr[0]
        return batch

    def test_detects_flow_with_full_handshake(self):
        query = P2PDetectorQuery()
        query.process(self._p2p_batch(n_handshake=2), 1.0)
        result = query.interval_result()
        assert result["p2p_flow_count"] == 1

    def test_misses_flow_with_partial_handshake(self):
        query = P2PDetectorQuery()
        query.process(self._p2p_batch(n_handshake=1), 1.0)
        result = query.interval_result()
        assert result["p2p_flow_count"] == 0

    def test_custom_shedding_fraction(self):
        query = P2PDetectorQuery(custom_shedding=True)
        assert query.sampling_method == SAMPLING_CUSTOM
        batch = make_batch(n=500, seed=21, payloads=True)
        applied = query.shed_load(batch, target_fraction=0.5)
        assert 0.2 <= applied <= 0.8

    def test_selfish_variant_ignores_request(self):
        query = SelfishP2PDetectorQuery()
        batch = make_batch(n=300, seed=22, payloads=True)
        claimed = query.shed_load(batch, target_fraction=0.1)
        full_cost_query = SelfishP2PDetectorQuery()
        full_cost = full_cost_query.process(batch, 1.0)
        assert claimed == pytest.approx(0.1)
        assert query.consume_cycles() == pytest.approx(full_cost, rel=0.2)

    def test_buggy_variant_sheds_too_little(self):
        buggy = BuggyP2PDetectorQuery()
        honest = P2PDetectorQuery(custom_shedding=True)
        batch = make_batch(n=800, seed=23, payloads=True)
        applied_buggy = buggy.shed_load(batch, 0.25)
        applied_honest = honest.shed_load(batch, 0.25)
        assert applied_buggy > applied_honest

    def test_custom_shedding_disabled_by_default(self):
        query = P2PDetectorQuery()
        with pytest.raises(NotImplementedError):
            query.shed_load(make_batch(n=10, payloads=True), 0.5)


class TestMetrics:
    def test_relative_error(self):
        assert metrics.relative_error(90, 100) == pytest.approx(0.1)
        assert metrics.relative_error(0, 0) == 0.0
        assert metrics.relative_error(5, 0) == 1.0

    def test_counter_error_symmetric_components(self):
        result = {"packets": 90.0, "bytes": 100.0}
        reference = {"packets": 100.0, "bytes": 100.0}
        assert metrics.counter_error(result, reference) == pytest.approx(0.05)

    def test_application_error_weighted(self):
        reference = {"packets_by_app": {"http": 90, "dns": 10},
                     "bytes_by_app": {"http": 900, "dns": 100}}
        result = {"packets_by_app": {"http": 45, "dns": 10},
                  "bytes_by_app": {"http": 450, "dns": 100}}
        error = metrics.application_error(result, reference)
        assert 0.4 <= error <= 0.5

    def test_autofocus_error_overlap(self):
        reference = {"clusters": [(1, 8), (2, 16)]}
        assert metrics.autofocus_error({"clusters": [(1, 8), (2, 16)]},
                                       reference) == 0.0
        assert metrics.autofocus_error({"clusters": []}, reference) == 1.0

    def test_p2p_error_count_based(self):
        reference = {"p2p_flow_count": 100.0}
        assert metrics.p2p_detector_error({"p2p_flow_count": 100.0},
                                          reference) == 0.0
        assert metrics.p2p_detector_error({"p2p_flow_count": 50.0},
                                          reference) == pytest.approx(0.5)

    def test_query_error_dispatch_with_suffix(self):
        assert metrics.query_error("counter-3", {"packets": 1, "bytes": 1},
                                   {"packets": 1, "bytes": 1}) == 0.0
        with pytest.raises(KeyError):
            metrics.query_error("unknown-query", {}, {})

    def test_accuracy_degrades_with_packet_sampling(self, payload_trace_small):
        """End-to-end: stronger sampling should not improve accuracy."""
        from repro.experiments.runner import accuracy_vs_sampling_rate
        curve = accuracy_vs_sampling_rate("counter", payload_trace_small,
                                          rates=(0.2, 1.0))
        assert curve[1.0] >= curve[0.2] - 0.02
        assert curve[1.0] > 0.99
