"""Shared fixtures and Hypothesis profiles for the test suite."""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.monitor.packet import Batch
from repro.traffic import TrafficProfile, generate_trace

# Hypothesis profiles: the default keeps the suite fast on every push; the
# nightly CI schedule runs the same properties much harder
# (HYPOTHESIS_PROFILE=ci-nightly).  Property tests must not pin
# ``max_examples`` in their own ``@settings`` or the profile cannot reach
# them.
settings.register_profile("default", max_examples=50, deadline=None)
settings.register_profile(
    "ci-nightly", max_examples=400, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


def make_batch(n=100, seed=0, start_ts=0.0, time_bin=0.1, payloads=False,
               n_hosts=20):
    """Small synthetic batch with a controllable number of distinct hosts."""
    rng = np.random.default_rng(seed)
    src = rng.integers(1, n_hosts + 1, size=n).astype(np.uint32)
    dst = rng.integers(1000, 1000 + n_hosts, size=n).astype(np.uint32)
    batch = Batch(
        ts=start_ts + np.sort(rng.uniform(0, time_bin, size=n)),
        src_ip=src,
        dst_ip=dst,
        src_port=rng.integers(1024, 65535, size=n).astype(np.uint16),
        dst_port=rng.choice([80, 443, 53, 6881], size=n).astype(np.uint16),
        proto=np.full(n, 6, dtype=np.uint8),
        size=rng.integers(40, 1500, size=n).astype(np.uint32),
        payloads=[bytes(rng.integers(32, 127, size=50, dtype=np.uint8))
                  for _ in range(n)] if payloads else None,
        time_bin=time_bin,
        start_ts=start_ts,
    )
    return batch


@pytest.fixture
def small_batch():
    return make_batch(n=200, seed=1)


@pytest.fixture(scope="session")
def small_trace():
    """A short header-only trace shared by many tests."""
    profile = TrafficProfile(duration=4.0, flow_arrival_rate=150.0,
                             with_payloads=False, name="test-header")
    return generate_trace(profile, seed=3)


@pytest.fixture(scope="session")
def payload_trace_small():
    """A short full-payload trace shared by payload-query tests."""
    profile = TrafficProfile(duration=4.0, flow_arrival_rate=120.0,
                             with_payloads=True, name="test-payload")
    return generate_trace(profile, seed=4)
