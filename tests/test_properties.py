"""Property-based tests with seeded random generators.

Three families of invariants the load shedding scheme relies on:

* *Sampler unbiasedness* — packet and flow sampling keep a fraction of the
  traffic equal to the sampling rate in expectation, and scaling additive
  statistics by ``1 / rate`` recovers the unsampled value (Section 4.2).
* *Flow integrity* — flowwise sampling is all-or-nothing per 5-tuple flow:
  a sampled batch never contains a strict subset of a flow's packets.
* *Distinct-count error bounds* — the multi-resolution bitmap estimate stays
  within a small relative error of exact counting across four decades of
  cardinality (Section 3.2.1 dimensioning).

Everything is driven by seeded generators, so the "random" trials are
reproducible and the tolerances can be tight without flakiness.
"""

import numpy as np
import pytest

from repro.core.distinct import ExactDistinctCounter, MultiResolutionBitmap
from repro.core.sampling import FlowSampler, PacketSampler, scale_estimate
from tests.conftest import make_batch


def _flow_counts(batch):
    """Packet count per 5-tuple flow of a batch."""
    keys, counts = np.unique(batch.flow_keys(), return_counts=True)
    return dict(zip(keys.tolist(), counts.tolist()))


class TestPacketSamplerUnbiasedness:
    @pytest.mark.parametrize("rate", [0.1, 0.3, 0.5, 0.8])
    def test_kept_fraction_matches_rate(self, rate):
        n, trials = 400, 60
        sampler = PacketSampler(rng=np.random.default_rng(1234))
        batch = make_batch(n=n, seed=7)
        kept = sum(len(sampler.sample(batch, rate)) for _ in range(trials))
        total = n * trials
        # Binomial: sigma = sqrt(rate * (1 - rate) / total); allow 5 sigma.
        sigma = np.sqrt(rate * (1.0 - rate) / total)
        assert abs(kept / total - rate) < 5.0 * sigma

    @pytest.mark.parametrize("rate", [0.2, 0.6])
    def test_scaled_count_estimate_unbiased(self, rate):
        n, trials = 300, 80
        sampler = PacketSampler(rng=np.random.default_rng(99))
        batch = make_batch(n=n, seed=8)
        estimates = [scale_estimate(len(sampler.sample(batch, rate)), rate)
                     for _ in range(trials)]
        sigma = np.sqrt(n * (1.0 - rate) / rate / trials)
        assert abs(float(np.mean(estimates)) - n) < 5.0 * sigma

    def test_degenerate_rates(self):
        sampler = PacketSampler(rng=np.random.default_rng(0))
        batch = make_batch(n=100, seed=9)
        assert len(sampler.sample(batch, 1.0)) == 100
        assert len(sampler.sample(batch, 0.0)) == 0
        with pytest.raises(ValueError):
            sampler.sample(batch, float("nan"))


class TestFlowSamplerIntegrity:
    @pytest.mark.parametrize("rate", [0.2, 0.5, 0.8])
    def test_flows_kept_whole_or_not_at_all(self, rate):
        # Few hosts => many multi-packet flows, the interesting case.
        batch = make_batch(n=600, seed=10, n_hosts=12)
        sampler = FlowSampler(rng=np.random.default_rng(55))
        sampled = sampler.sample(batch, rate)
        original = _flow_counts(batch)
        kept = _flow_counts(sampled)
        for flow, count in kept.items():
            assert count == original[flow], \
                "flowwise sampling must never split a flow"

    def test_kept_flow_fraction_matches_rate(self):
        rate, trials = 0.5, 120
        batch = make_batch(n=500, seed=11, n_hosts=15)
        n_flows = len(_flow_counts(batch))
        rng = np.random.default_rng(77)
        kept_flows = 0
        for _ in range(trials):
            # A fresh sampler each trial redraws the H3 hash function, so
            # the per-flow keep event is resampled (2-universality).
            sampler = FlowSampler(rng=rng)
            kept_flows += len(_flow_counts(sampler.sample(batch, rate)))
        total = n_flows * trials
        sigma = np.sqrt(rate * (1.0 - rate) / total)
        assert abs(kept_flows / total - rate) < 5.0 * sigma

    def test_same_seed_same_selection(self):
        batch = make_batch(n=300, seed=12, n_hosts=10)
        first = FlowSampler(rng=np.random.default_rng(5)).sample(batch, 0.4)
        second = FlowSampler(rng=np.random.default_rng(5)).sample(batch, 0.4)
        assert np.array_equal(first.ts, second.ts)
        assert np.array_equal(first.src_ip, second.src_ip)

    def test_hash_renewed_across_measurement_intervals(self):
        batch1 = make_batch(n=400, seed=13, n_hosts=10, start_ts=0.0)
        batch2 = make_batch(n=400, seed=13, n_hosts=10, start_ts=1.5)
        sampler = FlowSampler(rng=np.random.default_rng(21),
                              measurement_interval=1.0)
        kept1 = set(_flow_counts(sampler.sample(batch1, 0.5)))
        kept2 = set(_flow_counts(sampler.sample(batch2, 0.5)))
        # Same packet content, later interval: the hash must differ, so the
        # selected flow set should not be systematically identical.
        assert kept1 != kept2


class TestBitmapErrorBounds:
    @pytest.mark.parametrize("cardinality", [100, 1000, 20000, 100000])
    def test_relative_error_bounded(self, cardinality):
        errors = []
        for seed in range(5):
            rng = np.random.default_rng(1000 + seed)
            hashes = rng.integers(0, 2 ** 64, size=cardinality,
                                  dtype=np.uint64)
            exact = ExactDistinctCounter()
            exact.add_hashes(hashes)
            bitmap = MultiResolutionBitmap()
            bitmap.add_hashes(hashes)
            truth = exact.estimate()
            errors.append(abs(bitmap.estimate() - truth) / truth)
        # The default dimensioning (8 x 4096 bits) keeps the error around 1%
        # (Section 3.2.1); 5%/10% bands leave room without losing meaning.
        assert float(np.mean(errors)) < 0.05
        assert float(np.max(errors)) < 0.10

    def test_merge_matches_union(self):
        rng = np.random.default_rng(42)
        a = rng.integers(0, 2 ** 64, size=5000, dtype=np.uint64)
        b = rng.integers(0, 2 ** 64, size=5000, dtype=np.uint64)
        merged = MultiResolutionBitmap()
        merged.add_hashes(a)
        other = MultiResolutionBitmap()
        other.add_hashes(b)
        merged.merge(other)
        combined = MultiResolutionBitmap()
        combined.add_hashes(np.concatenate([a, b]))
        assert merged.estimate() == pytest.approx(combined.estimate())

    def test_new_estimate_consistent_with_union(self):
        rng = np.random.default_rng(43)
        base = rng.integers(0, 2 ** 64, size=3000, dtype=np.uint64)
        fresh = rng.integers(0, 2 ** 64, size=800, dtype=np.uint64)
        for make in (ExactDistinctCounter, MultiResolutionBitmap):
            interval = make()
            interval.add_hashes(base)
            batch = make()
            batch.add_hashes(fresh)
            before_interval = interval.estimate()
            before_batch = batch.estimate()
            union = interval.copy()
            union.merge(batch)
            expected = max(0.0, union.estimate() - interval.estimate())
            assert interval.new_estimate(batch) == pytest.approx(expected)
            # new_estimate must not mutate either side.
            assert interval.estimate() == before_interval
            assert batch.estimate() == before_batch

    def test_exact_counter_is_ground_truth(self):
        rng = np.random.default_rng(44)
        values = rng.integers(0, 500, size=3000, dtype=np.uint64)
        counter = ExactDistinctCounter()
        counter.add_hashes(values)
        assert counter.estimate() == len(np.unique(values))
