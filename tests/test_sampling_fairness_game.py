"""Tests for sampling mechanisms, fairness strategies and the allocation game."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import game
from repro.core.fairness import (QueryDemand, eq_srates, get_strategy,
                                 mmfs_cpu, mmfs_pkt)
from repro.core.sampling import FlowSampler, PacketSampler, scale_estimate
from repro.core.hashing import combine_columns
from tests.conftest import make_batch


class TestPacketSampler:
    def test_rate_one_keeps_everything(self, small_batch):
        sampler = PacketSampler(np.random.default_rng(0))
        assert len(sampler.sample(small_batch, 1.0)) == len(small_batch)

    def test_rate_zero_keeps_nothing(self, small_batch):
        sampler = PacketSampler(np.random.default_rng(0))
        assert len(sampler.sample(small_batch, 0.0)) == 0

    def test_expected_fraction(self):
        batch = make_batch(n=5000, seed=3)
        sampler = PacketSampler(np.random.default_rng(1))
        kept = len(sampler.sample(batch, 0.3))
        assert abs(kept / 5000 - 0.3) < 0.05

    def test_invalid_rate(self, small_batch):
        sampler = PacketSampler()
        with pytest.raises(ValueError):
            sampler.sample(small_batch, float("nan"))

    def test_cost_positive(self, small_batch):
        assert PacketSampler().cost(small_batch) > 0


class TestFlowSampler:
    def test_flow_atomicity(self):
        batch = make_batch(n=2000, seed=5, n_hosts=30)
        sampler = FlowSampler(np.random.default_rng(2))
        sampled = sampler.sample(batch, 0.5)
        kept_keys = set(combine_columns(sampled.columns(
            ("src_ip", "dst_ip", "src_port", "dst_port", "proto"))).tolist())
        all_keys = combine_columns(batch.columns(
            ("src_ip", "dst_ip", "src_port", "dst_port", "proto")))
        # Every packet of a kept flow must have been kept.
        expected = sum(1 for key in all_keys if int(key) in kept_keys)
        assert expected == len(sampled)

    def test_expected_flow_fraction(self):
        batch = make_batch(n=4000, seed=6, n_hosts=60)
        sampler = FlowSampler(np.random.default_rng(3))
        sampled = sampler.sample(batch, 0.4)
        def flows(b):
            return len(np.unique(combine_columns(b.columns(
                ("src_ip", "dst_ip", "src_port", "dst_port", "proto")))))
        fraction = flows(sampled) / flows(batch)
        assert abs(fraction - 0.4) < 0.12

    def test_hash_renewal_changes_selection(self):
        batch = make_batch(n=1000, seed=7, n_hosts=40)
        sampler = FlowSampler(np.random.default_rng(4))
        first = sampler.sample(batch, 0.5)
        sampler.renew_hash()
        second = sampler.sample(batch, 0.5)
        assert len(first) != len(second) or \
            not np.array_equal(first.src_ip, second.src_ip)


class TestScaleEstimate:
    def test_inverse_scaling(self):
        assert scale_estimate(50, 0.5) == 100.0
        assert scale_estimate(50, 1.0) == 50.0
        assert scale_estimate(50, 0.0) == 0.0

    @given(st.floats(min_value=0.01, max_value=1.0),
           st.floats(min_value=0.0, max_value=1e6))
    @settings(deadline=None)
    def test_scale_monotone(self, rate, value):
        assert scale_estimate(value, rate) >= value - 1e-9


def _demands():
    return [
        QueryDemand("cheap", 100.0, 0.1),
        QueryDemand("medium", 500.0, 0.2),
        QueryDemand("heavy", 1000.0, 0.3),
    ]


class TestEqSrates:
    def test_no_overload_full_rates(self):
        allocation = eq_srates(_demands(), capacity=10000.0)
        assert all(rate == 1.0 for rate in allocation.rates.values())

    def test_common_rate_under_overload(self):
        allocation = eq_srates(_demands(), capacity=800.0)
        active_rates = {r for n, r in allocation.rates.items()
                        if n not in allocation.disabled}
        assert len(active_rates) == 1
        assert allocation.total_cycles <= 800.0 + 1e-6

    def test_disables_constrained_queries(self):
        demands = [QueryDemand("strict", 1000.0, 0.9),
                   QueryDemand("lenient", 1000.0, 0.0)]
        allocation = eq_srates(demands, capacity=500.0)
        assert "strict" in allocation.disabled
        assert allocation.rates["lenient"] > 0

    def test_zero_capacity(self):
        allocation = eq_srates(_demands(), capacity=0.0)
        assert set(allocation.disabled) == {"cheap", "medium", "heavy"}


@pytest.mark.parametrize("strategy", [mmfs_cpu, mmfs_pkt])
class TestMaxMinStrategies:
    def test_feasible_allocation(self, strategy):
        allocation = strategy(_demands(), capacity=900.0)
        assert allocation.total_cycles <= 900.0 * (1 + 1e-6)
        for demand in _demands():
            rate = allocation.rates[demand.name]
            assert 0.0 <= rate <= 1.0
            if demand.name not in allocation.disabled:
                assert rate >= demand.min_sampling_rate - 1e-9

    def test_abundant_capacity_full_rates(self, strategy):
        allocation = strategy(_demands(), capacity=1e9)
        assert all(rate == pytest.approx(1.0)
                   for rate in allocation.rates.values())

    def test_largest_min_demand_disabled_first(self, strategy):
        demands = [QueryDemand("big", 1000.0, 0.9),
                   QueryDemand("small", 100.0, 0.5)]
        allocation = strategy(demands, capacity=200.0)
        assert "big" in allocation.disabled
        assert "small" not in allocation.disabled

    def test_zero_capacity_disables_all(self, strategy):
        allocation = strategy(_demands(), capacity=0.0)
        assert len(allocation.disabled) == 3


class TestStrategySemantics:
    def test_mmfs_pkt_equalises_rates(self):
        demands = [QueryDemand("heavy", 1000.0, 0.0),
                   QueryDemand("light", 10.0, 0.0)]
        allocation = mmfs_pkt(demands, capacity=505.0)
        assert allocation.rates["heavy"] == pytest.approx(
            allocation.rates["light"], rel=1e-3)

    def test_mmfs_cpu_equalises_cycles(self):
        demands = [QueryDemand("heavy", 1000.0, 0.0),
                   QueryDemand("light", 400.0, 0.0)]
        allocation = mmfs_cpu(demands, capacity=600.0)
        assert allocation.cycles["heavy"] == pytest.approx(
            allocation.cycles["light"], rel=1e-3)

    def test_mmfs_pkt_min_rate_floor_respected(self):
        demands = [QueryDemand("constrained", 1000.0, 0.8),
                   QueryDemand("free", 1000.0, 0.0)]
        allocation = mmfs_pkt(demands, capacity=1000.0)
        assert allocation.rates["constrained"] >= 0.8 - 1e-9

    def test_get_strategy(self):
        assert get_strategy("mmfs_pkt") is mmfs_pkt
        assert get_strategy(mmfs_cpu) is mmfs_cpu
        with pytest.raises(KeyError):
            get_strategy("nope")

    @given(st.lists(st.tuples(st.floats(min_value=1.0, max_value=1e4),
                              st.floats(min_value=0.0, max_value=1.0)),
                    min_size=1, max_size=8),
           st.floats(min_value=0.0, max_value=2e4))
    @settings(deadline=None)
    def test_allocations_always_feasible(self, specs, capacity):
        demands = [QueryDemand(f"q{i}", cycles, min_rate)
                   for i, (cycles, min_rate) in enumerate(specs)]
        for strategy in (eq_srates, mmfs_cpu, mmfs_pkt):
            allocation = strategy(demands, capacity)
            assert allocation.total_cycles <= capacity * (1 + 1e-6) + 1e-6
            for demand in demands:
                rate = allocation.rates[demand.name]
                assert -1e-9 <= rate <= 1.0 + 1e-9
                if demand.name not in allocation.disabled:
                    assert rate >= demand.min_sampling_rate - 1e-6


class TestGame:
    def test_equal_share_is_nash(self):
        profile = game.equilibrium_profile(3, 9.0)
        assert game.is_nash_equilibrium(profile, 9.0, grid=200)

    def test_greedy_profile_is_not_nash(self):
        assert not game.is_nash_equilibrium([9.0, 9.0, 9.0], 9.0, grid=200)

    def test_payoffs_disable_largest(self):
        payoffs = game.payoffs([2.0, 5.0, 6.0], capacity=10.0)
        assert payoffs[2] == 0.0           # largest demand disabled
        assert payoffs[0] > 2.0            # gets its demand plus spare
        assert payoffs[1] > 5.0

    def test_payoffs_negative_rejected(self):
        with pytest.raises(ValueError):
            game.payoffs([-1.0], 1.0)

    def test_best_response_dynamics_converges(self):
        final, rounds, converged = game.best_response_dynamics(
            [0.2, 0.35], capacity=1.0, grid=100, max_rounds=200)
        assert converged
        assert np.allclose(final, [0.5, 0.5], atol=0.02)

    def test_aggregate_utility_equilibrium_is_greedy(self):
        profile = game.aggregate_utility_equilibrium(4, 8.0)
        assert np.allclose(profile, 8.0)
