"""Integration tests: the monitoring system end to end."""

import numpy as np
import pytest

from repro.core.cycles import CycleBudget
from repro.monitor.capture import CaptureBuffer
from repro.monitor.system import MonitoringSystem
from repro.queries import P2PDetectorQuery, SelfishP2PDetectorQuery, make_query
from repro.experiments import runner


QUERY_SET = ("counter", "flows", "top-k", "application")


@pytest.fixture(scope="module")
def calibrated(small_trace_module):
    capacity, reference = runner.calibrate_capacity(QUERY_SET,
                                                    small_trace_module)
    return capacity, reference


@pytest.fixture(scope="module")
def small_trace_module():
    from repro.traffic import TrafficProfile, generate_trace
    profile = TrafficProfile(duration=4.0, flow_arrival_rate=150.0,
                             name="integration")
    return generate_trace(profile, seed=11)


class TestCaptureBuffer:
    def test_infinite_buffer_never_drops(self):
        buffer = CaptureBuffer(None)
        status = buffer.status(1e18)
        assert not status.dropping and status.occupation == 0.0

    def test_finite_buffer_fills(self):
        buffer = CaptureBuffer(0.1, cycles_per_second=1e6)
        assert buffer.capacity_cycles == pytest.approx(1e5)
        assert buffer.status(5e4).occupation == pytest.approx(0.5)
        assert buffer.status(2e5).dropping

    def test_drop_accounting(self):
        buffer = CaptureBuffer(0.1)
        buffer.record_drop(500)
        assert buffer.dropped_packets == 500
        assert buffer.dropped_batches == 1


class TestModes:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            MonitoringSystem(mode="warp-speed")

    def test_mode_alias(self):
        assert MonitoringSystem(mode="no_lshed").mode == "original"

    def test_duplicate_query_rejected(self):
        system = MonitoringSystem([make_query("counter")])
        with pytest.raises(ValueError):
            system.add_query(make_query("counter"))


class TestReferenceExecution:
    def test_reference_never_drops(self, small_trace_module):
        system = MonitoringSystem([make_query(n) for n in QUERY_SET],
                                  mode="reference",
                                  budget=CycleBudget(1e6))  # tiny capacity
        result = system.run(small_trace_module)
        assert result.dropped_packets == 0
        assert result.mean_sampling_rate() == 1.0

    def test_interval_alignment_across_runs(self, small_trace_module):
        system = MonitoringSystem([make_query("counter")], mode="reference")
        first = system.run(small_trace_module)
        second = system.run(small_trace_module)
        assert len(first.query_logs["counter"]) == \
            len(second.query_logs["counter"])
        assert first.query_logs["counter"].results == \
            second.query_logs["counter"].results

    def test_counter_totals_match_trace(self, small_trace_module):
        system = MonitoringSystem([make_query("counter")], mode="reference")
        result = system.run(small_trace_module)
        total = sum(r["packets"] for r in result.query_logs["counter"].results)
        assert total == pytest.approx(len(small_trace_module))


class TestPredictiveExecution:
    def test_no_overload_no_shedding(self, small_trace_module, calibrated):
        capacity, _ = calibrated
        result = runner.run_system(QUERY_SET, small_trace_module,
                                   capacity * 2.0, mode="predictive")
        assert result.dropped_packets == 0
        assert result.mean_sampling_rate() > 0.98

    def test_overload_triggers_shedding_not_drops(self, small_trace_module,
                                                  calibrated):
        capacity, reference = calibrated
        result = runner.run_system(QUERY_SET, small_trace_module,
                                   capacity * 0.5, mode="predictive")
        assert result.mean_sampling_rate() < 0.9
        assert result.drop_fraction < 0.02
        # CPU usage stays close to the reduced budget.
        per_bin = result.cycles_per_bin()
        budget = capacity * 0.5 * runner.TIME_BIN
        assert np.quantile(per_bin, 0.9) < budget * 1.5

    def test_predictive_beats_original_accuracy(self, small_trace_module,
                                                calibrated):
        capacity, reference = calibrated
        predictive = runner.run_system(QUERY_SET, small_trace_module,
                                       capacity * 0.5, mode="predictive")
        original = runner.run_system(QUERY_SET, small_trace_module,
                                     capacity * 0.5, mode="original")
        pred_err = runner.error_by_query(predictive, reference)
        orig_err = runner.error_by_query(original, reference)
        assert original.dropped_packets > 0
        assert predictive.dropped_packets < original.dropped_packets
        assert pred_err["counter"] < orig_err["counter"]

    def test_strategies_respect_min_rates(self, small_trace_module, calibrated):
        capacity, _ = calibrated
        for strategy in ("eq_srates", "mmfs_cpu", "mmfs_pkt"):
            result = runner.run_system(QUERY_SET, small_trace_module,
                                       capacity * 0.4, mode="predictive",
                                       strategy=strategy)
            for name in QUERY_SET:
                rates = result.rate_series(name)
                min_rate = make_query(name).minimum_sampling_rate
                active = rates[rates > 0]
                if len(active):
                    assert active.min() >= min_rate - 1e-6

    def test_reactive_mode_sheds(self, small_trace_module, calibrated):
        capacity, _ = calibrated
        result = runner.run_system(QUERY_SET, small_trace_module,
                                   capacity * 0.5, mode="reactive")
        assert result.mean_sampling_rate() < 1.0

    def test_query_arrival(self, small_trace_module, calibrated):
        capacity, _ = calibrated
        system = MonitoringSystem([make_query("counter")], mode="predictive",
                                  budget=CycleBudget(capacity),
                                  **runner.FEATURE_CONFIG)
        system.add_query(make_query("flows"), start_time=2.0)
        result = system.run(small_trace_module)
        flow_rates = result.rate_series("flows")
        early_bins = [record for record in result.bins if record.start_ts < 1.9]
        assert all("flows" not in record.rates for record in early_bins)
        assert len(result.query_logs["flows"]) > 0


class TestQueryLifecycle:
    def test_remove_query_clears_enforcement_state(self):
        system = MonitoringSystem([make_query("counter")], mode="predictive")
        name = "p2p-detector"
        system.add_query(make_query(name))
        # Simulate a history of violations for the custom query.
        for bin_index in range(3):
            system.enforcer.record(name, expected_cycles=100.0,
                                   actual_cycles=1000.0, bin_index=bin_index)
        assert system.enforcer.state(name).total_violations > 0
        system.remove_query(name)
        # A same-named query added later must start with a clean slate.
        system.add_query(make_query(name))
        state = system.enforcer.state(name)
        assert state.total_violations == 0
        assert state.correction == 1.0
        assert state.disabled_until_bin == -1

    def test_remove_query_clears_controller_state(self):
        system = MonitoringSystem([make_query("counter"),
                                   make_query("flows")], mode="predictive")
        system.controller.last_rates.update({"counter": 0.4, "flows": 0.6})
        system.remove_query("flows")
        assert "flows" not in system.controller.last_rates
        assert "counter" in system.controller.last_rates

    def test_meter_reseed_is_deterministic(self):
        from repro.core.cycles import CycleMeter
        meter = CycleMeter(noise_std=0.2)
        samples = []
        for _ in range(2):
            meter.reseed(42)
            meter.charge("packet", 100)
            samples.append(meter.consume())
        assert samples[0] == samples[1]

    def test_add_query_seeds_meter_via_public_api(self, small_trace_module):
        # Two same-seeded systems with measurement noise must agree exactly,
        # which only holds if every per-query RNG is seeded deterministically.
        results = []
        for _ in range(2):
            system = MonitoringSystem([make_query("counter")],
                                      mode="reference",
                                      measurement_noise=0.1, seed=3)
            result = system.run(small_trace_module)
            results.append(result.series("query_cycles"))
        assert np.array_equal(results[0], results[1])


class TestCustomSheddingIntegration:
    def test_custom_query_polices_selfish(self, payload_trace_small):
        queries = [make_query("counter"), make_query("flows"),
                   SelfishP2PDetectorQuery()]
        # Calibrate on an equivalent honest query set so the allocation grants
        # the offender real cycles; the enforcer (not starvation) must act.
        capacity, reference = runner.calibrate_capacity(
            ["counter", "flows", "p2p-detector"], payload_trace_small)
        system = MonitoringSystem(queries, mode="predictive",
                                  strategy="mmfs_pkt",
                                  budget=CycleBudget(capacity * 0.7),
                                  **runner.FEATURE_CONFIG)
        result = system.run(payload_trace_small)
        state = system.enforcer.state("p2p-detector-selfish")
        assert state.total_violations > 0
        assert state.total_disables >= 1
        # The rest of the system keeps running without uncontrolled losses.
        assert result.drop_fraction < 0.1

    def test_cooperative_custom_query_not_disabled(self, payload_trace_small):
        queries = [make_query("counter"),
                   P2PDetectorQuery(custom_shedding=True)]
        capacity, _ = runner.calibrate_capacity(
            [("p2p-detector", {"custom_shedding": True}), "counter"],
            payload_trace_small)
        system = MonitoringSystem(queries, mode="predictive",
                                  strategy="mmfs_pkt",
                                  budget=CycleBudget(capacity * 0.6),
                                  **runner.FEATURE_CONFIG)
        system.run(payload_trace_small)
        assert system.enforcer.state("p2p-detector").total_disables == 0


class TestExecutionResult:
    def test_series_and_rates(self, small_trace_module, calibrated):
        capacity, _ = calibrated
        result = runner.run_system(QUERY_SET, small_trace_module,
                                   capacity * 0.6, mode="predictive")
        assert len(result.series("query_cycles")) == len(result.bins)
        assert len(result.rate_series("counter")) == len(result.bins)
        assert result.total_packets == len(small_trace_module)
