"""Tests for the declarative query-spec layer.

Covers :class:`repro.queries.QuerySpec` (parsing, hashing, round-trips,
filter expressions), the ``queries`` field of :class:`repro.SystemConfig`
(validation + ``to_dict``/``from_dict`` round-trip), the spec-driven build
paths (``config.build``, ``ShardedSystem``, ``runner.run_system``), the
scenario-matrix integration and the ``python -m repro.replay --queries``
resolution including JSON spec files.
"""

import json

import numpy as np
import pytest

from repro import replay
from repro.experiments import parallel, runner, scenarios
from repro.monitor.config import SystemConfig
from repro.monitor.packet import PROTO_TCP
from repro.queries import (QuerySpec, build_queries, load_query_specs,
                           parse_filter, parse_query_specs)
from tests.conftest import make_batch


class TestQuerySpec:
    def test_parse_shapes(self):
        name = QuerySpec.parse("flows")
        pair = QuerySpec.parse(("top-k", {"k": 3}))
        mapping = QuerySpec.parse({"kind": "counter", "filter": "tcp"})
        assert name.kind == "flows" and name.arguments == {}
        assert pair.kind == "top-k" and pair.arguments == {"k": 3}
        assert mapping.filter == "tcp"
        assert QuerySpec.parse(name) is name

    def test_specs_are_hashable_and_canonical(self):
        first = QuerySpec("top-k", {"k": 5, "name": "t"})
        second = QuerySpec("top-k", {"name": "t", "k": 5})
        assert first == second and hash(first) == hash(second)
        assert {first, second} == {first}

    def test_unknown_kind_fails_eagerly(self):
        with pytest.raises(KeyError, match="unknown query kind"):
            QuerySpec("nope")

    def test_bad_filter_fails_eagerly(self):
        with pytest.raises(ValueError, match="filter expression"):
            QuerySpec("counter", filter="bogus:1")

    def test_nested_container_kwargs_round_trip(self):
        """Dict- and list-valued kwargs must survive canonicalisation."""
        spec = QuerySpec("top-k", {"k": 5, "name": "t",
                                   "extras": {"a": 1, "b": [2, 3]}})
        assert spec.arguments == {"k": 5, "name": "t",
                                  "extras": {"a": 1, "b": [2, 3]}}
        assert QuerySpec.from_dict(spec.to_dict()) == spec
        assert hash(spec) == hash(QuerySpec.from_dict(spec.to_dict()))

    def test_dict_round_trip(self):
        spec = QuerySpec("pattern-search", {"name": "sig"}, filter="port:80")
        data = spec.to_dict()
        assert json.loads(json.dumps(data)) == data  # JSON-serialisable
        assert QuerySpec.from_dict(data) == spec
        with pytest.raises(ValueError, match="unknown QuerySpec fields"):
            QuerySpec.from_dict({"kind": "counter", "oops": 1})

    def test_build_applies_kwargs_and_filter(self):
        spec = QuerySpec("top-k", {"k": 3, "name": "top-3"}, filter="tcp")
        query = spec.build()
        assert query.k == 3 and query.name == "top-3"
        batch = make_batch(n=50, seed=1)
        batch.proto[:25] = PROTO_TCP
        batch.proto[25:] = 17
        assert len(query.filter.apply(batch)) == 25

    def test_instance_name_prefers_explicit_name(self):
        assert QuerySpec("counter").instance_name == "counter"
        assert QuerySpec("counter",
                         {"name": "c2"}).instance_name == "c2"

    def test_parse_query_specs_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate query instance"):
            parse_query_specs(("counter", "counter"))
        specs = parse_query_specs(
            ("counter", {"kind": "counter", "kwargs": {"name": "c2"}}))
        assert [spec.instance_name for spec in specs] == ["counter", "c2"]

    def test_comma_string_form(self):
        specs = parse_query_specs("counter, flows ,top-k")
        assert [spec.kind for spec in specs] == ["counter", "flows", "top-k"]

    def test_build_queries_returns_fresh_instances(self):
        first = build_queries("counter,flows")
        second = build_queries("counter,flows")
        assert [q.name for q in first] == ["counter", "flows"]
        assert first[0] is not second[0]


class TestFilterExpressions:
    @pytest.mark.parametrize("expression", [
        "tcp", "udp", "proto:17", "port:80", "port:80:dst", "port:80:src",
        "subnet:0/0", "size>=100", "none",
    ])
    def test_expressions_build_filters(self, expression):
        packet_filter = parse_filter(expression)
        batch = make_batch(n=40, seed=2)
        mask = packet_filter(batch)
        assert mask.shape == (40,) and mask.dtype == bool

    def test_all_and_none_spec(self):
        assert parse_filter(None) is None
        assert parse_filter("all") is None
        assert parse_filter("") is None

    def test_port_filter_semantics(self):
        batch = make_batch(n=30, seed=3)
        batch.dst_port[:] = 81
        batch.dst_port[:10] = 80
        assert int(parse_filter("port:80:dst")(batch).sum()) == 10


class TestSystemConfigQueries:
    def test_config_canonicalises_specs(self):
        config = SystemConfig(queries=("counter", {"kind": "top-k",
                                                   "kwargs": {"k": 4}}))
        assert all(isinstance(spec, QuerySpec) for spec in config.queries)
        assert config.queries[1].arguments == {"k": 4}

    def test_config_round_trips_queries(self):
        config = SystemConfig(
            mode="predictive",
            queries=("flows",
                     {"kind": "top-k", "kwargs": {"k": 4, "name": "t4"}},
                     {"kind": "counter", "kwargs": {"name": "ct"},
                      "filter": "tcp"}))
        data = config.to_dict()
        assert json.loads(json.dumps(data))  # JSON-serialisable
        rebuilt = SystemConfig.from_dict(data)
        assert rebuilt == config
        assert rebuilt.queries == config.queries

    def test_config_without_queries_round_trips_unchanged(self):
        config = SystemConfig()
        assert config.queries is None
        assert SystemConfig.from_dict(config.to_dict()) == config

    def test_invalid_query_kind_fails_at_construction(self):
        with pytest.raises(KeyError, match="unknown query kind"):
            SystemConfig(queries=("not-a-query",))

    def test_build_uses_declarative_queries(self):
        config = runner.system_config(queries=("counter", "flows"))
        system = config.build()
        assert sorted(system.query_names) == ["counter", "flows"]

    def test_explicit_instances_override_declarative_queries(self):
        from repro.queries import make_query
        config = runner.system_config(queries=("counter", "flows"))
        system = config.build([make_query("trace")])
        assert system.query_names == ["trace"]

    def test_build_queries_returns_none_without_specs(self):
        assert SystemConfig().build_queries() is None


class TestSpecDrivenExecution:
    @pytest.fixture(scope="class")
    def trace(self):
        return scenarios.build_workload("cesca", seed=7, scale=0.2)

    def test_run_system_from_config_queries(self, trace):
        config = runner.system_config(
            queries=("counter",
                     {"kind": "top-k", "kwargs": {"k": 5, "name": "top-5"}}))
        result = runner.run_system(None, trace, 5e7, config=config)
        assert sorted(result.query_logs) == ["counter", "top-5"]

    def test_run_system_requires_some_query_source(self, trace):
        with pytest.raises(ValueError, match="query_names or a config"):
            runner.run_system(None, trace, 5e7)

    def test_run_system_accepts_spec_sequences(self, trace):
        result = runner.run_system(
            ({"kind": "counter", "kwargs": {"name": "c-tcp"},
              "filter": "tcp"}, "flows"), trace, 5e7)
        assert sorted(result.query_logs) == ["c-tcp", "flows"]

    def test_spec_path_matches_name_path_bit_for_bit(self, trace):
        """Building from specs must not perturb execution results."""
        by_name = runner.run_system(("counter", "flows"), trace, 4e7,
                                    config=runner.system_config(seed=3))
        by_spec = runner.run_system(
            None, trace, 4e7,
            config=runner.system_config(seed=3,
                                        queries=("counter", "flows")))
        assert np.array_equal(by_name.series("query_cycles"),
                              by_spec.series("query_cycles"))
        for name, log in by_name.query_logs.items():
            assert by_spec.query_logs[name].results == log.results

    def test_sharded_system_from_config_queries(self, trace):
        from repro.monitor.sharding import ShardedSystem
        config = runner.system_config(cycles_per_second=5e7, num_shards=2,
                                      queries=("counter", "flows"))
        result = ShardedSystem(config=config).run(trace)
        assert sorted(result.query_logs) == ["counter", "flows"]

    def test_sharded_system_requires_some_query_source(self):
        from repro.monitor.sharding import ShardedSystem
        with pytest.raises(ValueError, match="query_factory"):
            ShardedSystem(config=runner.system_config(num_shards=2))


class TestScenarioMatrixQueries:
    def test_matrix_accepts_named_mix(self):
        matrix = parallel.ScenarioMatrix(queries="rankings")
        kinds = [QuerySpec.parse(spec).kind for spec in matrix.queries]
        assert kinds == ["top-k", "top-k", "super-sources", "autofocus"]

    def test_matrix_accepts_comma_names(self):
        matrix = parallel.ScenarioMatrix(queries="counter,flows")
        assert matrix.queries == ("counter", "flows")

    def test_matrix_rejects_bad_query_spec(self):
        with pytest.raises(KeyError, match="unknown query"):
            parallel.ScenarioMatrix(queries=("counter", "bogus"))

    def test_cells_carry_spec_query_sets_hashably(self):
        matrix = parallel.ScenarioMatrix(
            queries=("counter", QuerySpec("top-k", {"k": 3, "name": "t3"})))
        cell = matrix.cells()[0]
        assert hash(cell.group_key())  # grids group by query set
        config = cell.to_config()
        assert [spec.kind for spec in config.queries] == ["counter", "top-k"]

    def test_query_mix_lookup(self):
        assert scenarios.query_mix("validation-seven") == \
            scenarios.VALIDATION_SEVEN
        with pytest.raises(KeyError, match="unknown query mix"):
            scenarios.query_mix("bogus")

    def test_all_mixes_parse(self):
        for name, mix in scenarios.QUERY_MIXES.items():
            specs = parse_query_specs(mix)
            assert specs, name


class TestReplayQueriesFlag:
    def test_resolves_comma_names(self):
        specs = replay.resolve_query_specs("counter,flows")
        assert [spec.kind for spec in specs] == ["counter", "flows"]

    def test_resolves_named_mix(self):
        specs = replay.resolve_query_specs("protocol-split")
        assert [spec.instance_name for spec in specs] == \
            ["counter-all", "counter-tcp", "counter-udp", "flows"]

    def test_mix_name_wins_over_same_named_file(self, tmp_path, monkeypatch):
        """A stray file in cwd must not shadow a documented mix name."""
        (tmp_path / "rankings").write_text("not json")
        monkeypatch.chdir(tmp_path)
        specs = replay.resolve_query_specs("rankings")
        assert [spec.kind for spec in specs] == \
            ["top-k", "top-k", "super-sources", "autofocus"]

    def test_run_system_rejects_missing_trace_or_capacity(self):
        with pytest.raises(ValueError, match="requires a trace"):
            runner.run_system(("counter",))

    def test_resolves_json_file(self, tmp_path):
        path = tmp_path / "mix.json"
        path.write_text(json.dumps({"queries": [
            "flows", {"kind": "top-k", "kwargs": {"k": 2, "name": "t2"}}]}))
        specs = replay.resolve_query_specs(str(path))
        assert [spec.instance_name for spec in specs] == ["flows", "t2"]

    def test_json_file_rejects_bad_shape(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"nope": []}))
        with pytest.raises(ValueError, match="queries"):
            load_query_specs(path)

    def test_replay_end_to_end_with_spec_file(self, tmp_path, capsys):
        from repro.traffic import TrafficProfile, generate_trace, save_trace
        trace = generate_trace(
            TrafficProfile(duration=1.0, flow_arrival_rate=80.0,
                           with_payloads=False, name="replayspec"), seed=9)
        trace_path = save_trace(trace, tmp_path / "trace.npz")
        spec_path = tmp_path / "mix.json"
        spec_path.write_text(json.dumps([
            "flows", {"kind": "counter", "kwargs": {"name": "ct"},
                      "filter": "tcp"}]))
        code = replay.main([str(trace_path), "--queries", str(spec_path),
                            "--cycles-per-second", "5e7", "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["outcome"]["intervals_by_query"] == \
            {"ct": 1, "flows": 1}

    def test_replay_end_to_end_with_names(self, tmp_path, capsys):
        from repro.traffic import TrafficProfile, generate_trace, save_trace
        trace = generate_trace(
            TrafficProfile(duration=1.0, flow_arrival_rate=80.0,
                           with_payloads=False, name="replaynames"), seed=9)
        trace_path = save_trace(trace, tmp_path / "trace.npz")
        code = replay.main([str(trace_path), "--queries", "flows,top-k",
                            "--cycles-per-second", "5e7", "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert sorted(summary["outcome"]["intervals_by_query"]) == \
            ["flows", "top-k"]

    def test_replay_reports_unknown_query(self, tmp_path, capsys):
        from repro.traffic import TrafficProfile, generate_trace, save_trace
        trace = generate_trace(
            TrafficProfile(duration=0.5, flow_arrival_rate=50.0,
                           with_payloads=False, name="replaybad"), seed=9)
        trace_path = save_trace(trace, tmp_path / "trace.npz")
        code = replay.main([str(trace_path), "--queries", "bogus"])
        assert code == 2
        assert "unknown query" in capsys.readouterr().err