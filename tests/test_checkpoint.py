"""Checkpoint/restore: bit-identical resume across modes and backends.

The contract under test: checkpoint a streaming session at bin ``k``,
restore it (same process, different backend, or from a file on disk),
feed it the remaining bins, and the final ``ExecutionResult`` is
bit-identical to the uninterrupted run's — per-bin accounting series,
interval boundaries and query results alike.  Pending (not yet applied)
reconfigurations are part of the state and fire at the restored
session's next bin, exactly as they would have.
"""

import pickle

import pytest

from repro.experiments import runner
from repro.monitor.sharding import ShardedSystem
from repro.monitor.workers import fork_start_available
from repro.queries import make_query
from repro.serve.checkpoint import (CHECKPOINT_FORMAT, capture,
                                    describe_checkpoint, load_checkpoint,
                                    restore_session, save_checkpoint)
from repro.testing import assert_results_identical

MODES = ("predictive", "reactive", "original", "reference")
QUERIES = "counter,flows"
CAPACITY = 2.0e7

needs_fork = pytest.mark.skipif(
    not fork_start_available(),
    reason="persistent shard workers prefer the fork start method")


def _config(mode, num_shards=1, **overrides):
    return runner.system_config(mode=mode, seed=5, queries=QUERIES,
                                cycles_per_second=CAPACITY,
                                num_shards=num_shards, **overrides)


def _open_session(config, n_workers=1, backend=None, name="ckpt"):
    if config.num_shards > 1:
        sharded = ShardedSystem(config=config, n_workers=n_workers,
                                respect_cores=False, backend=backend)
        return sharded.open_session(time_bin=0.1, name=name)
    return config.build().open_session(time_bin=0.1, name=name)


def _run_uninterrupted(config, bins):
    session = _open_session(config)
    for batch in bins:
        session.ingest(batch)
    return session.close()


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("num_shards", (1, 4))
def test_round_trip_bit_identical(small_trace, mode, num_shards):
    """Checkpoint at bin k, restore, finish: identical to uninterrupted."""
    config = _config(mode, num_shards=num_shards)
    bins = small_trace.batch_list(0.1)
    k = len(bins) // 2
    expected = _run_uninterrupted(config, bins)

    session = _open_session(config)
    for batch in bins[:k]:
        session.ingest(batch)
    blob = capture(session)
    restored = restore_session(blob)
    assert restored.bins_ingested == k
    for batch in bins[k:]:
        restored.ingest(batch)
    assert_results_identical(expected, restored.close(),
                             label=f"{mode}/shards={num_shards}")


@pytest.mark.parametrize("num_shards", (1, 4))
def test_pending_ops_survive_checkpoint(small_trace, num_shards):
    """Queued add/capacity ops fire at the restored session's next bin."""
    config = _config("predictive", num_shards=num_shards)
    bins = small_trace.batch_list(0.1)
    k = len(bins) // 2

    def reconfigure(session):
        if config.num_shards > 1:
            session.add_query(lambda: make_query("top-k"))
        else:
            session.add_query(make_query("top-k"))
        session.set_capacity(CAPACITY * 0.7)

    expected_session = _open_session(config)
    for batch in bins[:k]:
        expected_session.ingest(batch)
    reconfigure(expected_session)
    for batch in bins[k:]:
        expected_session.ingest(batch)
    expected = expected_session.close()
    assert "top-k" in expected.query_logs

    session = _open_session(config)
    for batch in bins[:k]:
        session.ingest(batch)
    reconfigure(session)  # queued, NOT yet applied — checkpointed pending
    restored = restore_session(capture(session))
    for batch in bins[k:]:
        restored.ingest(batch)
    assert_results_identical(expected, restored.close(),
                             label=f"pending/shards={num_shards}")


@needs_fork
def test_workers_checkpoint_restores_inprocess(small_trace):
    """A run checkpointed on the worker pool resumes in-process."""
    config = _config("predictive", num_shards=4, shard_rebalance=True)
    bins = small_trace.batch_list(0.1)
    k = len(bins) // 2
    expected = _run_uninterrupted(config, bins)

    session = _open_session(config, n_workers=4, backend="workers")
    try:
        assert session.backend == "workers"
        for batch in bins[:k]:
            session.ingest(batch)
        blob = capture(session)
        # The live workers session keeps streaming after the snapshot.
        for batch in bins[k:]:
            session.ingest(batch)
        assert_results_identical(expected, session.close(),
                                 label="workers/uninterrupted-after-capture")
    finally:
        session.close()

    # The default restore resumes the checkpointed backend; ask for
    # in-process explicitly to cross backends.
    restored = restore_session(blob, backend="inprocess")
    assert restored.backend == "inprocess"
    for batch in bins[k:]:
        restored.ingest(batch)
    assert_results_identical(expected, restored.close(),
                             label="workers->inprocess")


@needs_fork
def test_inprocess_checkpoint_restores_on_workers(small_trace):
    """...and the other direction: in-process checkpoint, workers resume."""
    config = _config("predictive", num_shards=4)
    bins = small_trace.batch_list(0.1)
    k = len(bins) // 2
    expected = _run_uninterrupted(config, bins)

    session = _open_session(config)
    for batch in bins[:k]:
        session.ingest(batch)
    blob = capture(session)

    restored = restore_session(blob, n_workers=4, backend="workers",
                               respect_cores=False)
    try:
        assert restored.backend == "workers"
        for batch in bins[k:]:
            restored.ingest(batch)
        assert_results_identical(expected, restored.close(),
                                 label="inprocess->workers")
    finally:
        restored.close()


def test_restore_twice_is_independent(small_trace):
    """One loaded checkpoint thaws two fully independent sessions."""
    config = _config("predictive")
    bins = small_trace.batch_list(0.1)
    k = len(bins) // 2
    session = _open_session(config)
    for batch in bins[:k]:
        session.ingest(batch)
    checkpoint = load_checkpoint(capture(session))

    first, second = checkpoint.restore(), checkpoint.restore()
    assert first is not second
    for batch in bins[k:]:
        first.ingest(batch)
    result_first = first.close()
    assert second.bins_ingested == k  # untouched by first's progress
    for batch in bins[k:]:
        second.ingest(batch)
    assert_results_identical(result_first, second.close(),
                             label="independent-restores")


def test_save_load_describe(tmp_path, small_trace):
    config = _config("reactive")
    bins = small_trace.batch_list(0.1)
    session = _open_session(config, name="disk-ckpt")
    for batch in bins[:7]:
        session.ingest(batch)
    path = save_checkpoint(session, tmp_path / "deep" / "checkpoint.pkl")
    assert path.exists()
    meta = describe_checkpoint(path)
    assert meta["format"] == CHECKPOINT_FORMAT
    assert meta["kind"] == "monitoring"
    assert meta["mode"] == "reactive"
    assert meta["bins_ingested"] == 7
    assert meta["query_names"] == ["counter", "flows"]
    restored = restore_session(path)
    for batch in bins[7:]:
        restored.ingest(batch)
    assert_results_identical(_run_uninterrupted(config, bins),
                             restored.close(), label="from-disk")


def test_checkpoint_rejects_closed_and_foreign():
    config = _config("original")
    session = _open_session(config)
    session.close()
    with pytest.raises(RuntimeError, match="closed"):
        capture(session)
    with pytest.raises(TypeError, match="cannot checkpoint"):
        capture(object())


def test_load_rejects_non_checkpoints(tmp_path):
    bogus = tmp_path / "bogus.pkl"
    bogus.write_bytes(pickle.dumps({"not": "a checkpoint"}))
    with pytest.raises(ValueError, match="not a repro checkpoint"):
        load_checkpoint(bogus)
    versioned = tmp_path / "future.pkl"
    versioned.write_bytes(pickle.dumps(
        {"meta": {"format": CHECKPOINT_FORMAT, "version": 999},
         "state_blob": b""}))
    with pytest.raises(ValueError, match="version"):
        load_checkpoint(versioned)
