"""Tests for stateless packet filters."""

import numpy as np

from repro.monitor import filters
from repro.monitor.packet import PROTO_TCP, PROTO_UDP, ip


class TestBasicFilters:
    def test_all_packets(self, small_batch):
        assert filters.all_packets()(small_batch).all()

    def test_no_packets(self, small_batch):
        assert not filters.no_packets()(small_batch).any()

    def test_proto_filter(self, small_batch):
        mask = filters.proto(PROTO_TCP)(small_batch)
        assert mask.all()  # the fixture batch is all TCP
        assert not filters.proto(PROTO_UDP)(small_batch).any()

    def test_port_filter_directions(self, small_batch):
        either = filters.port(80)(small_batch)
        src = filters.port(80, "src")(small_batch)
        dst = filters.port(80, "dst")(small_batch)
        assert np.array_equal(either, src | dst)

    def test_size_filter(self, small_batch):
        mask = filters.size_at_least(1000)(small_batch)
        assert np.array_equal(mask, small_batch.size >= 1000)


class TestSubnetFilter:
    def test_matches_prefix(self, small_batch):
        # dst addresses in the fixture are small integers around 1000-1020;
        # use a /0 to match everything and a disjoint /8 to match nothing.
        assert filters.subnet(0, 0)(small_batch).all()
        assert not filters.subnet(ip(200, 0, 0, 0), 8)(small_batch).any()

    def test_invalid_prefix(self):
        try:
            filters.subnet(0, 40)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


class TestComposition:
    def test_and_or_not(self, small_batch):
        f80 = filters.port(80)
        f443 = filters.port(443)
        both = (f80 | f443)(small_batch)
        assert np.array_equal(both, f80(small_batch) | f443(small_batch))
        negated = (~f80)(small_batch)
        assert np.array_equal(negated, ~f80(small_batch))
        assert not (f80 & ~f80)(small_batch).any()

    def test_any_of(self, small_batch):
        combined = filters.any_of([filters.port(80), filters.port(53)])
        expected = filters.port(80)(small_batch) | filters.port(53)(small_batch)
        assert np.array_equal(combined(small_batch), expected)

    def test_any_of_empty(self, small_batch):
        assert not filters.any_of([])(small_batch).any()

    def test_apply_returns_subset(self, small_batch):
        sub = filters.port(80).apply(small_batch)
        assert len(sub) == int(filters.port(80)(small_batch).sum())
