"""Fleet federation tests: topology, partitioning, federation, CLI.

The correctness anchor is the exactness gate: a fleet of N nodes over a
flow-partitioned stream, run in reference mode, must produce query logs
*bit-identical* to one node over the whole stream for every merge-exact
query kind — the federated second merge tier adds nothing and loses
nothing.  Around it: topology parsing/validation, flow-affinity of every
partition rule, per-node overlay application, metrics folding, Prometheus
scraping, the ``Batch.partition`` memo keying, and the
``python -m repro.fleet`` CLI surface.
"""

import json
import sys

import numpy as np
import pytest

from repro.experiments.runner import system_config
from repro.fleet import (FleetAggregator, FleetPartitioner, FleetRunner,
                         FleetTopology, NodeSpec, load_topology,
                         verify_exactness)
from repro.fleet.__main__ import main as fleet_main
from repro.monitor.sharding import FLOW_FIELDS, shard_seed
from repro.monitor.workers import fork_start_available
from repro.queries import MERGE_EXACTNESS, parse_query_specs
from tests.conftest import make_batch


def _config(**overrides):
    overrides.setdefault("queries", parse_query_specs("counter,flows"))
    overrides.setdefault("cycles_per_second", 5e7)
    return system_config(**overrides)


# ----------------------------------------------------------------------
# Topology: schema, validation, serialisation
# ----------------------------------------------------------------------
class TestTopology:
    def test_uniform_fleet(self):
        topology = FleetTopology.uniform(4)
        assert topology.num_nodes == 4
        assert topology.weights == (1.0, 1.0, 1.0, 1.0)
        assert [node.name for node in topology.nodes] == [
            "node0", "node1", "node2", "node3"]

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="at least one node"):
            FleetTopology.uniform(0)
        with pytest.raises(ValueError, match="duplicate node names"):
            FleetTopology(nodes=[NodeSpec("a"), NodeSpec("a")])
        with pytest.raises(ValueError, match="weight must be > 0"):
            NodeSpec("a", weight=0.0)
        with pytest.raises(ValueError, match="non-empty name"):
            NodeSpec("")
        with pytest.raises(ValueError, match="unknown partition_by"):
            FleetTopology.uniform(2, partition_by="round-robin")
        with pytest.raises(ValueError, match="prefix_bits"):
            FleetTopology.uniform(2, prefix_bits=0)

    def test_overlay_typos_fail_at_load_time(self):
        with pytest.raises(ValueError, match="node 'a'"):
            FleetTopology(nodes=[NodeSpec("a",
                                          overlay={"cycels": 1e8})])
        with pytest.raises(ValueError, match="defaults"):
            FleetTopology(nodes=[NodeSpec("a")],
                          defaults={"no_such_field": 1})

    def test_from_dict_accepts_int_node_count(self):
        topology = FleetTopology.from_dict({"nodes": 3})
        assert topology.num_nodes == 3
        assert topology.partition_by == "flow-hash"

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown topology keys"):
            FleetTopology.from_dict({"nodes": 2, "patition_by": "ingress"})
        with pytest.raises(ValueError, match="unknown node spec keys"):
            NodeSpec.from_dict({"name": "a", "wieght": 2.0})

    def test_roundtrips_through_dict(self):
        topology = FleetTopology(
            nodes=[NodeSpec("pop-ams", weight=2.0,
                            overlay={"mode": "reactive"}),
                   NodeSpec("pop-fra")],
            partition_by="src-prefix", prefix_bits=12,
            defaults={"predictor": "ewma"})
        again = FleetTopology.from_dict(topology.to_dict())
        assert again == topology

    def test_node_configs_overlay_order_and_defaults(self):
        base = _config(cycles_per_second=2e8, seed=7)
        topology = FleetTopology(
            nodes=[NodeSpec("big", weight=3.0),
                   NodeSpec("small", weight=1.0,
                            overlay={"mode": "reactive"})],
            defaults={"predictor": "ewma"})
        configs = topology.node_configs(base)
        # Budgets split by weight share of the base capacity.
        assert [c.cycles_per_second for c in configs] == [1.5e8, 5e7]
        # defaults apply everywhere; node overlays win over defaults.
        assert [c.predictor for c in configs] == ["ewma", "ewma"]
        assert [c.mode for c in configs] == ["predictive", "reactive"]
        # Node 0 keeps the base seed (1-node fleet == single host).
        assert configs[0].seed == 7
        assert configs[1].seed == shard_seed(7, 1)
        # force= overlays every node (the exactness check's hook).
        forced = topology.node_configs(base, force={"mode": "reference"})
        assert {c.mode for c in forced} == {"reference"}

    def test_explicit_cycles_overlay_is_independent_of_weight(self):
        base = _config(cycles_per_second=2e8)
        topology = FleetTopology(
            nodes=[NodeSpec("a", weight=3.0,
                            overlay={"cycles_per_second": 1e6}),
                   NodeSpec("b")])
        configs = topology.node_configs(base)
        assert configs[0].cycles_per_second == 1e6

    def test_partition_key_tracks_routing_not_overlays(self):
        plain = FleetTopology.uniform(4)
        assert plain.partition_key == FleetTopology(
            nodes=[NodeSpec(f"n{i}", overlay={"mode": "reactive"})
                   for i in range(4)]).partition_key
        assert plain.partition_key != FleetTopology.uniform(5).partition_key
        assert plain.partition_key != FleetTopology.uniform(
            4, partition_by="ingress").partition_key
        weighted = FleetTopology(nodes=[NodeSpec("a", weight=2.0),
                                        NodeSpec("b"), NodeSpec("c"),
                                        NodeSpec("d")])
        assert plain.partition_key != weighted.partition_key


class TestTopologyFiles:
    TOPOLOGY = {"nodes": [{"name": "a", "weight": 2.0},
                          {"name": "b", "overlay": {"mode": "reactive"}}],
                "partition_by": "flow-hash"}

    def test_load_json(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(self.TOPOLOGY))
        topology = load_topology(str(path))
        assert topology.num_nodes == 2
        assert topology.weights == (2.0, 1.0)
        assert topology.nodes[1].overlay == {"mode": "reactive"}

    def test_load_yaml(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "fleet.yaml"
        path.write_text(yaml.safe_dump(self.TOPOLOGY))
        assert load_topology(str(path)) == load_topology_json(tmp_path)

    def test_yaml_without_pyyaml_is_actionable(self, tmp_path, monkeypatch):
        path = tmp_path / "fleet.yaml"
        path.write_text("nodes: 2\n")
        monkeypatch.setitem(sys.modules, "yaml", None)
        with pytest.raises(ImportError, match="PyYAML"):
            load_topology(str(path))

    def test_non_mapping_file_rejected(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="mapping"):
            load_topology(str(path))


def load_topology_json(tmp_path):
    path = tmp_path / "fleet-ref.json"
    path.write_text(json.dumps(TestTopologyFiles.TOPOLOGY))
    return load_topology(str(path))


# ----------------------------------------------------------------------
# Partitioning: flow affinity, weights, memo keying
# ----------------------------------------------------------------------
class TestPartitioner:
    @pytest.mark.parametrize("mode", ["flow-hash", "src-prefix", "ingress"])
    def test_split_is_a_partition(self, mode):
        batch = make_batch(n=600, seed=11, n_hosts=40)
        partitioner = FleetPartitioner(
            FleetTopology.uniform(3, partition_by=mode))
        parts = partitioner.split(batch)
        assert len(parts) == 3
        assert sum(len(part) for part in parts) == len(batch)
        assert np.array_equal(
            np.sort(np.concatenate([part.ts for part in parts])),
            np.sort(batch.ts))

    @pytest.mark.parametrize("mode", ["flow-hash", "src-prefix", "ingress"])
    def test_assignments_are_flow_affine(self, mode):
        batch = make_batch(n=600, seed=13, n_hosts=10)
        partitioner = FleetPartitioner(
            FleetTopology.uniform(4, partition_by=mode))
        nodes = partitioner.assignments(batch)
        assert nodes.min() >= 0 and nodes.max() < 4
        # Every rule routes on (a function of) the source address at most
        # as fine as the 5-tuple: packets sharing a full 5-tuple must
        # always land on the same node.
        flows = np.stack([np.asarray(getattr(batch, field), dtype=np.uint64)
                          for field in FLOW_FIELDS])
        seen = {}
        for index in range(len(batch)):
            key = tuple(flows[:, index])
            assert seen.setdefault(key, nodes[index]) == nodes[index]

    def test_src_prefix_groups_by_prefix(self):
        batch = make_batch(n=400, seed=5, n_hosts=50)
        topology = FleetTopology.uniform(3, partition_by="src-prefix",
                                         prefix_bits=24)
        nodes = FleetPartitioner(topology).assignments(batch)
        prefixes = np.asarray(batch.src_ip, dtype=np.uint32) >> np.uint32(8)
        for prefix in np.unique(prefixes):
            assert len(np.unique(nodes[prefixes == prefix])) == 1

    def test_flow_hash_respects_weights(self):
        batch = make_batch(n=4000, seed=3, n_hosts=500)
        topology = FleetTopology(nodes=[NodeSpec("big", weight=3.0),
                                        NodeSpec("small", weight=1.0)])
        nodes = FleetPartitioner(topology).assignments(batch)
        share = float(np.mean(nodes == 0))
        assert 0.6 < share < 0.9  # ~0.75 of the hash space

    def test_single_node_split_is_identity(self):
        batch = make_batch(n=50, seed=1)
        parts = FleetPartitioner(FleetTopology.uniform(1)).split(batch)
        assert parts == [batch]

    def test_partition_memo_keyed_by_partition_key(self):
        batch = make_batch(n=300, seed=17)
        default_parts = batch.partition(2, FLOW_FIELDS)
        everything_to_node0 = np.zeros(len(batch), dtype=np.intp)
        custom = batch.partition(2, FLOW_FIELDS,
                                 partition_key=("test-custom", 2),
                                 assignments=everything_to_node0)
        assert len(custom[0]) == len(batch) and len(custom[1]) == 0
        # The custom split and the flow-hash split memoise independently:
        # repeating either lookup returns the cached objects unchanged.
        again = batch.partition(2, FLOW_FIELDS)
        assert all(a is b for a, b in zip(again, default_parts))
        custom_again = batch.partition(2, FLOW_FIELDS,
                                       partition_key=("test-custom", 2),
                                       assignments=everything_to_node0)
        assert all(a is b for a, b in zip(custom_again, custom))

    def test_custom_assignments_require_partition_key(self):
        batch = make_batch(n=20, seed=2)
        with pytest.raises(ValueError, match="partition_key"):
            batch.partition(2, FLOW_FIELDS,
                            assignments=np.zeros(20, dtype=np.intp))


# ----------------------------------------------------------------------
# The runner and the exactness gate
# ----------------------------------------------------------------------
class TestFleetRunner:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown fleet backend"):
            FleetRunner(FleetTopology.uniform(2), config=_config(),
                        backend="threads")

    def test_base_config_needs_declarative_queries(self):
        with pytest.raises(ValueError, match="queries"):
            FleetRunner(FleetTopology.uniform(2),
                        config=system_config(queries=None))

    def test_federated_equals_single_node_for_exact_queries(self,
                                                            small_trace):
        verdict = verify_exactness(
            FleetTopology.uniform(3),
            small_trace,
            config=_config(queries=parse_query_specs("counter,flows,top-k")),
            time_bin=0.2)
        assert verdict["exact_queries_identical"] is True
        assert verdict["nodes"] == 3
        for name, entry in verdict["queries"].items():
            assert entry["exactness"] == MERGE_EXACTNESS[entry["kind"]], name
            if entry["checked"]:
                assert entry["identical"] is True, name
        # top-k is merge-prefix, not merge-exact: reported, never gated.
        assert verdict["queries"]["top-k"]["checked"] is False

    @pytest.mark.parametrize("mode", ["src-prefix", "ingress"])
    def test_exactness_holds_for_every_partition_mode(self, small_trace,
                                                      mode):
        verdict = verify_exactness(
            FleetTopology.uniform(2, partition_by=mode), small_trace,
            config=_config(), time_bin=0.5)
        assert verdict["exact_queries_identical"] is True

    def test_one_node_fleet_is_bit_identical_to_single_host(self,
                                                            small_trace):
        config = _config(mode="predictive", cycles_per_second=2e7)
        fleet = FleetRunner(FleetTopology.uniform(1), config=config)
        result = fleet.run(small_trace, time_bin=0.2)
        single = config.build().run(small_trace, time_bin=0.2)
        assert result.federated.bins == single.bins
        for name, log in single.query_logs.items():
            federated_log = result.federated.query_logs[name]
            assert federated_log.intervals == log.intervals
            assert federated_log.results == log.results

    def test_run_produces_latency_evidence_and_metrics(self, small_trace):
        fleet = FleetRunner(FleetTopology.uniform(3), config=_config())
        result = fleet.run(small_trace, time_bin=0.5)
        bins = len(result.federated.bins)
        assert result.node_bin_seconds.shape == (3, bins)
        assert result.bin_latency.shape == (bins,)
        assert np.all(result.bin_latency >= result.node_bin_seconds.min())
        report = result.report()
        assert report["nodes"] == 3 and report["bins"] == bins
        for key in ("bin_latency_seconds", "node_bin_latency_seconds",
                    "delay_cycles", "drop_fraction", "mean_sampling_rate"):
            assert key in report, key
        assert report["bin_latency_seconds"]["n"] == bins
        folded = result.metrics["profile"]
        assert folded["stages"]  # per-node stage profiles summed
        assert len(folded["bin_seconds_per_node"]) == 3

    def test_fleet_budget_sums_node_budgets(self, small_trace):
        config = _config(cycles_per_second=8e7)
        fleet = FleetRunner(FleetTopology.uniform(4), config=config)
        result = fleet.run(small_trace, time_bin=0.5)
        budgets = [r.budget.cycles_per_second for r in result.node_results]
        assert budgets == [2e7] * 4
        assert result.federated.budget.cycles_per_second == \
            pytest.approx(8e7)

    @pytest.mark.skipif(not fork_start_available(),
                        reason="needs the fork start method")
    def test_fork_backend_matches_inprocess(self, small_trace):
        config = _config()
        topology = FleetTopology.uniform(2)
        inproc = FleetRunner(topology, config=config,
                             backend="inprocess").run(small_trace,
                                                      time_bin=0.5)
        forked = FleetRunner(topology, config=config, n_workers=2,
                             backend="fork").run(small_trace, time_bin=0.5)
        assert forked.backend == "fork"
        assert forked.federated.bins == inproc.federated.bins
        for name, log in inproc.federated.query_logs.items():
            assert forked.federated.query_logs[name].results == log.results


# ----------------------------------------------------------------------
# Aggregation: metrics folding and Prometheus scraping
# ----------------------------------------------------------------------
class TestFleetAggregator:
    def test_fold_metrics_sums_and_recomputes_means(self):
        node_a = {"profile": {"bins": 10,
                              "bin_seconds": {"p50": 0.1},
                              "stages": {"predict": {
                                  "calls": 10, "seconds_total": 1.0,
                                  "cycles_total": 100.0}}},
                  "feature_sharing": {"hits": 5}}
        node_b = {"profile": {"bins": 10,
                              "bin_seconds": {"p50": 0.3},
                              "stages": {"predict": {
                                  "calls": 30, "seconds_total": 2.0,
                                  "cycles_total": 300.0}}},
                  "feature_sharing": {"hits": 2, "misses": 1}}
        folded = FleetAggregator.fold_metrics([node_a, node_b, {}])
        stage = folded["profile"]["stages"]["predict"]
        assert stage["calls"] == 40
        assert stage["seconds_total"] == 3.0
        assert stage["cycles_total"] == 400.0
        assert stage["mean_seconds"] == pytest.approx(3.0 / 40)
        assert folded["feature_sharing"] == {"hits": 7, "misses": 1}
        assert folded["profile"]["bin_seconds_per_node"] == [
            {"p50": 0.1}, {"p50": 0.3}]

    def test_parse_prometheus_text(self):
        text = "\n".join([
            "# HELP repro_drop_fraction Fraction of packets dropped.",
            "# TYPE repro_drop_fraction gauge",
            "repro_drop_fraction 0.25",
            'repro_query_accuracy{query="counter"} 0.99',
            'repro_query_accuracy{query="flows"} 0.97',
            "not-a-sample",
            "",
        ])
        samples = FleetAggregator.parse_prometheus_text(text)
        assert samples == {
            "repro_drop_fraction": 0.25,
            'repro_query_accuracy{query="counter"}': 0.99,
            'repro_query_accuracy{query="flows"}': 0.97,
        }

    def test_scrape_fleet_survives_dead_nodes(self, monkeypatch):
        def fake_scrape(url, timeout=5.0):
            if "dead" in url:
                raise OSError("connection refused")
            return {"repro_bins_total": 4.0}
        monkeypatch.setattr(FleetAggregator, "scrape",
                            staticmethod(fake_scrape))
        scraped = FleetAggregator.scrape_fleet(
            ["http://a/metrics", "http://dead/metrics"])
        assert scraped == {"http://a/metrics": {"repro_bins_total": 4.0},
                           "http://dead/metrics": {}}


# ----------------------------------------------------------------------
# python -m repro.fleet
# ----------------------------------------------------------------------
class TestFleetCLI:
    ARGS = ["--workload", "flow-spike", "--duration", "1.0",
            "--workload-scale", "0.25", "--queries", "counter,flows",
            "--cycles-per-second", "5e7"]

    def test_json_report(self, capsys):
        assert fleet_main(["--nodes", "2", *self.ARGS, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["nodes"] == 2
        assert report["partition_by"] == "flow-hash"
        assert "delay_cycles" in report and "bin_latency_seconds" in report

    def test_check_gate_passes_and_prints_verdict(self, capsys):
        assert fleet_main(["--nodes", "2", *self.ARGS, "--check"]) == 0
        out = capsys.readouterr().out
        assert "exactness check (PASS)" in out
        assert "counter" in out and "flows" in out

    def test_topology_file(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({"nodes": 2}))
        assert fleet_main([str(path), *self.ARGS, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["nodes"] == 2

    def test_argument_errors_exit_2(self, tmp_path, capsys):
        assert fleet_main(self.ARGS) == 2  # neither topology nor --nodes
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({"nodes": 2}))
        assert fleet_main([str(path), "--nodes", "2", *self.ARGS]) == 2
        assert fleet_main(["--nodes", "2", "--workload", "flow-spike",
                           "--duration", "1.0", "--queries", "counter",
                           "--overload", "1.5"]) == 2
        capsys.readouterr()
