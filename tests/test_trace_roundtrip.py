"""Round-trip property tests for trace persistence.

``save_trace``/``load_trace`` store a trace as an ``.npz`` archive; payloads
are flattened into one blob plus a lengths array and must be reconstructed
byte for byte — including empty payloads, whose zero lengths are what keeps
the blob offsets aligned.  Hypothesis drives the shapes (packet counts,
payload lengths including zero, presence/absence of payloads) through the
full save → load cycle.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.monitor.packet import Batch, PacketTrace
from repro.traffic.trace_io import load_trace, save_trace

COLUMNS = ("ts", "src_ip", "dst_ip", "src_port", "dst_port", "proto", "size")


def _build_trace(seed: int, n: int, payload_lengths, name: str) -> PacketTrace:
    """Deterministic trace with the given payload length layout."""
    rng = np.random.default_rng(seed)
    batch = Batch(
        ts=np.sort(rng.uniform(0.0, 2.0, size=n)),
        src_ip=rng.integers(0, 2 ** 32, size=n, dtype=np.uint32),
        dst_ip=rng.integers(0, 2 ** 32, size=n, dtype=np.uint32),
        src_port=rng.integers(0, 2 ** 16, size=n, dtype=np.uint16),
        dst_port=rng.integers(0, 2 ** 16, size=n, dtype=np.uint16),
        proto=rng.choice(np.array([1, 6, 17], dtype=np.uint8), size=n),
        size=rng.integers(40, 1500, size=n, dtype=np.uint32),
        payloads=None if payload_lengths is None else [
            bytes(rng.integers(0, 256, size=length, dtype=np.uint8))
            for length in payload_lengths
        ],
    )
    return PacketTrace(batch, name=name)


@settings(deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    seed=st.integers(0, 2 ** 20),
    payload_lengths=st.lists(st.integers(0, 64), min_size=1, max_size=40),
    name=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        min_size=0, max_size=24),
)
def test_payload_trace_roundtrip(tmp_path, seed, payload_lengths, name):
    trace = _build_trace(seed, len(payload_lengths), payload_lengths, name)
    path = save_trace(trace, tmp_path / "trace.npz")
    loaded = load_trace(path)

    assert loaded.name == name
    assert len(loaded) == len(trace)
    for column in COLUMNS:
        original = getattr(trace.packets, column)
        restored = getattr(loaded.packets, column)
        assert restored.dtype == original.dtype, column
        assert np.array_equal(restored, original), column
    # Payload reconstruction: blob + lengths must restore each packet's
    # payload exactly, empty payloads included.
    assert loaded.packets.payloads is not None
    assert loaded.packets.payloads == trace.packets.payloads


@settings(deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seed=st.integers(0, 2 ** 20), n=st.integers(1, 40))
def test_header_only_trace_roundtrip(tmp_path, seed, n):
    trace = _build_trace(seed, n, None, "header-only")
    loaded = load_trace(save_trace(trace, tmp_path / "h.npz"))
    assert loaded.packets.payloads is None
    for column in COLUMNS:
        assert np.array_equal(getattr(loaded.packets, column),
                              getattr(trace.packets, column)), column


def test_all_empty_payloads_stay_payload_bearing(tmp_path):
    """A trace whose payloads are all b'' must not degrade to header-only."""
    trace = _build_trace(3, 5, [0, 0, 0, 0, 0], "empties")
    loaded = load_trace(save_trace(trace, tmp_path / "e.npz"))
    assert loaded.packets.payloads == [b""] * 5


def test_save_trace_appends_npz_suffix(tmp_path):
    trace = _build_trace(4, 3, [4, 0, 2], "suffix")
    returned = save_trace(trace, tmp_path / "noext")
    assert returned.suffix == ".npz"
    assert returned.exists()
    loaded = load_trace(returned)
    assert loaded.packets.payloads == trace.packets.payloads


@pytest.mark.parametrize("name", ["trace.dat", "trace.v2.1", "archive.tar.gz",
                                  ".npz", "trace.NPZ"])
def test_save_trace_returns_the_written_path(tmp_path, name):
    """Regression: the returned path must be the file NumPy wrote.

    ``np.savez_compressed`` appends ``.npz`` whenever the name does not
    already end with it (including dotfiles and non-``.npz`` suffixes);
    the returned path must round-trip through ``load_trace`` directly.
    """
    trace = _build_trace(5, 4, [3, 0, 1, 2], "written-path")
    returned = save_trace(trace, tmp_path / name)
    assert returned.exists(), returned
    assert returned.parent == tmp_path
    assert [p.name for p in tmp_path.iterdir()] == [returned.name]
    loaded = load_trace(returned)
    assert loaded.packets.payloads == trace.packets.payloads
    for column in COLUMNS:
        assert np.array_equal(getattr(loaded.packets, column),
                              getattr(trace.packets, column)), column


def test_roundtrip_is_executable(tmp_path, payload_trace_small):
    """A generated payload trace survives the round trip and still runs."""
    loaded = load_trace(save_trace(payload_trace_small, tmp_path / "t.npz"))
    assert loaded.packets.payloads == payload_trace_small.packets.payloads
    assert loaded.duration == pytest.approx(payload_trace_small.duration)
