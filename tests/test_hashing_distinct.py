"""Tests for hashing and distinct counting, including property-based tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distinct import (ExactDistinctCounter, MultiResolutionBitmap,
                                 make_counter)
from repro.core.hashing import (H3Hash, combine_columns,
                                hash_to_unit_interval, mix64)


class TestMix64:
    def test_deterministic(self):
        keys = np.arange(100, dtype=np.uint64)
        assert np.array_equal(mix64(keys), mix64(keys))

    def test_distinct_inputs_rarely_collide(self):
        keys = np.arange(100000, dtype=np.uint64)
        hashes = mix64(keys)
        assert len(np.unique(hashes)) == len(keys)

    def test_unit_interval_uniformity(self):
        keys = np.arange(50000, dtype=np.uint64)
        unit = hash_to_unit_interval(mix64(keys))
        assert 0.0 <= unit.min() and unit.max() < 1.0
        assert abs(unit.mean() - 0.5) < 0.02


class TestCombineColumns:
    def test_order_sensitivity(self):
        a = np.array([1, 2, 3], dtype=np.uint32)
        b = np.array([4, 5, 6], dtype=np.uint32)
        assert not np.array_equal(combine_columns([a, b]),
                                  combine_columns([b, a]))

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            combine_columns([])


class TestH3Hash:
    def test_deterministic_per_instance(self):
        h = H3Hash(rng=np.random.default_rng(1))
        keys = np.arange(1000, dtype=np.uint64)
        assert np.array_equal(h(keys), h(keys))

    def test_different_instances_differ(self):
        keys = np.arange(1000, dtype=np.uint64)
        h1 = H3Hash(rng=np.random.default_rng(1))
        h2 = H3Hash(rng=np.random.default_rng(2))
        assert not np.array_equal(h1(keys), h2(keys))

    def test_unit_interval_uniform(self):
        h = H3Hash(rng=np.random.default_rng(3))
        keys = mix64(np.arange(20000, dtype=np.uint64))
        unit = h.unit_interval(keys)
        assert 0.0 <= unit.min() and unit.max() < 1.0
        assert abs(unit.mean() - 0.5) < 0.03

    def test_out_bits_validation(self):
        with pytest.raises(ValueError):
            H3Hash(out_bits=0)
        with pytest.raises(ValueError):
            H3Hash(key_bits=70)


class TestExactCounter:
    def test_counts_distinct(self):
        counter = ExactDistinctCounter()
        counter.add_hashes(np.array([1, 2, 2, 3], dtype=np.uint64))
        counter.add_hashes(np.array([3, 4], dtype=np.uint64))
        assert counter.estimate() == 4

    def test_merge_and_copy(self):
        a = ExactDistinctCounter()
        b = ExactDistinctCounter()
        a.add_hashes(np.array([1, 2], dtype=np.uint64))
        b.add_hashes(np.array([2, 3], dtype=np.uint64))
        c = a.copy()
        c.merge(b)
        assert c.estimate() == 3
        assert a.estimate() == 2  # copy did not alias

    def test_reset(self):
        counter = ExactDistinctCounter()
        counter.add_hashes(np.array([1], dtype=np.uint64))
        counter.reset()
        assert counter.estimate() == 0


class TestMultiResolutionBitmap:
    @pytest.mark.parametrize("cardinality", [100, 1000, 10000, 50000])
    def test_estimation_accuracy(self, cardinality):
        counter = MultiResolutionBitmap()
        keys = mix64(np.arange(cardinality, dtype=np.uint64))
        counter.add_hashes(keys)
        estimate = counter.estimate()
        assert abs(estimate - cardinality) / cardinality < 0.12

    def test_duplicates_do_not_inflate(self):
        counter = MultiResolutionBitmap()
        keys = mix64(np.arange(2000, dtype=np.uint64))
        counter.add_hashes(keys)
        first = counter.estimate()
        counter.add_hashes(keys)
        assert counter.estimate() == pytest.approx(first)

    def test_merge_is_union(self):
        a = MultiResolutionBitmap()
        b = MultiResolutionBitmap()
        keys_a = mix64(np.arange(0, 3000, dtype=np.uint64))
        keys_b = mix64(np.arange(1500, 4500, dtype=np.uint64))
        a.add_hashes(keys_a)
        b.add_hashes(keys_b)
        a.merge(b)
        assert abs(a.estimate() - 4500) / 4500 < 0.15

    def test_merge_geometry_mismatch(self):
        a = MultiResolutionBitmap(num_components=4)
        b = MultiResolutionBitmap(num_components=8)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_empty_estimate_is_zero(self):
        assert MultiResolutionBitmap().estimate() < 5.0

    def test_memory_bits(self):
        bitmap = MultiResolutionBitmap(num_components=4, bits_per_component=256)
        assert bitmap.memory_bits == 1024

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            MultiResolutionBitmap(num_components=0)
        with pytest.raises(ValueError):
            MultiResolutionBitmap(bits_per_component=4)


class TestFactory:
    def test_make_counter(self):
        assert isinstance(make_counter("exact"), ExactDistinctCounter)
        assert isinstance(make_counter("bitmap"), MultiResolutionBitmap)
        with pytest.raises(ValueError):
            make_counter("nope")


class TestDistinctProperties:
    """Property-based tests on the distinct counters."""

    @given(st.lists(st.integers(min_value=0, max_value=2 ** 40),
                    min_size=0, max_size=500))
    @settings(deadline=None)
    def test_exact_counter_matches_set(self, values):
        counter = ExactDistinctCounter()
        counter.add_hashes(mix64(np.array(values, dtype=np.uint64)))
        assert counter.estimate() == len(set(values))

    @given(st.integers(min_value=1, max_value=5000))
    @settings(deadline=None)
    def test_bitmap_monotone_in_cardinality(self, cardinality):
        counter = MultiResolutionBitmap()
        keys = mix64(np.arange(cardinality, dtype=np.uint64))
        counter.add_hashes(keys)
        estimate = counter.estimate()
        assert estimate >= 0
        assert abs(estimate - cardinality) <= max(0.2 * cardinality, 10)

    @given(st.lists(st.integers(min_value=0, max_value=2 ** 30), min_size=1,
                    max_size=300),
           st.lists(st.integers(min_value=0, max_value=2 ** 30), min_size=1,
                    max_size=300))
    @settings(deadline=None)
    def test_merge_upper_bounds_components(self, left, right):
        a = ExactDistinctCounter()
        b = ExactDistinctCounter()
        a.add_hashes(mix64(np.array(left, dtype=np.uint64)))
        b.add_hashes(mix64(np.array(right, dtype=np.uint64)))
        union = a.copy()
        union.merge(b)
        assert union.estimate() >= max(a.estimate(), b.estimate())
        assert union.estimate() <= a.estimate() + b.estimate()
