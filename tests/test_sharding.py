"""Sharded-pipeline invariants.

Four contracts the sharded execution layer must honour:

* **Degenerate identity** — ``ShardedSystem(num_shards=1)`` is bit-identical
  to the classic single-system run in *all four* operating modes (the
  golden four-mode scenario), because partitioning returns the original
  batches, shard 0 keeps the full budget and seed, and every merge of one
  shard is the identity.
* **Flow affinity** — after :meth:`Batch.partition` no 5-tuple flow spans
  two shards, and the shards are an exact, order-preserving cover of the
  batch.
* **Merged accuracy** — N-shard merged counter/flows estimates are exact
  without shedding and within sampling tolerance of the unsharded run under
  a predictive overload.
* **Pool transparency** — running shards on a fork pool is bit-identical to
  running them in-process (rebalancing off, which is the pooled contract).
"""

import numpy as np
import pytest

from repro.experiments import runner, scenarios
from repro.monitor.pipeline import BinRecord
from repro.monitor.sharding import ShardedSystem, shard_seed
from repro.queries import make_query
from tests.conftest import make_batch

QUERY_SET = ("counter", "flows", "top-k", "application")


def _factory(names=QUERY_SET):
    return lambda: [make_query(name) for name in names]


@pytest.fixture(scope="module")
def golden_scenario():
    """Shared trace plus calibrated capacity for the golden query set."""
    trace = scenarios.build_workload("cesca", seed=2024, scale=0.25)
    capacity, reference = runner.calibrate_capacity(QUERY_SET, trace)
    return trace, capacity, reference


def _series_fingerprint(result):
    return {
        "query_cycles": result.series("query_cycles"),
        "mean_rate": result.series("mean_rate"),
        "dropped_packets": result.series("dropped_packets"),
        "predicted_cycles": result.series("predicted_cycles"),
    }


class TestSingleShardIdentity:
    @pytest.mark.parametrize("mode", ["predictive", "reactive", "original",
                                      "reference"])
    def test_one_shard_matches_unsharded_bit_for_bit(self, golden_scenario,
                                                     mode):
        trace, capacity, _ = golden_scenario
        config = runner.system_config(
            mode=mode, cycles_per_second=capacity * 0.5, seed=99)
        unsharded = config.build(_factory()()).run(trace)
        sharded = ShardedSystem(_factory(), config=config,
                                num_shards=1).run(trace)
        plain = _series_fingerprint(unsharded)
        merged = _series_fingerprint(sharded)
        for name in plain:
            assert np.array_equal(plain[name], merged[name]), name
        assert unsharded.total_packets == sharded.total_packets
        assert unsharded.dropped_packets == sharded.dropped_packets
        for qname, log in unsharded.query_logs.items():
            assert sharded.query_logs[qname].intervals == log.intervals
            assert sharded.query_logs[qname].results == log.results

    def test_shard_zero_keeps_base_seed(self):
        assert shard_seed(1234, 0) == 1234
        assert len({shard_seed(1234, i) for i in range(16)}) == 16


class TestFlowAffinity:
    @pytest.mark.parametrize("num_shards", [2, 3, 4, 8])
    def test_no_flow_spans_two_shards(self, num_shards):
        batch = make_batch(n=600, seed=17, n_hosts=40)
        parts = batch.partition(num_shards)
        owner = {}
        for index, part in enumerate(parts):
            for key in np.unique(part.flow_keys()).tolist():
                assert owner.setdefault(key, index) == index, \
                    f"flow {key} appears on shards {owner[key]} and {index}"

    def test_partition_is_an_exact_cover(self):
        batch = make_batch(n=500, seed=23)
        parts = batch.partition(4)
        assert sum(len(part) for part in parts) == len(batch)
        assert sum(part.byte_count for part in parts) == batch.byte_count
        for part in parts:
            # Chronological order survives within each shard, and every
            # shard keeps the parent's bin timeline.
            assert np.all(np.diff(part.ts) >= 0)
            assert part.start_ts == batch.start_ts
            assert part.time_bin == batch.time_bin

    def test_single_shard_partition_is_identity(self):
        batch = make_batch(n=100, seed=3)
        assert batch.partition(1) == [batch]

    def test_empty_batch_partitions_into_empty_shards(self):
        batch = make_batch(n=50, seed=5).select(np.zeros(50, dtype=bool))
        parts = batch.partition(3)
        assert [len(part) for part in parts] == [0, 0, 0]
        assert all(part.start_ts == batch.start_ts for part in parts)

    def test_partition_rejects_bad_counts(self):
        batch = make_batch(n=10, seed=4)
        with pytest.raises(ValueError):
            batch.partition(0)


class TestMergedAccuracy:
    def test_merged_estimates_exact_without_shedding(self, golden_scenario):
        """With ample capacity the merged counter/flows logs are exact.

        Flow affinity makes per-flow state disjoint across shards, so when
        nothing is shed the additive merges reproduce the unsharded numbers
        up to floating-point associativity.
        """
        trace, capacity, _ = golden_scenario
        unsharded = runner.run_system(("counter", "flows"), trace, capacity,
                                      mode="reference")
        sharded = runner.run_system(("counter", "flows"), trace, capacity,
                                    mode="reference", num_shards=4)
        for qname in ("counter", "flows"):
            plain, merged = (unsharded.query_logs[qname],
                             sharded.query_logs[qname])
            assert merged.intervals == plain.intervals
            for mine, theirs in zip(merged.results, plain.results):
                for key in theirs:
                    assert mine[key] == pytest.approx(theirs[key], rel=1e-9)

    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_merged_estimates_within_sampling_tolerance(self,
                                                        golden_scenario,
                                                        num_shards):
        """Under a predictive overload the merged estimates track the
        reference within a loose sampling tolerance (the per-shard pipelines
        shed independently, so shard noise adds on top of sampling noise)."""
        trace, capacity, reference = golden_scenario
        sharded = runner.run_system(QUERY_SET, trace, capacity * 0.5,
                                    num_shards=num_shards)
        accuracy = runner.accuracy_by_query(sharded, reference)
        assert accuracy["counter"] >= 0.85
        assert accuracy["flows"] >= 0.78
        assert sharded.drop_fraction == 0.0

    def test_rebalancing_never_loses_capacity(self, golden_scenario):
        """Per-bin lending conserves the total cycle budget exactly."""
        trace, capacity, _ = golden_scenario
        result = runner.run_system(QUERY_SET, trace, capacity * 0.5,
                                   num_shards=4)
        available = result.series("available_cycles")
        assert np.allclose(available, capacity * 0.5 * runner.TIME_BIN)


class TestPoolTransparency:
    def test_pooled_shards_match_in_process_bit_for_bit(self,
                                                        golden_scenario):
        trace, capacity, _ = golden_scenario
        config = runner.system_config(cycles_per_second=capacity * 0.5,
                                      shard_rebalance=False, seed=7)
        in_process = ShardedSystem(_factory(), config=config,
                                   num_shards=4).run(trace)
        pooled = ShardedSystem(_factory(), config=config, num_shards=4,
                               n_workers=4, respect_cores=False).run(trace)
        serial = _series_fingerprint(in_process)
        forked = _series_fingerprint(pooled)
        for name in serial:
            assert np.array_equal(serial[name], forked[name]), name
        for qname, log in in_process.query_logs.items():
            assert pooled.query_logs[qname].results == log.results

    def test_rebalancing_rejected_on_the_fork_backend(self):
        """The legacy fork pool has no per-bin capacity exchange, so it
        still refuses rebalancing; the persistent 'workers' backend (and
        'auto', which resolves to it) accepts the same request."""
        with pytest.raises(ValueError, match="rebalanc"):
            ShardedSystem(_factory(), num_shards=4, rebalance=True,
                          n_workers=4, backend="fork")
        ShardedSystem(_factory(), num_shards=4, rebalance=True, n_workers=4)


class TestResultMerging:
    # Per-query merge *semantics* (k-recovery, verdict union, watermark
    # summation, fan-out re-topping) are covered by the merge-invariant
    # property suite in tests/test_merge_properties.py; here we keep the
    # session-level merging contracts.
    def test_single_result_merge_is_identity(self):
        result = {"packets": 5.0, "bytes": 100.0}
        merged = make_query("counter").merge_interval_results([result])
        assert merged == result and merged is not result

    def test_departed_query_logs_survive_merge(self):
        """close()/partial_result() must merge logs of departed queries."""
        config = runner.system_config(cycles_per_second=5e7, seed=3)
        sharded = ShardedSystem(_factory(("counter", "flows")), config=config,
                                num_shards=2)
        session = sharded.open_session(name="departures")
        for batch in (make_batch(n=80, seed=s, start_ts=0.1 * s)
                      for s in range(12)):
            session.ingest(batch)
        session.remove_query("flows")
        session.add_query(lambda: make_query("top-k"))
        for batch in (make_batch(n=80, seed=s, start_ts=0.1 * s)
                      for s in range(12, 24)):
            session.ingest(batch)
        partial = session.partial_result()
        assert "flows" in partial.query_logs
        result = session.close()
        assert set(result.query_logs) == {"counter", "flows", "top-k"}
        assert len(result.query_logs["flows"]) > 0

    def test_closed_session_rejects_reconfiguration(self):
        sharded = ShardedSystem(_factory(("counter",)), num_shards=2,
                                config=runner.system_config())
        session = sharded.open_session()
        session.ingest(make_batch(n=30, seed=1))
        session.close()
        before = sharded.total_cycles_per_second
        with pytest.raises(RuntimeError):
            session.set_capacity(1e6)
        assert sharded.total_cycles_per_second == before  # nothing mutated
        with pytest.raises(RuntimeError):
            session.remove_query("counter")
        with pytest.raises(RuntimeError):
            session.add_query(lambda: make_query("flows"))

    def test_bin_record_merge_sums_and_worst_cases(self):
        def record(packets, cycles, delay, occupation, rate):
            return BinRecord(
                index=3, start_ts=1.5, incoming_packets=packets,
                incoming_bytes=packets * 100, dropped_packets=0,
                unsampled_packets=0.0, predicted_cycles=cycles,
                query_cycles=cycles, prediction_overhead=1.0,
                shedding_overhead=2.0, system_overhead=3.0,
                available_cycles=100.0, delay=delay,
                buffer_occupation=occupation, rates={"q": rate},
                query_cycles_by_query={"q": cycles})

        merged = BinRecord.merge([record(10, 50.0, 5.0, 0.2, 1.0),
                                  record(20, 70.0, 9.0, 0.6, 0.5)])
        assert merged.incoming_packets == 30
        assert merged.query_cycles == 120.0
        assert merged.delay == 9.0
        assert merged.buffer_occupation == 0.6
        assert merged.rates == {"q": 0.75}
        assert merged.available_cycles == 200.0
