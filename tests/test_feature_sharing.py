"""Shared feature-state correctness: bit-identity under every disturbance.

The shared per-interval counter registry (:mod:`repro.core.features`) is an
*exact* optimisation: a system with ``feature_sharing=True`` must produce
bit-identical execution results to the classic one-extractor-per-query
path, whatever the stream throws at it.  The properties below drive both
configurations over Hypothesis-drawn streams covering the hazards the
sharing protocol handles explicitly:

* measurement-interval rollovers (counter wipes heal round divergence);
* empty batches (no state change on either path; members stay attached);
* load shedding (sampled extraction forks a member out of its group, a
  fully shed bin forks from the pre-round snapshot);
* live ``add_query`` / ``remove_query`` mid-interval (mid-stream joiners
  must *not* adopt a running group's state);
* checkpoint/restore (group object identity survives pickling).

Plus a deterministic regression for the ``commit`` id-recycling hazard:
the extractor must hold the pending batch itself, not its ``id()``.
"""

import gc
import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import FeatureExtractor
from repro.monitor.config import SystemConfig
from repro.queries import make_query
from repro.testing import assert_results_identical
from tests.conftest import make_batch

TIME_BIN = 0.1
#: Query measurement interval: rolls over every 4 bins, so a dozen drawn
#: bins cross several interval boundaries.
INTERVAL = 0.4

#: Capacity levels: unconstrained (rate 1 everywhere), tight (sampling →
#: extractors fork), and starved (fully shed bins → snapshot forks).
CAPACITIES = (1e12, 3e7, 8e6)


def _queries(n):
    queries = [make_query("counter", name=f"q{i}") for i in range(n)]
    for query in queries:
        query.measurement_interval = INTERVAL
    return queries


def _config(sharing, cycles):
    return SystemConfig(cycles_per_second=cycles, seed=5,
                        feature_sharing=sharing)


def _batches(sizes):
    return [make_batch(n=size, seed=40 + i, start_ts=i * TIME_BIN,
                       n_hosts=12)
            for i, size in enumerate(sizes)]


bin_sizes = st.lists(
    st.one_of(st.just(0), st.integers(min_value=1, max_value=80)),
    min_size=3, max_size=12)


# ----------------------------------------------------------------------
# Property: shared extraction is bit-identical to per-query extraction
# ----------------------------------------------------------------------
@given(sizes=bin_sizes, cycles=st.sampled_from(CAPACITIES),
       n_queries=st.integers(min_value=1, max_value=4))
@settings(deadline=None)
def test_shared_matches_private_stream(sizes, cycles, n_queries):
    batches = _batches(sizes)
    results = {}
    for sharing in (True, False):
        system = _config(sharing, cycles).build(_queries(n_queries))
        session = system.open_session(time_bin=TIME_BIN)
        for batch in batches:
            session.ingest(batch)
        results[sharing] = session.close()
    assert_results_identical(results[True], results[False],
                             f"sizes={sizes} cycles={cycles}")


@given(sizes=bin_sizes, cycles=st.sampled_from(CAPACITIES),
       add_at=st.integers(min_value=0, max_value=11),
       remove_at=st.integers(min_value=0, max_value=11))
@settings(deadline=None)
def test_live_reconfiguration_matches_private(sizes, cycles, add_at,
                                              remove_at):
    """A query joining or leaving mid-interval never perturbs the others."""
    batches = _batches(sizes)
    results = {}
    for sharing in (True, False):
        system = _config(sharing, cycles).build(_queries(3))
        session = system.open_session(time_bin=TIME_BIN)
        for index, batch in enumerate(batches):
            if index == add_at:
                late = make_query("counter", name="late")
                late.measurement_interval = INTERVAL
                session.add_query(late)
            if index == remove_at and "q1" in session.query_names:
                session.remove_query("q1")
            session.ingest(batch)
        results[sharing] = session.close()
    assert_results_identical(
        results[True], results[False],
        f"sizes={sizes} cycles={cycles} add={add_at} remove={remove_at}")


@given(sizes=st.lists(st.integers(min_value=0, max_value=80),
                      min_size=4, max_size=10),
       cut=st.integers(min_value=1, max_value=9),
       cycles=st.sampled_from(CAPACITIES))
@settings(deadline=None)
def test_checkpoint_restore_matches_uninterrupted(sizes, cut, cycles):
    """Shared group state round-trips through a pickled checkpoint."""
    cut = min(cut, len(sizes) - 1)
    batches = _batches(sizes)

    system = _config(True, cycles).build(_queries(3))
    session = system.open_session(time_bin=TIME_BIN)
    for batch in batches[:cut]:
        session.ingest(batch)
    payload = pickle.dumps(session.state_dict())
    # The uninterrupted run continues on the live session...
    for batch in batches[cut:]:
        session.ingest(batch)
    straight = session.close()
    # ...while the restored copy resumes from the checkpoint.
    restored = type(session).from_state(pickle.loads(payload))
    for batch in batches[cut:]:
        restored.ingest(batch)
    resumed = restored.close()
    assert_results_identical(straight, resumed,
                             f"sizes={sizes} cut={cut} cycles={cycles}")


# ----------------------------------------------------------------------
# Regression: commit must hold the batch, not its id()
# ----------------------------------------------------------------------
def test_commit_holds_pending_batch_against_id_recycling():
    """``extract(update_state=False)`` used to remember only ``id(batch)``;
    once the batch was garbage-collected a later batch could land on the
    recycled id and ``commit`` would merge the *stale* pending counters.
    The fix holds the batch object itself, which both prevents the id from
    being recycled while a commit is pending and makes the identity check
    exact."""
    extractor = FeatureExtractor(measurement_interval=10.0, method="exact")
    first = make_batch(n=50, seed=1, start_ts=0.0)
    extractor.extract(first, update_state=False)
    stale_id = id(first)
    del first
    gc.collect()
    # The pending batch is pinned by the extractor itself, so its id cannot
    # be handed to a newly allocated batch while the commit is pending.
    assert extractor._pending_batch is not None
    assert id(extractor._pending_batch) == stale_id

    second = make_batch(n=70, seed=2, start_ts=0.05, n_hosts=40)
    extractor.commit(second)

    # The committed state must be exactly what a fresh extractor gets from
    # committing ``second`` alone — no trace of the stale pending batch.
    reference = FeatureExtractor(measurement_interval=10.0, method="exact")
    reference.extract(second, update_state=False)
    reference.commit(second)
    probe = make_batch(n=30, seed=3, start_ts=0.1, n_hosts=40)
    got = extractor.extract(probe, update_state=False)
    want = reference.extract(probe, update_state=False)
    assert np.array_equal(got.values, want.values)
