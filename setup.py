"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``python setup.py develop`` keeps working on environments without the
``wheel`` package or network access (editable PEP 660 installs need to build
a wheel, the legacy develop command does not).
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
