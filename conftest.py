"""Pytest bootstrap: make ``src/`` importable without an installed package.

The project is normally installed with ``pip install -e .``; this fallback
keeps ``pytest`` usable in offline environments where the editable install
cannot build (it needs the ``wheel`` package).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_configure(config):
    # Deprecations raised by the repro package itself are hard errors under
    # test: internal code must stay off shimmed compatibility paths, and any
    # test that exercises a shim on purpose has to say so with
    # ``pytest.warns``.  Third-party DeprecationWarnings are unaffected.
    config.addinivalue_line(
        "filterwarnings",
        "error::repro.monitor.config.ReproDeprecationWarning")
