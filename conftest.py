"""Pytest bootstrap: make ``src/`` importable without an installed package.

The project is normally installed with ``pip install -e .``; this fallback
keeps ``pytest`` usable in offline environments where the editable install
cannot build (it needs the ``wheel`` package).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
