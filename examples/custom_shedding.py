#!/usr/bin/env python3
"""Custom load shedding and enforcement (Chapter 6).

The signature-based P2P detector is not robust to packet sampling: losing a
handshake packet makes a flow undetectable.  This example runs the same
overloaded system twice — once with the detector behind plain packet
sampling, once with its own flow-wise custom shedding method — and then shows
the enforcement policy disabling a selfish variant that refuses to shed.
"""

from repro.experiments import chapter6, runner, scenarios
from repro.queries import SelfishP2PDetectorQuery, make_query


def main() -> None:
    trace = scenarios.payload_trace(seed=17, duration=8.0)
    print(f"Payload trace: {len(trace)} packets over {trace.duration:.1f} s")

    comparison = chapter6.figure_6_1_custom_vs_sampling(trace=trace,
                                                        overload=0.5)
    print("\nP2P-detector error at K=0.5:")
    for label, error in comparison["p2p_error"].items():
        print(f"  {label:<16} {error:.3f}")

    # A selfish query that ignores the shedding request gets policed.
    well_behaved = ["counter", "flows", "high-watermark"]
    capacity, _ = runner.calibrate_capacity(well_behaved + ["p2p-detector"],
                                            trace)
    queries = [make_query(name) for name in well_behaved]
    queries.append(SelfishP2PDetectorQuery())
    config = runner.system_config(strategy="mmfs_pkt",
                                  cycles_per_second=capacity * 0.7)
    system = config.build(queries)
    result = system.run(trace)
    state = system.enforcer.state("p2p-detector-selfish")
    print("\nSelfish p2p-detector under enforcement:")
    print(f"  violations recorded : {state.total_violations}")
    print(f"  times disabled      : {state.total_disables}")
    print(f"  correction factor   : {state.correction:.2f}")
    print(f"  uncontrolled drops  : {result.dropped_packets}")


if __name__ == "__main__":
    main()
