#!/usr/bin/env python3
"""Declarative query mixes: describe *what* runs, ship it anywhere.

A :class:`repro.queries.QuerySpec` names a query kind, its constructor
arguments and an optional packet-filter expression.  A tuple of specs is a
complete query-mix description that

* builds fresh instances on demand (every shard / run gets its own state),
* rides inside :class:`repro.SystemConfig` and round-trips through
  ``to_dict()``/``from_dict()`` (so a JSON file fully describes a run), and
* is what ``python -m repro.replay <trace> --queries specs.json`` consumes.

The example runs a per-protocol accounting mix — the same counter three
times behind different filters, plus two top-k widths — over a synthetic
trace, twice: once from the in-process config, once from a config rebuilt
out of its own JSON serialisation, and checks both executions agree.
"""

import json

from repro.experiments import runner, scenarios
from repro.monitor.config import SystemConfig
from repro.queries import QuerySpec

MIX = (
    QuerySpec("counter", {"name": "counter-all"}),
    QuerySpec("counter", {"name": "counter-tcp"}, filter="tcp"),
    QuerySpec("counter", {"name": "counter-udp"}, filter="udp"),
    QuerySpec("top-k", {"k": 3, "name": "top-3"}),
    QuerySpec("top-k", {"k": 10, "name": "top-10"}),
    "flows",  # plain registry names mix freely with full specs
)


def main() -> None:
    trace = scenarios.header_trace(seed=11, duration=6.0)
    print(f"Generated trace: {len(trace)} packets over {trace.duration:.1f}s")

    config = runner.system_config(mode="predictive", cycles_per_second=5e7,
                                  queries=MIX)
    # The mix is part of the config value object: serialise the whole run
    # description to JSON and rebuild it — nothing else to ship.
    document = json.dumps(config.to_dict(), indent=1)
    rebuilt = SystemConfig.from_dict(json.loads(document))
    assert rebuilt == config

    result = runner.run_system(None, trace, 5e7, config=config)
    rebuilt_result = runner.run_system(None, trace, 5e7, config=rebuilt)

    print("\nPer-query interval counts (declarative mix):")
    for name, log in sorted(result.query_logs.items()):
        print(f"  {name:>12}: {len(log)} intervals")

    tcp = result.query_logs["counter-tcp"].results[-1]["packets"]
    udp = result.query_logs["counter-udp"].results[-1]["packets"]
    total = result.query_logs["counter-all"].results[-1]["packets"]
    print(f"\nLast interval: {total:.0f} packets total, "
          f"{tcp:.0f} tcp + {udp:.0f} udp behind declarative filters")

    for name, log in result.query_logs.items():
        assert rebuilt_result.query_logs[name].results == log.results
    print("\nConfig JSON round-trip reproduced the execution bit for bit.")
    print("\nSame mix from the shell:")
    print("  python -m repro.replay trace.npz --queries specs.json")
    print("  python -m repro.replay trace.npz --queries protocol-split")


if __name__ == "__main__":
    main()
