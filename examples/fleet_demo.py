#!/usr/bin/env python3
"""Fleet federation: hundreds of monitor nodes, one answer, one API.

A production deployment of the paper's load shedder is not one CoMo box but
a fleet of them — per-PoP taps, each watching its slice of the traffic,
each running its own predict/shed loop on its own cycle budget.  This
example builds a weighted 8-node fleet from a declarative topology (the
same JSON/YAML schema ``python -m repro.fleet`` consumes), runs every node
over its flow-partition of a synthetic trace, federates the per-node
results through the declarative ``RESULT_MERGE`` rules into one
``ExecutionResult``, and then proves the whole construction honest: in
reference mode the federated answer is **bit-identical** to a single node
monitoring the entire stream, for every merge-exact query.
"""

from repro import FleetRunner, FleetTopology, NodeSpec
from repro.experiments import runner, scenarios
from repro.fleet import verify_exactness
from repro.queries import parse_query_specs

TIME_BIN = 0.1
QUERY_SPECS = "counter,flows,top-k"


def main() -> None:
    trace = scenarios.build_workload("cesca", seed=42, scale=0.4)

    # A weighted topology: two big PoPs own three quarters of the flow-hash
    # space (and of the fleet's cycle capacity); the small tap runs the
    # cheaper reactive shedder.  The same structure round-trips through
    # FleetTopology.to_dict() / from_dict() — that dict *is* the JSON file
    # format of `python -m repro.fleet topology.json`.
    topology = FleetTopology(
        nodes=[NodeSpec("pop-a", weight=3.0),
               NodeSpec("pop-b", weight=3.0),
               NodeSpec("tap-edge", weight=2.0,
                        overlay={"mode": "reactive"})],
        partition_by="flow-hash",
        defaults={"predictor": "mlr"})

    query_names = [spec.instance_name
                   for spec in parse_query_specs(QUERY_SPECS)]
    capacity, reference = runner.calibrate_capacity(query_names, trace,
                                                    time_bin=TIME_BIN)
    config = runner.system_config(queries=parse_query_specs(QUERY_SPECS),
                                  cycles_per_second=capacity * 0.6)
    print(f"Trace: {len(trace)} packets over {trace.duration:.1f} s; "
          f"fleet capacity {capacity * 0.6:.3g} cycles/s split "
          f"{'/'.join(str(int(w)) for w in topology.weights)} by weight")

    # Run the fleet: every node ingests its flow-affine partition through
    # its own full predict/shed pipeline; the FleetAggregator folds the
    # per-node results (second merge tier) and operational metrics.
    fleet = FleetRunner(topology, config=config)
    result = fleet.run(trace, time_bin=TIME_BIN)
    report = result.report(reference=reference)

    print(f"\nFederated: {report['bins']} bins, "
          f"{report['total_packets']} packets, "
          f"drop fraction {report['drop_fraction']:.2%}, "
          f"mean sampling rate {report['mean_sampling_rate']:.2f}")
    latency = report["bin_latency_seconds"]
    print(f"Per-bin federation latency (straggler node): "
          f"p50={latency['p50'] * 1e3:.2f}ms p95={latency['p95'] * 1e3:.2f}ms "
          f"p99={latency['p99'] * 1e3:.2f}ms")
    for node, execution in zip(topology.nodes, result.node_results):
        print(f"  {node.name:<9} budget={execution.budget.cycles_per_second:>10.3g} "
              f"mode={execution.mode:<10} "
              f"packets={execution.total_packets:>6} "
              f"rate={execution.mean_sampling_rate():.2f}")
    print("Accuracy vs ground truth (federated under shedding):")
    for name, accuracy in sorted(report["accuracy"].items()):
        print(f"  {name:<10} {accuracy:.3f}")

    # The exactness gate: rerun fleet + single node in reference mode (no
    # shedding) — every merge-exact query must agree bit for bit.
    verdict = verify_exactness(topology, trace, config=config,
                               time_bin=TIME_BIN)
    print(f"\nExactness check over {verdict['nodes']} nodes "
          f"({verdict['partition_by']}): "
          f"{'PASS' if verdict['exact_queries_identical'] else 'FAIL'}")
    for name, entry in sorted(verdict["queries"].items()):
        print(f"  {name:<10} merge={entry['exactness']:<7} "
              f"identical={entry['identical']}")
    assert verdict["exact_queries_identical"]


if __name__ == "__main__":
    main()
