#!/usr/bin/env python3
"""Out-of-core replay: synthesise a trace store chunk-wise, stream it back.

``MonitoringSystem.run(trace)`` needs the whole trace in memory, which caps
an experiment at the host's RAM.  This example never holds the trace: it
writes a v2 trace store segment by segment (``generate_trace_store`` keeps
only the current segment alive), then replays it through the full
predict/shed pipeline with ``ingest_trace`` — bins are sliced from the
store's memory-mapped columns through an LRU of a few resident chunks, so
peak memory stays flat no matter how long the trace is.  Scale
``DURATION`` up to multi-hour, multi-GB workloads; the mechanics are
identical.
"""

import tempfile
from pathlib import Path

from repro import ShardedSystem
from repro.experiments import runner
from repro.queries import make_query
from repro.traffic import generate_trace_store, open_trace
from repro.traffic.generator import TrafficProfile

DURATION = 20.0          # seconds of traffic; raise freely, RAM stays flat
SEGMENT = 2.5            # seconds generated (and held) at a time
CHUNK_PACKETS = 4096     # rows per streaming chunk
MAX_CHUNKS = 4           # LRU budget: at most this many resident chunks
QUERY_SET = ("counter", "flows", "top-k")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-store-"))
    profile = TrafficProfile(duration=DURATION, flow_arrival_rate=400.0,
                             name="large-synthetic")

    # 1. Write the store chunk-at-a-time: only one SEGMENT is ever in RAM.
    store = generate_trace_store(workdir / "store", profile, seed=7,
                                 segment_duration=SEGMENT)
    size_mb = sum(f.stat().st_size for f in store.path.iterdir()) / 1e6
    print(f"Wrote {store.path}: {store.num_packets:,} packets "
          f"({size_mb:.1f} MB on disk, {int(DURATION / SEGMENT)} segments)")

    # 2. Reopen it (open_trace dispatches on the format) and build the
    #    streaming view; columns are memory-mapped, nothing is loaded yet.
    streaming = open_trace(store.path).streaming(
        chunk_packets=CHUNK_PACKETS, max_resident_chunks=MAX_CHUNKS)
    print(f"Streaming view: {streaming.num_chunks} chunks of "
          f"{CHUNK_PACKETS:,} packets, at most {MAX_CHUNKS} resident")

    # 3. Calibrate and replay out-of-core through the full pipeline.
    capacity, _ = runner.calibrate_capacity(QUERY_SET, streaming)
    config = runner.system_config(cycles_per_second=capacity * 0.5, seed=1)
    session = config.build(
        [make_query(name) for name in QUERY_SET]).open_session(
        name=streaming.name)
    result = runner.ingest_trace(session, streaming)
    print(f"\nSerial replay: {len(result.bins)} bins, dropped "
          f"{result.dropped_packets:,}/{result.total_packets:,} packets, "
          f"mean sampling rate {result.mean_sampling_rate():.2f}")
    print(f"Chunk cache: resident peak {streaming.max_resident}/"
          f"{MAX_CHUNKS}, {streaming.cache_hits} hits / "
          f"{streaming.cache_misses} misses")

    # 4. The same store through four flow-affine shards, still out-of-core.
    sharded_config = config.replace(num_shards=4)
    sharded = ShardedSystem(
        lambda: [make_query(name) for name in QUERY_SET],
        config=sharded_config)
    fresh = open_trace(store.path).streaming(
        chunk_packets=CHUNK_PACKETS, max_resident_chunks=MAX_CHUNKS)
    merged = sharded.open_session(name=fresh.name).ingest_trace(fresh).close()
    print(f"\nSharded x4 replay: {len(merged.bins)} bins, dropped "
          f"{merged.dropped_packets:,} packets, resident peak "
          f"{fresh.max_resident}/{MAX_CHUNKS}")


if __name__ == "__main__":
    main()
