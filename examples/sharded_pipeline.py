#!/usr/bin/env python3
"""Sharded pipeline: one stream, N flow-affine shard workers, one result.

A single monitoring system executes every query on every bin on one core.
This example partitions the same stream across four shard pipelines — each
a full predict/allocate/shed/execute loop on a quarter of the cycle budget
— rebalances unused capacity between shards bin by bin, and folds the
per-shard results back into one stream-global execution whose accuracy is
compared against both the unsharded system and the ground-truth reference.

The last section re-runs the streamed replay on the **persistent worker
backend** (`backend="workers"`): one resident process per shard, per-bin
batches shipped through shared memory — same results, bit for bit, with
the shard pipelines actually running in parallel.
"""

import time

from repro import ShardedSystem
from repro.experiments import runner, scenarios
from repro.monitor.workers import fork_start_available
from repro.queries import make_query

TIME_BIN = 0.1
QUERY_SET = ("counter", "flows", "top-k", "application")
NUM_SHARDS = 4


def query_factory():
    """Each shard gets fresh query instances (independent per-shard state)."""
    return [make_query(name) for name in QUERY_SET]


def main() -> None:
    trace = scenarios.build_workload("cesca", seed=42, scale=0.4)
    capacity, reference = runner.calibrate_capacity(QUERY_SET, trace)
    overloaded = capacity * 0.5  # K = 0.5: half the needed capacity
    print(f"Trace: {len(trace)} packets over {trace.duration:.1f} s; "
          f"capacity {overloaded:.3g} cycles/s (overload K=0.5)")

    # The classic single-system run: the whole budget, one pipeline.
    unsharded = runner.run_system(QUERY_SET, trace, overloaded)

    # Sharded: the stream is flow-hash partitioned over NUM_SHARDS shard
    # sessions, each owning 1/N of the budget; per-bin rebalancing lends
    # predicted headroom from underloaded shards to overloaded ones.
    config = runner.system_config(cycles_per_second=overloaded,
                                  num_shards=NUM_SHARDS)
    sharded = ShardedSystem(query_factory, config=config).run(
        trace, time_bin=TIME_BIN)

    # The same topology driven as a push-based streaming session.
    session = ShardedSystem(query_factory, config=config).open_session(
        time_bin=TIME_BIN, name=trace.name)
    for batch in trace.batches(TIME_BIN):
        record = session.ingest(batch)  # merged stream-global BinRecord
    streamed = session.close()
    print(f"Streaming ingest: {len(streamed.bins)} bins, last bin saw "
          f"{record.incoming_packets} packets on {NUM_SHARDS} shards")

    print(f"\n{'query':<14} {'unsharded':>10} {'sharded':>10}")
    plain = runner.accuracy_by_query(unsharded, reference)
    merged = runner.accuracy_by_query(sharded, reference)
    for name in sorted(plain):
        print(f"{name:<14} {plain[name]:>10.3f} {merged[name]:>10.3f}")
    print(f"\nuncontrolled drops: unsharded={unsharded.dropped_packets} "
          f"sharded={sharded.dropped_packets}")
    print(f"mean sampling rate: unsharded={unsharded.mean_sampling_rate():.2f} "
          f"sharded={sharded.mean_sampling_rate():.2f}")

    # Persistent shard workers: the same stream, but each shard pipeline
    # lives in its own long-lived process and bins travel through shared
    # memory.  Rebalancing still works — capacity messages piggyback on the
    # bin stream — and the merged result is bit-identical to the in-process
    # session above.
    if not fork_start_available():
        print("\n(fork start method unavailable; skipping worker backend)")
        return
    with ShardedSystem(query_factory, config=config,
                       backend="workers").open_session(
            time_bin=TIME_BIN, name=trace.name) as workers:
        start = time.perf_counter()
        workers.ingest_trace(trace)
        parallel = workers.close()
        elapsed = time.perf_counter() - start
    identical = all(
        parallel.query_logs[name].results == streamed.query_logs[name].results
        for name in parallel.query_logs)
    print(f"\npersistent workers x{NUM_SHARDS}: {len(parallel.bins)} bins in "
          f"{elapsed:.2f}s; bit-identical to in-process session: {identical}")


if __name__ == "__main__":
    main()
