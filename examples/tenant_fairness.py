#!/usr/bin/env python3
"""Multi-tenant fairness: budgets, floors and starvation-freedom.

Three tenants share one monitor under heavy overload:

* ``ops`` — two cheap operational queries, double weight and a 5%
  sampling-rate floor (the on-call dashboards must never go dark);
* ``research`` — expensive ranking/classification queries, capped at half
  the bin budget however much they ask for;
* ``greedy`` — a tenant whose queries inflate their minimum sampling
  rates far beyond what the box can honour.

The example runs a predictive ``mmfs_cpu`` system over a synthetic trace,
prints the per-tenant cycle accounting, and then drops to the allocator to
show the two guarantees directly: nobody is starved below a declared
floor, and when floors cannot fit, the inflated demands are the ones
disabled — the Section 5.2.1 anti-cheating rule applied per tenant.
"""

import numpy as np

from repro import SystemConfig, TenantGroup
from repro.core.fairness import name_ranks
from repro.core.tenancy import TenantAssignment, TenantRegistry
from repro.traffic import TrafficProfile, generate_trace


def build_config() -> SystemConfig:
    tenants = (
        TenantGroup(name="ops",
                    queries=(("counter", {"name": "pkts"}),
                             ("flows", {"name": "flows"})),
                    weight=2.0, min_rate=0.05),
        TenantGroup(name="research",
                    queries=(("top-k", {"name": "talkers"}),
                             ("application", {"name": "apps"})),
                    budget_share=0.5),
        TenantGroup(name="greedy",
                    queries=(("high-watermark", {"name": "peak"}),),),
    )
    # 'queries' is derived from the tenant groups; a modest budget keeps
    # the system overloaded so the allocator has real decisions to make.
    return SystemConfig(mode="predictive", strategy="mmfs_cpu",
                        tenants=tenants, cycles_per_second=1.5e7, seed=7)


def run_monitor(config: SystemConfig) -> None:
    trace = generate_trace(
        TrafficProfile(duration=6.0, flow_arrival_rate=300.0,
                       with_payloads=False, name="tenancy-demo"), seed=21)
    result = config.build().run(trace, time_bin=0.2)
    totals = result.tenant_cycle_totals()
    grand = sum(totals.values()) or 1.0
    print("Per-tenant cycle accounting "
          f"(drop fraction {result.drop_fraction:.3f}):")
    for tenant in sorted(totals):
        share = totals[tenant] / grand
        print(f"  {tenant:10s} {totals[tenant]:14.3e} cycles  "
              f"({share:5.1%} of accounted work)")


def show_floor_guarantee() -> None:
    print("\nFloors under 10x overload (400 queries, 40 tenants):")
    rng = np.random.default_rng(3)
    names = [f"q{i:04d}" for i in range(400)]
    groups = tuple(
        TenantGroup(name=f"tenant-{slot:02d}",
                    queries=tuple(("counter", {"name": member})
                                  for member in names[slot::40]),
                    min_rate=0.02)
        for slot in range(40))
    registry = TenantRegistry(groups)
    ids = np.array([registry.slot(registry.declared_tenant_of[name])
                    for name in names], dtype=np.intp)
    predicted = rng.uniform(1e3, 1e5, 400)
    min_rates = np.array([registry.min_rate_for(name) for name in names])
    capacity = 0.1 * float(predicted.sum())
    allocation = TenantAssignment(registry, ids).allocate(
        "mmfs_cpu", names, predicted, min_rates, capacity,
        rank=name_ranks(names))
    rates = np.array([allocation.rate(name) for name in names])
    print(f"  disabled queries: {len(allocation.disabled)}")
    print(f"  minimum sampling rate: {rates.min():.4f} "
          f"(declared floor 0.0200)")
    print(f"  cycles used: {allocation.total_cycles / capacity:.6f} "
          "of capacity")


def show_anti_cheating() -> None:
    print("\nInflated floors are disabled first, not rewarded:")
    names = [f"honest-{i}" for i in range(10)] + ["cheater"]
    predicted = np.full(11, 1000.0)
    predicted[-1] = 50_000.0
    min_rates = np.full(11, 0.5)
    min_rates[-1] = 1.0  # demands its full (inflated) load as a floor
    registry = TenantRegistry(())
    ids = np.array([registry.assign(name) for name in names], dtype=np.intp)
    allocation = TenantAssignment(registry, ids).allocate(
        "mmfs_cpu", names, predicted, min_rates, 6000.0)
    print(f"  disabled: {allocation.disabled}")
    print(f"  honest queries still active: "
          f"{sum(1 for n in names[:-1] if n not in allocation.disabled)}"
          f"/10")


def main() -> None:
    config = build_config()
    run_monitor(config)
    show_floor_guarantee()
    show_anti_cheating()


if __name__ == "__main__":
    main()
