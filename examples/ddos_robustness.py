#!/usr/bin/env python3
"""Prediction robustness during a DDoS attack against the monitor.

Reproduces the scenario of Figures 3.13-3.15: a spoofed-source denial of
service attack that goes on and off every other second is injected into
normal traffic, and the three predictors (EWMA, SLR, MLR+FCBF) are compared
on the flows query, which is the most affected by the flow-count explosion.
"""

from repro.core.prediction import EWMAPredictor, MLRPredictor, SLRPredictor
from repro.experiments import runner, scenarios
from repro.queries import make_query


def main() -> None:
    trace = scenarios.ddos_trace(seed=21, duration=10.0)
    print(f"Trace with on/off DDoS: {len(trace)} packets over "
          f"{trace.duration:.1f} s")

    observations = runner.collect_observations(make_query("flows"), trace)
    predictors = {
        "EWMA (alpha=0.3)": EWMAPredictor(alpha=0.3),
        "SLR (packets)": SLRPredictor(feature="packets"),
        "MLR + FCBF": MLRPredictor(),
    }
    print("\nRelative prediction error for the flows query under attack:")
    for label, predictor in predictors.items():
        tracker = runner.evaluate_predictor(predictor, observations)
        print(f"  {label:<18} mean {tracker.mean:6.3f}   "
              f"95th pct {tracker.percentile(95):6.3f}   "
              f"max {tracker.maximum:6.3f}")

    mlr = MLRPredictor()
    runner.evaluate_predictor(mlr, observations)
    mlr.predict(observations.features[-1])
    print("\nFeatures the MLR selected at the end of the run:",
          ", ".join(mlr.selected_features))


if __name__ == "__main__":
    main()
