#!/usr/bin/env python3
"""Fairness of service with competing queries (Chapter 5).

Runs a mixed query set (cheap counters next to the expensive trace and
ranking queries) at increasing overload and compares three systems: the
original one (no load shedding), the single-rate ``eq_srates`` shedder and
the packet-access max-min fair ``mmfs_pkt`` shedder.  It also verifies the
Nash-equilibrium property of the allocation game.
"""

import numpy as np

from repro.core import game
from repro.experiments import runner, scenarios
from repro.experiments.reporting import format_table


def main() -> None:
    queries = ("counter", "application", "flows", "high-watermark",
               "top-k", "trace")
    trace = scenarios.header_trace(seed=13, duration=8.0)
    capacity, reference = runner.calibrate_capacity(queries, trace)

    rows = []
    for overload in (0.3, 0.6):
        for label, mode, strategy in (("no_lshed", "original", "eq_srates"),
                                      ("eq_srates", "predictive", "eq_srates"),
                                      ("mmfs_pkt", "predictive", "mmfs_pkt")):
            result = runner.run_system(queries, trace,
                                       capacity * (1.0 - overload),
                                       mode=mode, strategy=strategy)
            accuracy = runner.accuracy_by_query(result, reference)
            rows.append({
                "overload K": overload,
                "system": label,
                "avg accuracy": float(np.mean(list(accuracy.values()))),
                "min accuracy": float(np.min(list(accuracy.values()))),
                "drops": result.dropped_packets,
            })
    print(format_table(rows, ["overload K", "system", "avg accuracy",
                              "min accuracy", "drops"],
                       title="Figure 5.4-style comparison"))

    # Theorem 5.1: the only equilibrium is everyone asking for C / n cycles.
    capacity_units, players = 1.0, 5
    equal = game.equilibrium_profile(players, capacity_units)
    print("\nNash equilibrium check (Theorem 5.1):")
    print("  equal-share profile is an equilibrium:",
          game.is_nash_equilibrium(equal, capacity_units, grid=200))
    print("  all-greedy profile is an equilibrium:",
          game.is_nash_equilibrium([capacity_units] * players, capacity_units,
                                   grid=200))


if __name__ == "__main__":
    main()
