#!/usr/bin/env python3
"""Streaming sessions: push batches from a generator, reconfigure live.

The load shedding scheme is an online system — it sheds load on live traffic
with no a-priori knowledge of the workload.  This example drives it the way a
live deployment would: batches are *pushed* into a :class:`MonitoringSession`
from a generator (here: a synthetic capture feed), and the running session is
reconfigured on the fly — a new query arrives mid-run and the host's capacity
is cut, both taking effect at the next bin boundary.
"""

from repro import SystemConfig
from repro.experiments import runner, scenarios
from repro.queries import make_query

TIME_BIN = 0.1


def capture_feed(trace):
    """Stand-in for a live capture process: yields one batch per time bin."""
    yield from trace.batches(TIME_BIN)


def main() -> None:
    base_queries = ("counter", "flows", "high-watermark")
    trace = scenarios.header_trace(seed=21, duration=8.0)
    print(f"Streaming {len(trace)} packets over {trace.duration:.1f} s "
          f"in {TIME_BIN * 1000:.0f} ms bins")

    # Calibrate against the full query set (including the one that will
    # arrive later) so the capacity is meaningful throughout.
    capacity, reference = runner.calibrate_capacity(
        base_queries + ("top-k",), trace)

    config = SystemConfig(mode="predictive", strategy="mmfs_pkt",
                          feature_method="exact",
                          cycles_per_second=capacity * 0.6)
    print(f"SystemConfig (serialisable): {config.to_dict()}")

    system = config.build([make_query(name) for name in base_queries])
    session = system.open_session(time_bin=TIME_BIN, name=trace.name)

    arrival_ts = trace.duration * 0.4
    capacity_cut_ts = trace.duration * 0.7
    added = cut = False
    for batch in capture_feed(trace):
        if not added and batch.start_ts >= arrival_ts:
            session.add_query(make_query("top-k"))  # arrives at the next bin
            added = True
            print(f"[t={batch.start_ts:5.1f}s] top-k query submitted "
                  f"({session.bins_ingested} bins in)")
        if not cut and batch.start_ts >= capacity_cut_ts:
            session.set_capacity(capacity * 0.35)   # host slows down
            cut = True
            print(f"[t={batch.start_ts:5.1f}s] capacity cut to 35%")
        session.ingest(batch)
        if session.bins_ingested == int(arrival_ts / TIME_BIN):
            sofar = session.partial_result()
            accuracy = runner.accuracy_by_query(sofar, reference)
            mean = sum(accuracy.values()) / len(accuracy)
            print(f"[t={batch.start_ts:5.1f}s] accuracy so far: {mean:.3f} "
                  f"(rate {sofar.mean_sampling_rate():.2f})")

    result = session.close()
    accuracy = runner.accuracy_by_query(result, reference)
    print("\nFinal execution:")
    print(f"  bins processed      : {len(result.bins)}")
    print(f"  uncontrolled drops  : {result.dropped_packets}")
    print(f"  mean sampling rate  : {result.mean_sampling_rate():.2f}")
    for name in sorted(accuracy):
        print(f"  accuracy[{name:<14}]: {accuracy[name]:.3f}")


if __name__ == "__main__":
    main()
