#!/usr/bin/env python3
"""Run the monitor as a service: live feed, HTTP ops, checkpoint/restore.

``repro.serve`` wraps a streaming session in a long-lived daemon: batches
arrive from a feed (here: synthetic traffic generated on the fly), an
HTTP ops API serves status/metrics and accepts live reconfiguration, and
the whole session state checkpoints to disk and restores bit-identically.

This demo drives the daemon exactly like an operator would — over HTTP:

1. start a daemon on an ephemeral port, fed by a ``GeneratorFeed``;
2. poll ``GET /status``, scrape ``GET /metrics`` (Prometheus text);
3. hot-add a top-k query with ``POST /queries`` mid-stream;
4. snapshot the session with ``POST /checkpoint``;
5. shut down gracefully and restore the checkpoint into a fresh
   in-process session, proving the resumed state is usable.

The same flow works from a shell against ``python -m repro.serve``::

    python -m repro.serve --feed generate --port 8080 \
        --queries counter,flows --cycles-per-second 2e7 &
    curl localhost:8080/status
    curl -X POST localhost:8080/queries -d '{"kind": "top-k"}'
    curl localhost:8080/metrics
    kill -TERM %1   # graceful: drain, checkpoint, close
"""

import asyncio
import json
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.experiments import runner
from repro.serve import GeneratorFeed, MonitorDaemon, restore_session
from repro.traffic.generator import TrafficProfile

CAPACITY = 2.0e7
TIME_BIN = 0.1


def http(method, port, path, document=None):
    data = json.dumps(document).encode() if document is not None else None
    req = urllib.request.Request(f"http://127.0.0.1:{port}{path}",
                                 data=data, method=method)
    with urllib.request.urlopen(req, timeout=10) as resp:
        body = resp.read()
    return body.decode() if path == "/metrics" else json.loads(body)


def main() -> None:
    profile = TrafficProfile(duration=6.0, flow_arrival_rate=200.0,
                             name="serve-demo")
    config = runner.system_config(mode="predictive",
                                  queries="counter,flows",
                                  cycles_per_second=CAPACITY, seed=7)
    checkpoint_dir = Path(tempfile.mkdtemp(prefix="repro-serve-"))
    daemon = MonitorDaemon(
        config, GeneratorFeed(profile, seed=7, time_bin=TIME_BIN),
        checkpoint_dir=checkpoint_dir, name="demo")

    # The daemon owns an asyncio loop; run it on a thread so this script
    # can play the operator from the outside, over plain HTTP.
    thread = threading.Thread(target=lambda: asyncio.run(daemon.run()))
    thread.start()
    while daemon.bound_port == 0:
        time.sleep(0.01)
    port = daemon.bound_port
    print(f"daemon up: http://127.0.0.1:{port}")

    while http("GET", port, "/status")["bins_ingested"] < 20:
        time.sleep(0.02)
    status = http("GET", port, "/status")
    print(f"status: {status['bins_ingested']} bins, "
          f"{status['packets']:,} packets, "
          f"queries {sorted(status['queries'])}")

    added = http("POST", port, "/queries",
                 {"kind": "top-k", "kwargs": {"k": 10}})
    print(f"hot-added query {added['added']!r} (applies next bin)")

    ckpt = http("POST", port, "/checkpoint")
    print(f"checkpointed at bin {ckpt['bins_ingested']} "
          f"-> {ckpt['checkpoint']}")
    # Graceful shutdown writes a final checkpoint over the same file, so
    # keep the mid-stream snapshot under its own name.
    snapshot = checkpoint_dir / "mid-stream.pkl"
    snapshot.write_bytes(Path(ckpt["checkpoint"]).read_bytes())

    metrics = http("GET", port, "/metrics")
    shown = [line for line in metrics.splitlines()
             if line.startswith(("repro_bins", "repro_packets",
                                 "repro_dropped"))]
    print("metrics sample:")
    for line in shown:
        print(f"  {line}")

    http("POST", port, "/shutdown")
    thread.join()
    result = daemon.result
    print(f"final result: {len(result.bins)} bins, dropped "
          f"{result.dropped_packets:,}/{result.total_packets:,} "
          f"({result.drop_fraction:.1%}), "
          f"queries {sorted(result.query_logs)}")

    # Restore the mid-stream checkpoint into a fresh session and keep
    # going by hand — the resumed session carries the pending top-k add.
    restored = restore_session(snapshot)
    print(f"restored session at bin {restored.bins_ingested}; "
          f"resuming in-process...")

    async def regenerate():  # the same deterministic stream, offline
        feed = GeneratorFeed(profile, seed=7, time_bin=TIME_BIN)
        return [batch async for batch in feed.batches()]

    for batch in asyncio.run(regenerate())[restored.bins_ingested:]:
        restored.ingest(batch)
    resumed = restored.close()
    print(f"resumed result: {len(resumed.bins)} bins, "
          f"queries {sorted(resumed.query_logs)}")
    assert "top-k" in resumed.query_logs


if __name__ == "__main__":
    main()
