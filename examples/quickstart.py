#!/usr/bin/env python3
"""Quickstart: run the predictive load shedding system over a synthetic trace.

The example builds a CESCA-like synthetic trace, runs a small query set at an
overload factor of K=0.5 (the system only has half the cycles it would need
to process everything) and prints what the load shedder did and how accurate
the query results remained compared with an unshedded reference execution.
"""

from repro.experiments import runner, scenarios
from repro.experiments.reporting import format_table


def main() -> None:
    queries = ("counter", "application", "flows", "top-k", "high-watermark")
    trace = scenarios.header_trace(seed=7, duration=8.0)
    print(f"Generated trace: {len(trace)} packets over {trace.duration:.1f} s")

    # Calibrate the capacity so that K = 0.5 means "demand is twice capacity".
    capacity, reference = runner.calibrate_capacity(queries, trace)
    overload = 0.5
    # Every system knob lives in one serialisable SystemConfig;
    # runner.system_config() is the harness default with overrides applied.
    config = runner.system_config(mode="predictive", strategy="mmfs_pkt")
    result = runner.run_system(queries, trace, capacity * (1.0 - overload),
                               config=config)

    print(f"\nOverload factor K = {overload}")
    print(f"Uncontrolled packet drops : {result.dropped_packets}")
    print(f"Mean sampling rate        : {result.mean_sampling_rate():.2f}")
    print(f"Packets left unsampled    : {result.unsampled_packets:.0f} "
          f"of {result.total_packets}")

    accuracy = runner.accuracy_by_query(result, reference)
    rows = [{"query": name, "accuracy": value}
            for name, value in sorted(accuracy.items())]
    print()
    print(format_table(rows, ["query", "accuracy"],
                       title="Accuracy versus the unshedded reference"))


if __name__ == "__main__":
    main()
