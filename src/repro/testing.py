"""Assertion helpers shared by the test suite and the benchmarks.

The repository pins several execution paths as *bit-identical* (serial vs
pooled, run() vs hand-driven session, in-memory vs out-of-core replay);
they must all mean the same thing by it, so the comparison lives here.
"""

from __future__ import annotations

import numpy as np

#: Per-bin series that must match bit for bit for two executions to count
#: as identical.
IDENTITY_SERIES = ("query_cycles", "mean_rate", "dropped_packets",
                   "predicted_cycles", "total_cycles", "delay")


def assert_results_identical(first, second, label: str = "") -> None:
    """Assert two :class:`ExecutionResult` objects are bit-identical.

    Compares the per-bin accounting series of :data:`IDENTITY_SERIES` with
    exact array equality plus every query log's interval boundaries and
    results.  ``label`` tags the failing assertion (mode, shard count, ...).
    """
    assert len(first.bins) == len(second.bins), label
    for name in IDENTITY_SERIES:
        assert np.array_equal(first.series(name), second.series(name)), \
            (label, name)
    assert set(first.query_logs) == set(second.query_logs), label
    for name, log in first.query_logs.items():
        other = second.query_logs[name]
        assert log.intervals == other.intervals, (label, name)
        assert log.results == other.results, (label, name)
