"""Replay a stored trace through the monitoring system from the shell.

::

    PYTHONPATH=src python -m repro.replay path/to/trace \\
        --queries counter,flows --mode predictive --overload 0.5

``path/to/trace`` is either a v1 ``.npz`` archive or a v2 trace-store
directory (see ``repro.traffic.trace_io``).  Stores replay out-of-core:
bins are sliced from memory-mapped columns through a bounded chunk cache,
so the trace may be far larger than RAM.  The capacity handed to the
system is either explicit (``--cycles-per-second``) or derived from a
calibration pass at overload factor ``K`` (``--overload``, the paper's
convention: capacity = (1 - K) × the no-shedding capacity; the calibration
is a full reference replay of the trace).

Prints a human-readable result summary, or a JSON document with ``--json``
(machine-readable, stable keys).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

# The shared system/sharding flag surface moved to :mod:`repro.cli` (it is
# consumed by repro.replay, repro.serve and repro.fleet alike); the names
# are re-exported here for callers that imported them from this module.
from .cli import (add_system_args, apply_system_args,  # noqa: F401
                  resolve_query_specs)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replay",
        description="Replay a trace (v1 .npz or v2 store) through the "
                    "load-shedding monitoring pipeline.")
    parser.add_argument("trace", help="path to a .npz trace or a trace-store "
                                      "directory")
    add_system_args(parser)
    capacity = parser.add_mutually_exclusive_group()
    capacity.add_argument("--cycles-per-second", type=float, default=None,
                          help="explicit cycle capacity of the host")
    capacity.add_argument("--overload", type=float, default=0.5,
                          help="overload factor K in [0, 1): capacity is "
                               "(1 - K) x the calibrated no-shedding "
                               "capacity (default: %(default)s)")
    parser.add_argument("--chunk-packets", type=int, default=65536,
                        help="packets per streaming chunk for v2 stores "
                             "(default: %(default)s)")
    parser.add_argument("--max-chunks", type=int, default=8,
                        help="max resident chunks in the streaming LRU "
                             "(default: %(default)s)")
    parser.add_argument("--prefetch", action="store_true",
                        help="prefetch the next streaming chunk on a "
                             "background thread so store I/O overlaps "
                             "shard compute")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the summary as JSON")
    return parser


def _summary(result, trace, args, capacity: float, streaming) -> dict:
    rates = [record.mean_rate for record in result.bins if record.rates]
    summary = {
        "trace": {
            "name": trace.name,
            "packets": int(len(trace)),
            "duration_seconds": float(trace.duration),
            "bins": len(result.bins),
            "streaming": streaming is not None,
        },
        "system": {
            "mode": result.mode,
            "strategy": result.strategy,
            "num_shards": args.num_shards,
            "backend": args.backend,
            "n_workers": args.n_workers,
            "cycles_per_second": float(capacity),
            "time_bin": args.time_bin,
        },
        "outcome": {
            "total_packets": result.total_packets,
            "dropped_packets": result.dropped_packets,
            "drop_fraction": float(result.drop_fraction),
            "mean_sampling_rate": float(np.mean(rates)) if rates else 1.0,
            "intervals_by_query": {name: len(log.results)
                                   for name, log in
                                   sorted(result.query_logs.items())},
        },
    }
    if streaming is not None:
        summary["streaming"] = {
            "chunk_packets": streaming.chunk_packets,
            "num_chunks": streaming.num_chunks,
            "max_resident_chunks": streaming.max_resident_chunks,
            "max_resident": streaming.max_resident,
            "cache_hits": streaming.cache_hits,
            "cache_misses": streaming.cache_misses,
            "prefetched": streaming.prefetched,
        }
    return summary


def _print_human(summary: dict) -> None:
    trace, system, outcome = (summary["trace"], summary["system"],
                              summary["outcome"])
    print(f"trace     {trace['name']}: {trace['packets']:,} packets, "
          f"{trace['duration_seconds']:.1f}s, {trace['bins']} bins"
          f"{' (streamed out-of-core)' if trace['streaming'] else ''}")
    print(f"system    mode={system['mode']} strategy={system['strategy']} "
          f"shards={system['num_shards']} "
          f"capacity={system['cycles_per_second']:.3g} cycles/s")
    print(f"outcome   dropped {outcome['dropped_packets']:,}/"
          f"{outcome['total_packets']:,} packets "
          f"({outcome['drop_fraction']:.1%}), mean sampling rate "
          f"{outcome['mean_sampling_rate']:.3f}")
    intervals = ", ".join(f"{name}={count}" for name, count in
                          outcome["intervals_by_query"].items())
    print(f"intervals {intervals}")
    if "streaming" in summary:
        s = summary["streaming"]
        print(f"chunks    {s['num_chunks']} x {s['chunk_packets']:,} pkt, "
              f"resident <= {s['max_resident']}/{s['max_resident_chunks']}, "
              f"cache {s['cache_hits']} hits / {s['cache_misses']} misses")


def main(argv: Optional[List[str]] = None) -> int:
    # Imports deferred so ``--help`` answers without loading the package.
    from .experiments import runner
    from .traffic.trace_io import TraceStore, open_trace

    args = build_parser().parse_args(argv)
    try:
        query_specs = resolve_query_specs(args.queries)
    except (KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not query_specs:
        print("error: no queries given", file=sys.stderr)
        return 2

    source = open_trace(args.trace)
    streaming = None
    if isinstance(source, TraceStore):
        streaming = source.streaming(chunk_packets=args.chunk_packets,
                                     max_resident_chunks=args.max_chunks,
                                     prefetch=args.prefetch)
        trace = streaming
    else:
        trace = source

    # The query mix rides inside the config, so the whole run description
    # round-trips through SystemConfig.to_dict()/from_dict().
    config = apply_system_args(runner.system_config(), args)

    if args.cycles_per_second is not None:
        capacity = float(args.cycles_per_second)
    else:
        if not 0.0 <= args.overload < 1.0:
            print("error: --overload must be in [0, 1)", file=sys.stderr)
            return 2
        base, _ = runner.calibrate_capacity(query_specs, trace,
                                            time_bin=args.time_bin)
        capacity = base * (1.0 - args.overload)
        if streaming is not None:
            # The calibration pass replayed the stream once; measure the
            # evaluated run on a fresh chunk cache so the reported
            # residency/hit telemetry describes that run alone.
            streaming = source.streaming(
                chunk_packets=args.chunk_packets,
                max_resident_chunks=args.max_chunks,
                prefetch=args.prefetch)
            trace = streaming

    result = runner.run_system(None, trace, capacity,
                               time_bin=args.time_bin, config=config,
                               num_shards=args.num_shards,
                               n_workers=args.n_workers)
    summary = _summary(result, trace, args, capacity, streaming)
    if args.as_json:
        print(json.dumps(summary, indent=1))
    else:
        _print_human(summary)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
