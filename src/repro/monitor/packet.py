"""Packet and batch data model.

The monitoring system processes the input packet stream in *batches*: groups
of packets that arrived during a fixed ``time_bin`` (100 ms in the paper).
A :class:`Batch` is a column store backed by NumPy arrays so that feature
extraction, sampling and most query computations can be vectorised, while a
per-packet view (:class:`Packet`) is still available for queries written in a
packet-at-a-time style (e.g. pattern search over payloads).

Column layout
-------------
``ts``        float64   packet timestamp (seconds)
``src_ip``    uint32    source IPv4 address
``dst_ip``    uint32    destination IPv4 address
``src_port``  uint16    source transport port
``dst_port``  uint16    destination transport port
``proto``     uint8     IP protocol number (6 = TCP, 17 = UDP, ...)
``size``      uint32    packet size on the wire in bytes
``payload``   optional list of ``bytes`` (only present in full-payload traces)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core import aggregate
from ..core.hashing import combine_columns

#: IP protocol numbers used throughout the code base.
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_ICMP = 1

#: Names of the integer header columns stored in a batch, in canonical order.
HEADER_FIELDS = ("src_ip", "dst_ip", "src_port", "dst_port", "proto")

#: All per-packet columns of a batch, in canonical order (the column set a
#: trace store persists).
COLUMN_FIELDS = ("ts",) + HEADER_FIELDS + ("size",)

#: Dtype of every persisted column — the one layout shared by the batch
#: constructor, the trace store and the shared-memory batch transport.
COLUMN_DTYPES: Dict[str, np.dtype] = {
    "ts": np.dtype(np.float64),
    "src_ip": np.dtype(np.uint32),
    "dst_ip": np.dtype(np.uint32),
    "src_port": np.dtype(np.uint16),
    "dst_port": np.dtype(np.uint16),
    "proto": np.dtype(np.uint8),
    "size": np.dtype(np.uint32),
}


def column_layout(n: int) -> Tuple[List[Tuple[str, np.dtype, int]], int]:
    """Byte layout of an ``n``-packet columnar block.

    Returns ``(columns, total_nbytes)`` where ``columns`` lists
    ``(name, dtype, byte_offset)`` in canonical :data:`COLUMN_FIELDS` order.
    Each column is stored contiguously and starts at an 8-byte-aligned
    offset, so any buffer-protocol object of ``total_nbytes`` bytes (a
    ``multiprocessing.shared_memory`` view, an mmap, a plain bytearray) can
    hold one batch's columns with aligned zero-copy NumPy views over them.
    This is the wire format of the shard-worker batch transport
    (:mod:`repro.monitor.workers`).
    """
    n = int(n)
    offset = 0
    columns: List[Tuple[str, np.dtype, int]] = []
    for name in COLUMN_FIELDS:
        dtype = COLUMN_DTYPES[name]
        columns.append((name, dtype, offset))
        offset += (n * dtype.itemsize + 7) & ~7
    return columns, offset


@dataclass(frozen=True)
class Packet:
    """A single packet, materialised from a :class:`Batch` row.

    This is a convenience view for per-packet query code; the authoritative
    storage is the column arrays of the owning batch.
    """

    ts: float
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int
    size: int
    payload: Optional[bytes] = None

    @property
    def flow_key(self) -> tuple:
        """The classical 5-tuple identifying the packet's flow."""
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.proto)


class Batch:
    """A set of packets collected during one time bin.

    Parameters
    ----------
    ts, src_ip, dst_ip, src_port, dst_port, proto, size:
        Equal-length 1-D arrays (or sequences) with per-packet values.
    payloads:
        Optional list of ``bytes`` objects, one per packet.  ``None`` for
        header-only traces.
    time_bin:
        Duration in seconds of the bin this batch covers.
    start_ts:
        Timestamp of the start of the bin.  Defaults to the first packet
        timestamp (or 0.0 for an empty batch).
    """

    __slots__ = (
        "ts",
        "src_ip",
        "dst_ip",
        "src_port",
        "dst_port",
        "proto",
        "size",
        "payloads",
        "time_bin",
        "start_ts",
        "_agg_cache",
        "_filter_cache",
        "_parent",
        "_parent_index",
    )

    def __init__(
        self,
        ts,
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        proto,
        size,
        payloads: Optional[List[bytes]] = None,
        time_bin: float = 0.1,
        start_ts: Optional[float] = None,
    ) -> None:
        self.ts = np.asarray(ts, dtype=np.float64)
        self.src_ip = np.asarray(src_ip, dtype=np.uint32)
        self.dst_ip = np.asarray(dst_ip, dtype=np.uint32)
        self.src_port = np.asarray(src_port, dtype=np.uint16)
        self.dst_port = np.asarray(dst_port, dtype=np.uint16)
        self.proto = np.asarray(proto, dtype=np.uint8)
        self.size = np.asarray(size, dtype=np.uint32)
        n = len(self.ts)
        for name in ("src_ip", "dst_ip", "src_port", "dst_port", "proto", "size"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name!r} has length "
                                 f"{len(getattr(self, name))}, expected {n}")
        if payloads is not None and len(payloads) != n:
            raise ValueError(f"payloads has length {len(payloads)}, expected {n}")
        self.payloads = payloads
        self.time_bin = float(time_bin)
        if start_ts is None:
            start_ts = float(self.ts[0]) if n else 0.0
        self.start_ts = float(start_ts)
        self._agg_cache: Optional[Dict[tuple, object]] = None
        self._filter_cache: Optional[Dict[str, "Batch"]] = None
        # Set by ``select``: hashes of a sub-batch are the parent's hashes at
        # the selected rows, so they can be sliced instead of recomputed.
        self._parent: Optional["Batch"] = None
        self._parent_index: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(len(self.ts))

    def __iter__(self) -> Iterator[Packet]:
        return self.packets()

    def packets(self) -> Iterator[Packet]:
        """Iterate over the batch as :class:`Packet` objects."""
        payloads = self.payloads
        for i in range(len(self)):
            yield Packet(
                ts=float(self.ts[i]),
                src_ip=int(self.src_ip[i]),
                dst_ip=int(self.dst_ip[i]),
                src_port=int(self.src_port[i]),
                dst_port=int(self.dst_port[i]),
                proto=int(self.proto[i]),
                size=int(self.size[i]),
                payload=payloads[i] if payloads is not None else None,
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def packet_count(self) -> int:
        """Number of packets in the batch."""
        return len(self)

    @property
    def byte_count(self) -> int:
        """Total bytes (wire sizes) in the batch."""
        return int(self.size.sum()) if len(self) else 0

    @property
    def has_payloads(self) -> bool:
        return self.payloads is not None

    def flow_keys(self) -> np.ndarray:
        """Return a structured array of the per-packet 5-tuples."""
        keys = np.empty(
            len(self),
            dtype=[
                ("src_ip", np.uint32),
                ("dst_ip", np.uint32),
                ("src_port", np.uint16),
                ("dst_port", np.uint16),
                ("proto", np.uint8),
            ],
        )
        keys["src_ip"] = self.src_ip
        keys["dst_ip"] = self.dst_ip
        keys["src_port"] = self.src_port
        keys["dst_port"] = self.dst_port
        keys["proto"] = self.proto
        return keys

    def columns(self, names: Sequence[str]) -> List[np.ndarray]:
        """Return the header columns named in ``names``."""
        return [getattr(self, name) for name in names]

    # ------------------------------------------------------------------
    # Buffer-protocol column export (shared-memory batch transport)
    # ------------------------------------------------------------------
    def buffer_nbytes(self) -> int:
        """Bytes a buffer must hold to :meth:`pack_into` this batch."""
        return column_layout(len(self))[1]

    def pack_into(self, buffer) -> int:
        """Write the packet columns into ``buffer`` (any writable
        buffer-protocol object) using the :func:`column_layout` wire format.

        Payloads are *not* packed — they are variable-length Python objects
        and travel out of band.  Returns the number of bytes used, so a
        caller can reuse one oversized buffer across batches of different
        sizes.  The written block round-trips bit-identically through
        :meth:`from_buffer`.
        """
        n = len(self)
        layout, total = column_layout(n)
        view = memoryview(buffer)
        if view.nbytes < total:
            raise ValueError(f"buffer holds {view.nbytes} bytes; packing "
                             f"{n} packets needs {total}")
        for name, dtype, offset in layout:
            dst = np.frombuffer(view, dtype=dtype, count=n, offset=offset)
            np.copyto(dst, getattr(self, name), casting="no")
        return total

    @classmethod
    def from_buffer(cls, buffer, n: int, time_bin: float = 0.1,
                    start_ts: Optional[float] = None,
                    payloads: Optional[List[bytes]] = None,
                    copy: bool = False) -> "Batch":
        """Rebuild a batch from a :meth:`pack_into` columnar block.

        With ``copy=False`` the batch's columns are zero-copy views into
        ``buffer`` — the caller must keep the buffer alive and unmodified
        for the batch's lifetime.  ``copy=True`` materialises the columns
        (one contiguous memcpy per column), which is what a shard worker
        does before handing the batch to query code: the sender is then
        free to overwrite its shared-memory slot for the next bin.
        """
        n = int(n)
        layout, _ = column_layout(n)
        view = memoryview(buffer)
        columns = {}
        for name, dtype, offset in layout:
            arr = np.frombuffer(view, dtype=dtype, count=n, offset=offset)
            columns[name] = arr.copy() if copy else arr
        return cls(payloads=payloads, time_bin=time_bin, start_ts=start_ts,
                   **columns)

    def memo(self, key: tuple, build):
        """Per-batch memo for immutable derived values.

        Batches are treated as immutable once constructed, so any value
        derived purely from the packet columns (aggregate hashes, distinct
        counters, filter results) can be computed once and shared by every
        consumer.  ``key`` must identify the derivation unambiguously.
        """
        if self._agg_cache is None:
            self._agg_cache = {}
        value = self._agg_cache.get(key)
        if value is None:
            value = build()
            self._agg_cache[key] = value
        return value

    def aggregate_hashes(self, columns: Sequence[str]) -> np.ndarray:
        """Memoised :func:`~repro.core.hashing.combine_columns` over columns.

        Every feature extractor (one per query) and the flowwise samplers
        hash the same header aggregates of the same batch; the combined
        64-bit keys are computed once and shared by all consumers.  For a
        batch produced by :meth:`select`, the hashes are row-wise, so they
        are sliced from the parent batch instead of recomputed.
        """
        key = ("hash", tuple(columns))

        def build() -> np.ndarray:
            if self._parent is not None:
                return self._parent.aggregate_hashes(columns)[
                    self._parent_index]
            return combine_columns(self.columns(tuple(columns)))

        return self.memo(key, build)

    def unique_aggregate_hashes(self, columns: Sequence[str],
                                return_inverse: bool = False):
        """Memoised sorted unique values of :meth:`aggregate_hashes`.

        Several queries (the flow table, the P2P detector's seen-flow set)
        and the feature extractors all reduce the same batch to its unique
        flow keys; the reduction is computed once per batch and shared.
        With ``return_inverse`` the memoised ``(unique, inverse)`` pair is
        returned, so per-unique-key results can be broadcast back to
        packets without a second pass.
        """
        key = ("unique_hash", tuple(columns))
        pair = self.memo(
            key, lambda: np.unique(self.aggregate_hashes(columns),
                                   return_inverse=True))
        return pair if return_inverse else pair[0]

    def unique_values(self, column: str):
        """Memoised ``np.unique(column, return_inverse=True)`` pair.

        The destination-keyed queries (top-k, autofocus) aggregate the
        same batch by the same column; the reduction is shared.
        """
        return self.memo(
            ("unique_column", column),
            lambda: np.unique(getattr(self, column), return_inverse=True))

    # ------------------------------------------------------------------
    # Memoised payload derivations (batched signature scanning)
    # ------------------------------------------------------------------
    def payload_lengths(self) -> np.ndarray:
        """Memoised per-payload byte lengths (requires payloads).

        For a batch produced by :meth:`select` the lengths are sliced from
        the parent batch, mirroring :meth:`aggregate_hashes`.
        """
        def build() -> np.ndarray:
            if self._parent is not None:
                return self._parent.payload_lengths()[self._parent_index]
            return aggregate.payload_lengths(self.payloads)

        return self.memo(("payload_lengths",), build)

    def joined_payloads(self, separator: int):
        """Memoised :func:`repro.core.aggregate.join_payloads` buffer.

        Payload queries searching for separator-free patterns (the P2P
        handshake signatures, the pattern-search signature) share one
        joined haystack per batch instead of re-concatenating payloads for
        every query and every execution pass.
        """
        return self.memo(
            ("payload_join", int(separator)),
            lambda: aggregate.join_payloads(self.payloads, int(separator),
                                            self.payload_lengths()))

    def payload_hits(self, patterns) -> np.ndarray:
        """Payloads containing at least one of ``patterns`` (boolean mask).

        Thin batch-aware wrapper over
        :func:`repro.core.aggregate.payload_hits` feeding it the memoised
        lengths and joined-haystack representations.
        """
        patterns = tuple(patterns)
        separator = aggregate.separator_byte(patterns)
        joined = self.joined_payloads(separator) \
            if separator is not None and len(self) else None
        hit, _ = aggregate.payload_hits(self.payloads, patterns,
                                        lengths=self.payload_lengths(),
                                        joined=joined)
        return hit

    # ------------------------------------------------------------------
    # Shared filter results
    # ------------------------------------------------------------------
    def cached_filter(self, cache_key: str) -> Optional["Batch"]:
        """Look up a previously stored filter result by semantic cache key."""
        if self._filter_cache is None:
            return None
        return self._filter_cache.get(cache_key)

    def store_filter(self, cache_key: str, sub_batch: "Batch") -> None:
        """Store a filter result so other queries (and modes) can reuse it.

        ``cache_key`` must uniquely identify the predicate's semantics (see
        :class:`~repro.monitor.filters.Filter`); only filters that carry a
        key are ever shared.
        """
        if self._filter_cache is None:
            self._filter_cache = {}
        self._filter_cache[cache_key] = sub_batch

    # ------------------------------------------------------------------
    # Subsetting
    # ------------------------------------------------------------------
    def select(self, mask_or_index) -> "Batch":
        """Return a new batch with the packets selected by a mask or index.

        Used both by stateless filters and by the sampling load shedders.
        """
        idx = np.asarray(mask_or_index)
        if idx.dtype == bool:
            idx = np.flatnonzero(idx)
        payloads = None
        if self.payloads is not None:
            payloads = [self.payloads[i] for i in idx]
        sub = Batch(
            ts=self.ts[idx],
            src_ip=self.src_ip[idx],
            dst_ip=self.dst_ip[idx],
            src_port=self.src_port[idx],
            dst_port=self.dst_port[idx],
            proto=self.proto[idx],
            size=self.size[idx],
            payloads=payloads,
            time_bin=self.time_bin,
            start_ts=self.start_ts,
        )
        sub._parent = self
        sub._parent_index = idx
        return sub

    def partition(self, num_shards: int,
                  fields: Sequence[str] = HEADER_FIELDS, *,
                  partition_key: Optional[object] = None,
                  assignments: Optional[np.ndarray] = None) -> List["Batch"]:
        """Split the batch into ``num_shards`` sub-batches by flow hash.

        Every packet is assigned ``combine_columns(fields) % num_shards``,
        so all packets sharing the given header aggregate (by default the
        full 5-tuple, i.e. a flow) land on the same shard — the invariant
        flow-state queries and flowwise sampling rely on when a stream is
        processed by sharded workers.  Packets keep their chronological
        order inside each shard, and every sub-batch keeps the parent's
        ``start_ts``/``time_bin`` so shards observe the same bin timeline
        (a shard with no packets gets an empty batch, not a missing bin).

        The split is memoised per ``(num_shards, fields, partition_key)``:
        repeated executions over a memoised trace partition each batch only
        once.  A caller with its own assignment rule (the fleet-level
        partitioner splitting by ingress link, source prefix or weighted
        flow hash) passes per-packet ``assignments`` in ``[0, num_shards)``
        plus a hashable ``partition_key`` identifying the rule, so its
        splits get their own cache entries and never collide with — or
        evict — the shard-level flow-hash splits of the same batch.
        """
        num_shards = int(num_shards)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if assignments is not None and partition_key is None:
            raise ValueError(
                "custom assignments require an explicit partition_key= "
                "identifying the assignment rule for the memo cache")
        if num_shards == 1:
            return [self]
        fields = tuple(fields)

        def build() -> List["Batch"]:
            if len(self) == 0:
                return [self.select(np.empty(0, dtype=np.intp))
                        for _ in range(num_shards)]
            if assignments is not None:
                shards = np.asarray(assignments).astype(np.intp)
                if len(shards) != len(self):
                    raise ValueError(
                        f"assignments cover {len(shards)} packets, "
                        f"batch has {len(self)}")
            else:
                shards = (self.aggregate_hashes(fields) %
                          np.uint64(num_shards)).astype(np.intp)
            # One stable sort groups the packets per shard while preserving
            # arrival order inside each group.
            order = np.argsort(shards, kind="stable")
            bounds = np.searchsorted(shards[order], np.arange(num_shards + 1))
            return [self.select(order[bounds[s]:bounds[s + 1]])
                    for s in range(num_shards)]

        return self.memo(("partition", num_shards, fields, partition_key),
                         build)

    @classmethod
    def empty(cls, time_bin: float = 0.1, start_ts: float = 0.0,
              with_payloads: bool = False) -> "Batch":
        """Return a batch with no packets."""
        return cls(
            ts=np.empty(0),
            src_ip=np.empty(0, dtype=np.uint32),
            dst_ip=np.empty(0, dtype=np.uint32),
            src_port=np.empty(0, dtype=np.uint16),
            dst_port=np.empty(0, dtype=np.uint16),
            proto=np.empty(0, dtype=np.uint8),
            size=np.empty(0, dtype=np.uint32),
            payloads=[] if with_payloads else None,
            time_bin=time_bin,
            start_ts=start_ts,
        )

    @classmethod
    def concatenate(cls, batches: Sequence["Batch"]) -> "Batch":
        """Concatenate several batches into one (used by trace assembly)."""
        if not batches:
            return cls.empty()
        payloads: Optional[List[bytes]] = None
        if all(b.payloads is not None for b in batches):
            payloads = []
            for b in batches:
                payloads.extend(b.payloads)  # type: ignore[arg-type]
        return cls(
            ts=np.concatenate([b.ts for b in batches]),
            src_ip=np.concatenate([b.src_ip for b in batches]),
            dst_ip=np.concatenate([b.dst_ip for b in batches]),
            src_port=np.concatenate([b.src_port for b in batches]),
            dst_port=np.concatenate([b.dst_port for b in batches]),
            proto=np.concatenate([b.proto for b in batches]),
            size=np.concatenate([b.size for b in batches]),
            payloads=payloads,
            time_bin=batches[0].time_bin,
            start_ts=batches[0].start_ts,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Batch(packets={len(self)}, bytes={self.byte_count}, "
                f"start_ts={self.start_ts:.3f}, time_bin={self.time_bin})")


class PacketTrace:
    """A full packet trace: one large :class:`Batch` plus batching helpers.

    A trace is stored as a single column store ordered by timestamp; the
    :meth:`batches` method slices it into fixed ``time_bin`` batches, which is
    how the capture process of the monitoring system consumes it.
    """

    def __init__(self, packets: Batch, name: str = "trace") -> None:
        self.packets = packets
        self.name = name
        self._batch_cache: Dict[float, List[Batch]] = {}

    def __len__(self) -> int:
        return len(self.packets)

    @property
    def duration(self) -> float:
        """Trace duration in seconds (last timestamp minus first)."""
        if len(self.packets) == 0:
            return 0.0
        return float(self.packets.ts[-1] - self.packets.ts[0])

    @property
    def byte_count(self) -> int:
        return self.packets.byte_count

    def batches(self, time_bin: float = 0.1) -> Iterator[Batch]:
        """Yield consecutive batches of ``time_bin`` seconds.

        Empty bins are yielded as empty batches so that the consumer observes
        a continuous timeline, exactly as a live capture process would.
        """
        return iter(self.batch_list(time_bin))

    def batch_list(self, time_bin: float = 0.1) -> List[Batch]:
        """The trace sliced into ``time_bin`` batches, computed once.

        Slicing a multi-second trace copies every column array; executions in
        different modes (and repeated runs over the same trace, as the
        scenario engine performs) consume identical batches, so the slices
        are memoised per ``time_bin``.  Traces are treated as immutable once
        built; mutate ``self.packets`` and the cache goes stale.
        """
        time_bin = float(time_bin)
        cached = self._batch_cache.get(time_bin)
        if cached is not None:
            return cached
        batches: List[Batch] = []
        pkts = self.packets
        if len(pkts) > 0:
            ts = pkts.ts
            start = float(ts[0])
            end = float(ts[-1])
            n_bins = int(np.floor((end - start) / time_bin)) + 1
            # Bin index of every packet; searchsorted on the (sorted)
            # timestamps gives us contiguous index ranges per bin.
            edges = start + time_bin * np.arange(n_bins + 1)
            bounds = np.searchsorted(ts, edges)
            for i in range(n_bins):
                lo, hi = int(bounds[i]), int(bounds[i + 1])
                if hi > lo:
                    batch = pkts.select(np.arange(lo, hi))
                else:
                    batch = Batch.empty(time_bin=time_bin,
                                        start_ts=float(edges[i]),
                                        with_payloads=pkts.payloads is not None)
                batch.time_bin = time_bin
                batch.start_ts = float(edges[i])
                batches.append(batch)
        self._batch_cache[time_bin] = batches
        return batches

    def num_batches(self, time_bin: float = 0.1) -> int:
        """Number of batches :meth:`batches` will yield."""
        if len(self.packets) == 0:
            return 0
        return int(np.floor(self.duration / time_bin)) + 1


class _TraceChunk:
    """One resident chunk of a streaming trace: column views + payloads."""

    __slots__ = ("index", "lo", "hi", "columns", "payloads")

    def __init__(self, index: int, lo: int, hi: int,
                 columns: Dict[str, np.ndarray],
                 payloads: Optional[List[bytes]]) -> None:
        self.index = index
        self.lo = lo
        self.hi = hi
        self.columns = columns
        self.payloads = payloads


class StreamingTrace:
    """An out-of-core trace: per-bin batches sliced from a backing store.

    Exposes the same consumption protocol as :class:`PacketTrace`
    (``batches()`` / ``batch_list()`` / ``num_batches()`` / ``name`` /
    ``duration``) but never holds the full column arrays: batches are built
    from fixed-size *chunks* of ``chunk_packets`` rows, each a zero-copy
    view into the store's memory-mapped columns, with at most
    ``max_resident_chunks`` chunks kept alive in an LRU cache.  A bin whose
    rows fall inside one chunk is itself a zero-copy view; a bin straddling
    a chunk boundary copies just its own rows.  Peak memory is therefore
    bounded by ``K`` chunks (plus one bin), no matter how large the store.

    ``store`` is any object implementing the store protocol of
    :class:`repro.traffic.trace_io.TraceStore`: attributes ``name``,
    ``num_packets`` and ``has_payloads``, a ``column(name)`` method
    returning the full (memory-mapped) column, ``payloads_slice(lo, hi)``
    materialising a payload range, and ``bin_bounds(time_bin)`` returning
    pre-indexed bin-edge offsets or ``None``.

    Replaying a store through this class is bit-identical to loading the
    same packets in memory and running ``PacketTrace`` — the bin edges, the
    column dtypes and the slicing arithmetic are the same
    (``tests/test_trace_store.py`` pins it across all four operating
    modes).
    """

    def __init__(self, store, chunk_packets: int = 65536,
                 max_resident_chunks: int = 8,
                 prefetch: bool = False) -> None:
        self.store = store
        self.name = store.name
        self.chunk_packets = int(chunk_packets)
        self.max_resident_chunks = int(max_resident_chunks)
        if self.chunk_packets < 1:
            raise ValueError("chunk_packets must be >= 1")
        if self.max_resident_chunks < 1:
            raise ValueError("max_resident_chunks must be >= 1")
        #: Double-buffered prefetch: after serving chunk ``i`` a background
        #: thread warms chunk ``i + 1``, so store I/O overlaps the
        #: consumer's compute (the persistent-shard-worker replay path
        #: turns this on so the parent's partition loop never stalls on a
        #: cold chunk).  Off by default: sequential replay telemetry then
        #: counts exactly one miss per chunk, which the bounded-residency
        #: tests rely on.
        self.prefetch = bool(prefetch)
        self._chunks: "OrderedDict[int, _TraceChunk]" = OrderedDict()
        self._cache_lock = threading.RLock()
        self._inflight: set = set()
        #: Live prefetch threads by chunk index; :meth:`close` joins them.
        self._prefetch_threads: Dict[int, threading.Thread] = {}
        self._closed = False
        self._layouts: Dict[float, tuple] = {}
        #: Chunk-cache telemetry (the bounded-residency tests read these).
        self.cache_hits = 0
        self.cache_misses = 0
        self.max_resident = 0
        #: Chunks loaded by the prefetch thread (neither hits nor misses
        #: at load time; the consumer's later lookup counts the hit).
        self.prefetched = 0

    def reset_stats(self) -> None:
        """Zero the chunk-cache telemetry counters.

        Replay drivers call this at the start of each ``ingest_trace`` run,
        so back-to-back replays over one streaming view report per-run
        hit/miss/residency numbers instead of cross-run accumulations.
        The cache contents themselves are kept — a warm cache is a
        legitimate state for a second run to start from (and shows up as
        hits, now attributed to the run that enjoyed them).
        """
        self.cache_hits = 0
        self.cache_misses = 0
        self.max_resident = 0
        self.prefetched = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.store.num_packets)

    @property
    def num_chunks(self) -> int:
        return -(-len(self) // self.chunk_packets) if len(self) else 0

    @property
    def resident_chunks(self) -> int:
        return len(self._chunks)

    @property
    def duration(self) -> float:
        """Trace duration in seconds (last timestamp minus first)."""
        if len(self) == 0:
            return 0.0
        ts = self.store.column("ts")
        return float(ts[-1] - ts[0])

    # ------------------------------------------------------------------
    # Chunk cache
    # ------------------------------------------------------------------
    def _load_chunk(self, index: int) -> _TraceChunk:
        """Materialise chunk ``index`` from the store (no cache access)."""
        lo = index * self.chunk_packets
        hi = min(lo + self.chunk_packets, len(self))
        columns = {name: np.asarray(self.store.column(name)[lo:hi])
                   for name in COLUMN_FIELDS}
        payloads = self.store.payloads_slice(lo, hi) \
            if self.store.has_payloads else None
        return _TraceChunk(index, lo, hi, columns, payloads)

    def _insert_chunk(self, chunk: _TraceChunk) -> None:
        """Insert a loaded chunk at the LRU's MRU end (lock held by caller)."""
        self._chunks[chunk.index] = chunk
        while len(self._chunks) > self.max_resident_chunks:
            self._chunks.popitem(last=False)
        self.max_resident = max(self.max_resident, len(self._chunks))

    def _chunk(self, index: int) -> _TraceChunk:
        with self._cache_lock:
            chunk = self._chunks.get(index)
            if chunk is not None:
                self.cache_hits += 1
                self._chunks.move_to_end(index)
        if chunk is None:
            self.cache_misses += 1
            chunk = self._load_chunk(index)
            with self._cache_lock:
                self._insert_chunk(chunk)
        if self.prefetch:
            self._schedule_prefetch(index + 1)
        return chunk

    def _schedule_prefetch(self, index: int) -> None:
        """Warm chunk ``index`` on a background thread (best effort)."""
        if index >= self.num_chunks:
            return
        with self._cache_lock:
            if (self._closed or index in self._chunks
                    or index in self._inflight):
                return
            self._inflight.add(index)
            thread = threading.Thread(
                target=self._prefetch_one, args=(index,), daemon=True,
                name=f"repro-prefetch-{self.name}-{index}")
            self._prefetch_threads[index] = thread
        thread.start()

    def _prefetch_one(self, index: int) -> None:
        try:
            chunk = self._load_chunk(index)
            with self._cache_lock:
                if not self._closed and index not in self._chunks:
                    self._insert_chunk(chunk)
                    self.prefetched += 1
        finally:
            with self._cache_lock:
                self._inflight.discard(index)
                self._prefetch_threads.pop(index, None)

    def close(self, timeout: float = 5.0) -> None:
        """Stop prefetching and join any in-flight prefetch threads.

        Consumers that abandon iteration mid-trace (a daemon rotating to a
        newer segment, an erroring replay) call this so no loader thread
        outlives the trace: scheduling is disabled first, then every
        in-flight thread is joined (each loads at most one chunk, so the
        wait is bounded).  Idempotent; the chunk cache stays readable —
        only background prefetching is shut down.
        """
        with self._cache_lock:
            self._closed = True
            threads = list(self._prefetch_threads.values())
        for thread in threads:
            thread.join(timeout=timeout)

    def __enter__(self) -> "StreamingTrace":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _rows(self, lo: int, hi: int) -> tuple:
        """Columns (and payloads) of packet rows ``[lo, hi)`` via chunks."""
        first = lo // self.chunk_packets
        last = (hi - 1) // self.chunk_packets
        if first == last:
            chunk = self._chunk(first)
            start, stop = lo - chunk.lo, hi - chunk.lo
            columns = {name: column[start:stop]
                       for name, column in chunk.columns.items()}
            payloads = chunk.payloads[start:stop] \
                if chunk.payloads is not None else None
            return columns, payloads
        pieces = []
        for index in range(first, last + 1):
            chunk = self._chunk(index)
            start = max(lo, chunk.lo) - chunk.lo
            stop = min(hi, chunk.hi) - chunk.lo
            pieces.append((chunk, start, stop))
        columns = {
            name: np.concatenate([chunk.columns[name][start:stop]
                                  for chunk, start, stop in pieces])
            for name in COLUMN_FIELDS
        }
        payloads = None
        if self.store.has_payloads:
            payloads = []
            for chunk, start, stop in pieces:
                payloads.extend(chunk.payloads[start:stop])
        return columns, payloads

    # ------------------------------------------------------------------
    # Bin layout
    # ------------------------------------------------------------------
    def _bin_layout(self, time_bin: float) -> tuple:
        """``(edges, bounds)`` for the store's bins at ``time_bin``.

        The arithmetic replicates :meth:`PacketTrace.batch_list` exactly
        (``start + time_bin * arange`` in float64, ``searchsorted`` on the
        timestamps) so the streaming bins are bit-identical to in-memory
        slicing.  The store's persisted bin index is used when it matches
        ``time_bin``; otherwise the edges are searched on the memory-mapped
        column, which touches O(n_bins · log n) pages, not the whole trace.
        """
        time_bin = float(time_bin)
        layout = self._layouts.get(time_bin)
        if layout is not None:
            return layout
        ts = self.store.column("ts")
        start = float(ts[0])
        end = float(ts[-1])
        n_bins = int(np.floor((end - start) / time_bin)) + 1
        edges = start + time_bin * np.arange(n_bins + 1)
        bounds = self.store.bin_bounds(time_bin)
        if bounds is None or len(bounds) != n_bins + 1:
            bounds = np.searchsorted(ts, edges)
        layout = (edges, np.asarray(bounds, dtype=np.int64))
        self._layouts[time_bin] = layout
        return layout

    def _batch_at(self, edges: np.ndarray, bounds: np.ndarray,
                  index: int, time_bin: float) -> Batch:
        lo, hi = int(bounds[index]), int(bounds[index + 1])
        start_ts = float(edges[index])
        if hi <= lo:
            return Batch.empty(time_bin=time_bin, start_ts=start_ts,
                               with_payloads=self.store.has_payloads)
        columns, payloads = self._rows(lo, hi)
        return Batch(payloads=payloads, time_bin=time_bin,
                     start_ts=start_ts, **columns)

    # ------------------------------------------------------------------
    # The PacketTrace consumption protocol
    # ------------------------------------------------------------------
    def num_batches(self, time_bin: float = 0.1) -> int:
        """Number of batches :meth:`batches` will yield."""
        if len(self) == 0:
            return 0
        return int(np.floor(self.duration / time_bin)) + 1

    def batch_list(self, time_bin: float = 0.1) -> "Sequence[Batch]":
        """The trace's bins as a lazy sequence.

        Unlike :meth:`PacketTrace.batch_list` the returned sequence holds
        no batches: each index access builds its batch from the chunk
        cache, so iterating it streams the store instead of materialising
        it.  Repeated accesses rebuild equal batches (no memoisation — a
        memo would defeat the bounded-memory point).
        """
        return _StreamingBatchList(self, float(time_bin))

    def batches(self, time_bin: float = 0.1) -> Iterator[Batch]:
        """Yield consecutive ``time_bin`` batches, empty bins included."""
        return iter(self.batch_list(time_bin))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StreamingTrace(name={self.name!r}, packets={len(self)}, "
                f"chunk_packets={self.chunk_packets}, "
                f"resident={self.resident_chunks}/"
                f"{self.max_resident_chunks})")


class _StreamingBatchList(Sequence):
    """Lazy bin sequence of a :class:`StreamingTrace` (no batch storage)."""

    def __init__(self, trace: StreamingTrace, time_bin: float) -> None:
        self.trace = trace
        self.time_bin = time_bin
        if len(trace) == 0:
            self._edges = None
            self._bounds = None
            self._n_bins = 0
        else:
            self._edges, self._bounds = trace._bin_layout(time_bin)
            self._n_bins = len(self._edges) - 1

    def __len__(self) -> int:
        return self._n_bins

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._n_bins))]
        index = int(index)
        if index < 0:
            index += self._n_bins
        if not 0 <= index < self._n_bins:
            raise IndexError("bin index out of range")
        return self.trace._batch_at(self._edges, self._bounds, index,
                                    self.time_bin)


def as_trace(source):
    """Coerce a trace-like source to one exposing the batch protocol.

    Accepts a :class:`PacketTrace`, a :class:`StreamingTrace` (returned
    unchanged) or a trace store (anything with a ``streaming()`` factory,
    e.g. :class:`repro.traffic.trace_io.TraceStore`), which is wrapped in
    its default streaming view.
    """
    if hasattr(source, "batches"):
        return source
    if hasattr(source, "streaming"):
        return source.streaming()
    raise TypeError(
        f"expected a PacketTrace, StreamingTrace or trace store, got "
        f"{type(source).__name__}")


def ip(a: int, b: int, c: int, d: int) -> int:
    """Build an integer IPv4 address from dotted-quad components."""
    for octet in (a, b, c, d):
        if not 0 <= octet <= 255:
            raise ValueError("IPv4 octets must be in [0, 255]")
    return (a << 24) | (b << 16) | (c << 8) | d


def format_ip(addr: int) -> str:
    """Render an integer IPv4 address in dotted-quad notation."""
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))
