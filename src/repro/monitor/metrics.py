"""Accuracy metrics for the standard queries (Section 2.2.1).

Each metric compares a query's per-interval result from an evaluated
execution (with load shedding) against the result of a *reference* execution
of the same query over the full trace, and returns an error value.  The
conventions of the paper are followed:

* counter / flows / high-watermark: relative error of the reported values;
* application: relative error of per-application packet and byte counts,
  weighted by each application's share of the reference traffic;
* top-k: misranked-pair count (reported both raw and normalised);
* autofocus: one minus the overlap between the reported and reference delta
  reports;
* super-sources: average relative error of the fan-out estimates;
* p2p-detector: one minus the fraction of true P2P flows correctly
  identified;
* pattern-search / trace: one minus the fraction of packets processed.

``accuracy = max(0, 1 - error)`` unless stated otherwise.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .query import QueryResultLog


def relative_error(estimated: float, actual: float) -> float:
    """``|1 - estimated / actual|`` with the zero-actual corner handled."""
    if actual == 0:
        return 0.0 if estimated == 0 else 1.0
    return abs(1.0 - float(estimated) / float(actual))


# ----------------------------------------------------------------------
# Per-query interval errors
# ----------------------------------------------------------------------
def counter_error(result: Dict, reference: Dict) -> float:
    return 0.5 * (relative_error(result.get("packets", 0.0), reference.get("packets", 0.0)) +
                  relative_error(result.get("bytes", 0.0), reference.get("bytes", 0.0)))


def flows_error(result: Dict, reference: Dict) -> float:
    return relative_error(result.get("flows", 0.0), reference.get("flows", 0.0))


def high_watermark_error(result: Dict, reference: Dict) -> float:
    return relative_error(result.get("watermark_bytes", 0.0),
                          reference.get("watermark_bytes", 0.0))


def application_error(result: Dict, reference: Dict) -> float:
    """Weighted average relative error across application classes."""
    ref_pkts = reference.get("packets_by_app", {})
    ref_bytes = reference.get("bytes_by_app", {})
    est_pkts = result.get("packets_by_app", {})
    est_bytes = result.get("bytes_by_app", {})
    total_pkts = sum(ref_pkts.values())
    total_bytes = sum(ref_bytes.values())
    if total_pkts == 0 and total_bytes == 0:
        return 0.0
    error = 0.0
    for app, count in ref_pkts.items():
        weight = count / total_pkts if total_pkts else 0.0
        error += 0.5 * weight * relative_error(est_pkts.get(app, 0.0), count)
    for app, volume in ref_bytes.items():
        weight = volume / total_bytes if total_bytes else 0.0
        error += 0.5 * weight * relative_error(est_bytes.get(app, 0.0), volume)
    return error


def top_k_misranked_pairs(result: Dict, reference: Dict) -> int:
    """Number of misranked pairs (detection performance metric of [12]).

    A pair is misranked when the first element appears in the query's top-k
    list, the second does not, yet the reference ranks the second above the
    first.
    """
    query_list = list(result.get("ranking", []))
    ref_bytes = reference.get("bytes", {})
    ref_ranking = list(reference.get("ranking", []))
    outside = [dst for dst in ref_ranking if dst not in query_list]
    misranked = 0
    for inside in query_list:
        inside_volume = ref_bytes.get(inside, 0.0)
        for out in outside:
            if ref_bytes.get(out, 0.0) > inside_volume:
                misranked += 1
    return misranked


def top_k_error(result: Dict, reference: Dict) -> float:
    """Misranked pairs normalised by ``k^2`` and clipped to [0, 1]."""
    k = max(len(reference.get("ranking", [])), 1)
    return min(1.0, top_k_misranked_pairs(result, reference) / float(k * k))


def autofocus_error(result: Dict, reference: Dict) -> float:
    """One minus the overlap between reported and reference cluster sets."""
    reported = {tuple(c) for c in result.get("clusters", [])}
    expected = {tuple(c) for c in reference.get("clusters", [])}
    if not expected and not reported:
        return 0.0
    union = reported | expected
    if not union:
        return 0.0
    return 1.0 - len(reported & expected) / len(union)


def super_sources_error(result: Dict, reference: Dict) -> float:
    """Average relative error of the fan-out estimates of the reference top sources."""
    ref_fanout = reference.get("fanout", {})
    est_fanout = result.get("fanout", {})
    if not ref_fanout:
        return 0.0
    errors = [relative_error(est_fanout.get(src, 0.0), fanout)
              for src, fanout in ref_fanout.items()]
    return float(np.mean(errors))


def p2p_detector_error(result: Dict, reference: Dict) -> float:
    """Error in the (scaled) number of flows identified as P2P.

    The paper defines the error as one minus the fraction of flows correctly
    identified.  Under flow-wise shedding only a subset of flows is observed
    at all, so the comparable quantity is the query's scaled estimate of the
    number of P2P flows versus the reference count: flow-wise shedding keeps
    this estimate unbiased, while packet sampling loses handshake packets and
    under-detects even after scaling (Figure 6.4).
    """
    true_count = reference.get("p2p_flow_count",
                               float(len(reference.get("p2p_flows", []))))
    estimated = result.get("p2p_flow_count",
                           float(len(result.get("p2p_flows", []))))
    return min(1.0, relative_error(estimated, true_count))


def processed_fraction_error(result: Dict, reference: Dict,
                             key: str) -> float:
    """One minus the fraction of packets processed (trace / pattern-search)."""
    total = reference.get(key, 0.0)
    processed = result.get(key, 0.0)
    if total <= 0:
        return 0.0
    return float(min(1.0, max(0.0, 1.0 - processed / total)))


def trace_error(result: Dict, reference: Dict) -> float:
    return processed_fraction_error(result, reference, "packets_stored")


def pattern_search_error(result: Dict, reference: Dict) -> float:
    return processed_fraction_error(result, reference, "packets_scanned")


#: Query name -> per-interval error function.
ERROR_FUNCTIONS = {
    "application": application_error,
    "autofocus": autofocus_error,
    "counter": counter_error,
    "flows": flows_error,
    "high-watermark": high_watermark_error,
    "p2p-detector": p2p_detector_error,
    "p2p-detector-selfish": p2p_detector_error,
    "p2p-detector-buggy": p2p_detector_error,
    "pattern-search": pattern_search_error,
    "super-sources": super_sources_error,
    "top-k": top_k_error,
    "trace": trace_error,
}


def query_error(query_name: str, result: Dict, reference: Dict) -> float:
    """Error of one interval result against its reference counterpart."""
    base_name = query_name
    if base_name not in ERROR_FUNCTIONS:
        # Allow renamed instances such as "counter-3" used in experiments.
        base_name = query_name.rsplit("-", 1)[0]
    try:
        fn = ERROR_FUNCTIONS[base_name]
    except KeyError:
        raise KeyError(f"no accuracy metric registered for query "
                       f"{query_name!r}") from None
    return float(fn(result, reference))


def compare_logs(query_name: str, evaluated: QueryResultLog,
                 reference: QueryResultLog) -> np.ndarray:
    """Per-interval error series for a query over a whole execution.

    Intervals are aligned by index; if the evaluated execution produced
    fewer intervals (e.g. the query was disabled), the missing intervals
    count as an error of 1.
    """
    errors: List[float] = []
    for index in range(len(reference)):
        ref = reference.result_at(index)
        if index < len(evaluated):
            errors.append(query_error(query_name, evaluated.result_at(index),
                                      ref))
        else:
            errors.append(1.0)
    return np.array(errors, dtype=np.float64)


def mean_error(query_name: str, evaluated: QueryResultLog,
               reference: QueryResultLog) -> float:
    errors = compare_logs(query_name, evaluated, reference)
    return float(errors.mean()) if len(errors) else 0.0


def accuracy_from_error(error: float) -> float:
    """Accuracy as defined in Chapter 5: ``max(0, 1 - error)``."""
    return max(0.0, 1.0 - float(error))
