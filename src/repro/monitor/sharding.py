"""Sharded execution: flow-hash partitioning across per-shard pipelines.

The paper's scheme runs one predictor/shedder over one packet stream, so no
matter how vectorised the batch path is, one core executes every query on
every bin.  This module partitions a single logical stream across ``N``
identical shard workers and folds their outputs back into one result:

* **Partitioning** — :meth:`repro.monitor.packet.Batch.partition` splits
  every bin's batch by the 5-tuple flow hash, so all packets of a flow land
  on the same shard and per-flow query state never spans workers.
* **Shard workers** — each shard is a full
  :class:`~repro.monitor.system.MonitoringSystem` (same mode, strategy and
  query set, built from a per-shard :class:`~repro.monitor.config.SystemConfig`
  with ``1/N`` of the cycle capacity and a shard-derived seed) driven
  through a streaming :class:`~repro.monitor.session.MonitoringSession`;
  the whole predict → allocate → shed → execute pipeline of Figure 3.2 runs
  per shard, unchanged.
* **Capacity rebalancing** — before each bin, shards whose predicted demand
  leaves headroom under their base capacity share lend that headroom to
  shards predicted to overload, so a skewed bin sheds less than a static
  ``1/N`` split would (capacity is conserved bin by bin; every shard keeps
  a configurable floor).
* **Result merging** — per-shard :class:`BinRecord`/``ExecutionResult``
  objects fold into stream-global ones; per-interval query results merge
  through :meth:`repro.monitor.query.Query.merge_interval_results`
  (additive for flow-disjoint state, rank/union/sum merges where queries
  override it).

With ``num_shards=1`` the partition returns the original batches, shard 0
keeps the full budget and the base seed, and every merge reduces to the
identity — the sharded run is bit-identical to the classic single-system
run (pinned by ``tests/test_sharding.py``).

Three shard-execution backends are available (``SystemConfig.shard_backend``
or the ``backend`` argument):

* ``"inprocess"`` — every shard session runs serially in the caller.
* ``"workers"`` — one **persistent worker process per shard**
  (:class:`~repro.monitor.workers.ShardWorkerPool`): each bin's
  pre-partitioned columnar sub-batch travels through shared memory, per-bin
  records come back on a result channel, and capacity-rebalance /
  reconfiguration messages are piggybacked in FIFO order with the batches —
  so streaming sessions *and* ``shard_rebalance=True`` run on real
  parallelism, bit-identical to the in-process path.
* ``"fork"`` — the legacy per-run fork pool
  (:func:`repro.core.pool.fork_pool_map`): the stream is pre-partitioned in
  the parent, workers inherit their slice copy-on-write, execute their
  shard end to end and ship the per-shard result back for merging.  The
  per-bin capacity exchange is impossible on this backend, so it still
  requires ``rebalance=False`` and a materialised stream.

``"auto"`` (the default) picks ``"workers"`` when parallelism was requested
(``n_workers > 1``) and the host can honour it, ``"inprocess"`` otherwise.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.cycles import CycleBudget
from ..core.pool import effective_workers, fork_pool_map, pool_state
from ..profile import merged_summary
from .config import ReproDeprecationWarning, SystemConfig
from .packet import HEADER_FIELDS, Batch, PacketTrace, as_trace
from .pipeline import BinRecord
from .query import Query, QueryResultLog
from .system import ExecutionResult, merge_query_logs  # noqa: F401 - re-export
from .workers import (ShardExecutionWarning, ShardWorkerPool,
                      fork_start_available)

#: Header fields whose combined hash decides a packet's shard: the full
#: 5-tuple, so a flow's packets always land on the same shard.
FLOW_FIELDS: Tuple[str, ...] = HEADER_FIELDS


def shard_seed(base_seed: int, shard_index: int) -> int:
    """Deterministic per-shard seed; shard 0 keeps the base seed.

    Keeping shard 0 on the base seed is what makes ``num_shards=1`` runs
    bit-identical to unsharded ones; later shards walk the golden-ratio
    sequence so no two shards share sampler/noise streams.
    """
    return int((int(base_seed) + shard_index * 0x9E3779B1) % (2 ** 31))


# ----------------------------------------------------------------------
# Result merging — deprecated shims
# ----------------------------------------------------------------------
# The merge logic is now the public API of the record types themselves:
# :meth:`BinRecord.merge` and :meth:`ExecutionResult.merge` (plus the
# module-level :func:`repro.monitor.system.merge_query_logs`, re-exported
# here).  The free functions below survive as thin deprecated shims.

def merge_bin_records(records: Sequence[BinRecord]) -> BinRecord:
    """Deprecated: use :meth:`BinRecord.merge`."""
    warnings.warn(
        "merge_bin_records is deprecated; use BinRecord.merge(records)",
        ReproDeprecationWarning, stacklevel=2)
    return BinRecord.merge(records)


def merge_execution_results(results: Sequence[ExecutionResult],
                            query_classes: Dict[str, type],
                            budget: CycleBudget,
                            name: str) -> ExecutionResult:
    """Deprecated: use :meth:`ExecutionResult.merge`."""
    warnings.warn(
        "merge_execution_results is deprecated; use "
        "ExecutionResult.merge(results, query_classes=..., budget=..., "
        "name=...)",
        ReproDeprecationWarning, stacklevel=2)
    return ExecutionResult.merge(results, query_classes=query_classes,
                                 budget=budget, name=name)


# ----------------------------------------------------------------------
# The sharded system
# ----------------------------------------------------------------------
class ShardedSystem:
    """``N`` flow-affine shard systems behind one system-like facade.

    Parameters
    ----------
    query_factory:
        Zero-argument callable returning a fresh list of
        :class:`~repro.monitor.query.Query` instances; called once per
        shard so every shard owns independent query state.  ``None`` uses
        the config's declarative ``queries`` field (a spec mix is a
        factory by construction: every shard builds fresh instances).
    config:
        :class:`SystemConfig` of the *whole* system.  ``cycles_per_second``
        is the total capacity, split evenly across shards;
        ``num_shards`` / ``shard_rebalance`` / ``shard_rebalance_floor``
        are read from it unless overridden by the keyword arguments below.
    num_shards, rebalance, rebalance_floor, backend:
        Optional overrides of the corresponding config fields (``backend``
        overrides ``shard_backend``).
    n_workers:
        ``> 1`` asks for process-parallel shard execution.  Under the
        ``"auto"`` / ``"workers"`` backends this runs shards (including
        streaming sessions, and including ``rebalance=True``) on the
        persistent worker pool; under ``"fork"`` it executes :meth:`run` on
        the legacy per-run fork pool (which still requires
        ``rebalance=False`` and keeps streaming sessions in-process).
    respect_cores:
        Clamp parallelism to the host's core count (default); pass
        ``False`` to force real workers on small hosts (benchmarks do).
    """

    def __init__(self, query_factory: Optional[Callable[[], List[Query]]] = None,
                 config: Optional[SystemConfig] = None,
                 num_shards: Optional[int] = None,
                 rebalance: Optional[bool] = None,
                 rebalance_floor: Optional[float] = None,
                 n_workers: int = 1,
                 respect_cores: bool = True,
                 backend: Optional[str] = None) -> None:
        config = config if config is not None else SystemConfig()
        if num_shards is not None:
            config = config.replace(num_shards=int(num_shards))
        if rebalance is not None:
            config = config.replace(shard_rebalance=bool(rebalance))
        if rebalance_floor is not None:
            config = config.replace(
                shard_rebalance_floor=float(rebalance_floor))
        if backend is not None:
            config = config.replace(shard_backend=str(backend))
        self.config = config
        self.num_shards = config.num_shards
        self.rebalance = config.shard_rebalance
        self.rebalance_floor = config.shard_rebalance_floor
        self.backend = config.shard_backend
        self.n_workers = int(n_workers)
        self.respect_cores = bool(respect_cores)
        if (self.backend == "fork" and self.rebalance
                and self.num_shards > 1 and self.n_workers > 1):
            raise ValueError(
                "dynamic capacity rebalancing is not available on the fork-"
                "pool backend (it needs a per-bin capacity exchange); pass "
                "rebalance=False, or use the persistent 'workers' backend, "
                "which rebalances across processes")
        if query_factory is None:
            if config.queries is None:
                raise ValueError(
                    "ShardedSystem needs either a query_factory or a config "
                    "with a declarative 'queries' field")
            query_factory = config.build_queries
        self.query_factory = query_factory
        self.total_cycles_per_second = (
            config.cycles_per_second if config.cycles_per_second is not None
            else CycleBudget().cycles_per_second)
        share = self.total_cycles_per_second / self.num_shards
        # The fixed CoMo overhead models per-host bookkeeping: shards share
        # one host, so each pays its 1/N slice (the per-packet overhead
        # already scales with each shard's slice of the traffic).  Per-query
        # prediction overhead is *not* split — every shard genuinely runs
        # its own feature extractors and predictors, and that duplication
        # is the honest cost of sharding the predict/shed loop.
        self.shard_configs = [
            config.replace(
                num_shards=1, cycles_per_second=share,
                system_overhead_fixed=(config.system_overhead_fixed /
                                       self.num_shards),
                seed=shard_seed(config.seed, index))
            for index in range(self.num_shards)
        ]
        self.systems = [shard_config.build(query_factory())
                        for shard_config in self.shard_configs]
        self.mode = self.systems[0].mode
        self.strategy_name = self.systems[0].strategy_name

    @property
    def query_names(self) -> List[str]:
        return self.systems[0].query_names

    @property
    def query_classes(self) -> Dict[str, type]:
        """Query class per name (drives per-interval result merging)."""
        return {name: type(self.systems[0].runtime(name).query)
                for name in self.systems[0].query_names}

    # ------------------------------------------------------------------
    def resolve_backend(self) -> str:
        """The concrete backend this system executes on.

        ``"auto"`` resolves to the persistent worker pool exactly when the
        caller asked for parallelism (``n_workers > 1``), there is more
        than one shard, the host's core count can honour the request
        (unless ``respect_cores=False``), and the ``fork`` start method
        exists (so lambda query factories are inherited, not pickled).
        Everything else resolves to in-process execution.
        """
        if self.backend != "auto":
            return self.backend
        if (self.num_shards > 1
                and effective_workers(self.n_workers, self.num_shards,
                                      self.respect_cores) > 1
                and fork_start_available()):
            return "workers"
        return "inprocess"

    def open_session(self, time_bin: float = 0.1,
                     name: str = "live") -> "ShardedSession":
        """Open a push-based sharded session on the resolved backend.

        With the ``"workers"`` backend the session's shards live in the
        persistent worker pool; otherwise they run in-process.  A session
        that asked for parallel workers (``n_workers > 1``) but resolves
        to in-process execution warns (:class:`ShardExecutionWarning`)
        instead of silently running serial.
        """
        backend = self.resolve_backend()
        if backend == "workers" and self.num_shards > 1:
            return ShardedSession(self, time_bin=time_bin, name=name,
                                  backend="workers")
        if self.n_workers > 1 and self.num_shards > 1:
            warnings.warn(
                f"sharded session {name!r} requested n_workers="
                f"{self.n_workers} but runs in-process on the "
                f"{backend!r} backend (the fork backend has no streaming "
                "sessions; 'auto' found no usable parallelism on this "
                "host) — pass backend='workers' to force the persistent "
                "worker pool", ShardExecutionWarning, stacklevel=2)
        return ShardedSession(self, time_bin=time_bin, name=name)

    def run(self, trace: PacketTrace, time_bin: float = 0.1
            ) -> ExecutionResult:
        """Run the sharded system over a trace; returns the merged result.

        ``trace`` may also be a streaming trace or a trace store (anything
        :func:`repro.monitor.packet.as_trace` accepts).  The in-process
        and persistent-worker paths stream it bin by bin with bounded
        memory; the legacy fork-pool path pre-partitions the whole stream
        in the parent, so it materialises every sub-batch regardless of
        the source.
        """
        trace = as_trace(trace)
        backend = self.resolve_backend()
        if (backend == "fork" and self.n_workers > 1
                and self.num_shards > 1):
            return self._run_pooled(trace, time_bin)
        session = self.open_session(time_bin=time_bin, name=trace.name)
        return session.ingest_trace(trace).close()

    # ------------------------------------------------------------------
    def _run_pooled(self, trace: PacketTrace, time_bin: float
                    ) -> ExecutionResult:
        """One fork-pool worker per shard over the pre-partitioned stream.

        The parent partitions every batch before forking, so workers
        inherit their slice copy-on-write; each worker drives its shard's
        full session end to end and returns the shard's execution result.
        Results are identical to the in-process path with rebalancing off
        (same sub-batches, same shard systems, same merge).
        """
        slices: List[List[Batch]] = [[] for _ in range(self.num_shards)]
        for batch in trace.batch_list(time_bin):
            for index, sub in enumerate(batch.partition(self.num_shards,
                                                        FLOW_FIELDS)):
                slices[index].append(sub)
        with pool_state(_POOL_STATE, configs=self.shard_configs,
                        factory=self.query_factory, slices=slices,
                        time_bin=float(time_bin), name=trace.name):
            results = fork_pool_map(
                _run_shard_job, list(range(self.num_shards)), self.n_workers,
                respect_cores=self.respect_cores, require_fork=True)
        budget = CycleBudget(self.total_cycles_per_second, float(time_bin))
        return ExecutionResult.merge(results, query_classes=self.query_classes,
                                     budget=budget, name=trace.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedSystem(mode={self.mode!r}, "
                f"num_shards={self.num_shards}, "
                f"rebalance={self.rebalance})")


#: State a pooled shard job reads from the forked parent (populated just
#: before the pool map, cleared right after; fork-only by construction).
_POOL_STATE: dict = {}


def _no_queries() -> List[Query]:
    """Placeholder query factory for checkpoint restores.

    A restored :class:`ShardedSession` replaces every freshly built shard
    session with the checkpointed one, so the instances this factory would
    produce are discarded immediately — it only exists because
    :class:`ShardedSystem` requires *a* factory, and it must be a module-
    level function so spawn-start worker pools can pickle it.
    """
    return []


def _run_shard_job(shard_index: int) -> ExecutionResult:
    """Run one shard end to end; pure function of the pre-fork state."""
    config = _POOL_STATE["configs"][shard_index]
    system = config.build(_POOL_STATE["factory"]())
    session = system.open_session(
        time_bin=_POOL_STATE["time_bin"],
        name=f"{_POOL_STATE['name']}[shard{shard_index}]")
    for sub in _POOL_STATE["slices"][shard_index]:
        session.ingest(sub)
    return session.close()


# ----------------------------------------------------------------------
# The sharded session
# ----------------------------------------------------------------------
class ShardedSession:
    """Push-based execution handle over a :class:`ShardedSystem`.

    Mirrors :class:`~repro.monitor.session.MonitoringSession`: feed it one
    batch per time bin with :meth:`ingest` (the batch is flow-partitioned
    and fanned out to the per-shard sessions), reconfigure between bins,
    and :meth:`close` to obtain the merged
    :class:`~repro.monitor.system.ExecutionResult`.

    With ``backend="workers"`` the per-shard sessions live inside one
    persistent worker process each (:class:`ShardWorkerPool`); every public
    method keeps exactly the in-process semantics — reconfigurations apply
    at the next bin boundary, rebalance capacities are computed by the
    parent from the previous bin's records and shipped before the bin's
    batches — so the merged results are bit-identical either way.
    """

    def __init__(self, sharded: ShardedSystem, time_bin: float = 0.1,
                 name: str = "live", backend: str = "inprocess") -> None:
        if backend not in ("inprocess", "workers"):
            raise ValueError(
                f"unknown session backend {backend!r}; sharded sessions run "
                "'inprocess' or on persistent 'workers'")
        self.sharded = sharded
        self.time_bin = float(time_bin)
        self.name = name
        self.num_shards = sharded.num_shards
        self.backend = backend
        self.budget = CycleBudget(sharded.total_cycles_per_second,
                                  self.time_bin)
        suffix = (lambda i: name) if self.num_shards == 1 else \
            (lambda i: f"{name}[shard{i}]")
        if backend == "workers":
            self.sessions = None
            self._pool: Optional[ShardWorkerPool] = ShardWorkerPool(
                sharded.shard_configs, sharded.query_factory,
                time_bin=self.time_bin,
                names=[suffix(index) for index in range(self.num_shards)])
            # Parent-side mirrors of state that otherwise lives in the
            # shard sessions (the workers own the real thing).
            self._bins_ingested = 0
            self._query_names: List[str] = list(sharded.query_names)
        else:
            self._pool = None
            self.sessions = [system.open_session(time_bin=time_bin,
                                                 name=suffix(index))
                             for index, system in enumerate(sharded.systems)]
        #: Query class per name, for every query that ever lived in this
        #: session — departed queries keep their logs in the final result,
        #: so their merge implementations must stay resolvable.
        self._query_classes: Dict[str, type] = dict(sharded.query_classes)
        #: (packets, total cycles) each shard reported for the previous bin.
        self._prev_load: List[Optional[Tuple[int, float]]] = \
            [None] * self.num_shards
        self._closed_result: Optional[ExecutionResult] = None
        #: Metrics snapshot taken at close time (workers are gone after).
        self._closed_metrics: Optional[Dict] = None
        #: Per-tenant query cycles accumulated from the merged bin records
        #: (per-bin ``ingest`` path; the pipelined trace path reports the
        #: complete totals at close time from the merged result).
        self._tenant_cycles: Dict[str, float] = {}

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed_result is not None

    @property
    def bins_ingested(self) -> int:
        if self._pool is not None:
            return self._bins_ingested
        return self.sessions[0].bins_ingested

    @property
    def query_names(self) -> List[str]:
        if self._pool is not None:
            return list(self._query_names)
        return self.sessions[0].query_names

    @property
    def shard_loads(self) -> List[Optional[Tuple[int, float]]]:
        """Previous bin's ``(packets, cycles)`` per shard.

        The same observations the rebalancer lends capacity from; exported
        so operational surfaces (``repro.serve``'s per-shard utilisation
        metrics) can report shard skew without poking at internals.
        """
        return list(self._prev_load)

    @property
    def metrics(self) -> Dict:
        """Operational metrics folded across the shards (JSON-able).

        Same shape as :attr:`MonitoringSession.metrics` — per-stage
        profile plus feature-sharing registry stats — with per-shard stage
        totals summed and per-bin latency series concatenated.  On the
        workers backend the shard numbers are fetched over the command
        pipes (FIFO with the batches, so they land at a bin boundary); a
        closed session returns the snapshot taken at close time.
        """
        if self._closed_metrics is not None:
            return self._closed_metrics
        if self._pool is not None:
            shards = self._pool.metrics()
        else:
            shards = [(session.system.profiler,
                       session.system.feature_states.stats())
                      for session in self.sessions]
        merged = self._merge_metrics(shards)
        tenants = self._tenant_metrics(self._tenant_cycles)
        if tenants is not None:
            merged["tenants"] = tenants
        return merged

    def _tenant_metrics(self, totals: Dict[str, float]) -> Optional[Dict]:
        """The ``tenants`` metrics block, or ``None`` without groups."""
        groups = getattr(self.sharded.config, "tenants", None)
        if not groups:
            return None
        return {"count": len(groups), "query_cycles": dict(totals)}

    @staticmethod
    def _merge_metrics(shards: Sequence[Tuple]) -> Dict:
        sharing: Dict[str, int] = {}
        for _, stats in shards:
            for key, value in stats.items():
                sharing[key] = sharing.get(key, 0) + value
        return {"profile": merged_summary([prof for prof, _ in shards]),
                "feature_sharing": sharing}

    # ------------------------------------------------------------------
    def ingest(self, batch: Batch) -> BinRecord:
        """Partition one bin's batch, drive every shard, merge the records."""
        if self.closed:
            raise RuntimeError("cannot ingest into a closed session")
        parts = batch.partition(self.num_shards, FLOW_FIELDS)
        if self.sharded.rebalance and self.num_shards > 1:
            self._apply_capacities(self._rebalance_capacities(parts))
        if self._pool is not None:
            records = self._pool.ingest(parts)
            self._bins_ingested += 1
        else:
            records = [session.ingest(part)
                       for session, part in zip(self.sessions, parts)]
        for index, (part, record) in enumerate(zip(parts, records)):
            self._prev_load[index] = (len(part), record.total_cycles)
        merged = BinRecord.merge(records)
        for tenant, cycles in merged.tenant_cycles.items():
            self._tenant_cycles[tenant] = \
                self._tenant_cycles.get(tenant, 0.0) + cycles
        return merged

    def ingest_trace(self, source) -> "ShardedSession":
        """Stream every bin of ``source`` through :meth:`ingest`.

        Accepts anything :func:`repro.monitor.packet.as_trace` does; a
        trace store replays out-of-core — each bin is flow-partitioned and
        fanned out to the shards, with peak memory bounded by the streaming
        trace's chunk cache.  A streaming source's cache telemetry is reset
        first, so every replay reports its own numbers.  Returns ``self``
        for chaining.

        On the worker backend with rebalancing off, ingestion is
        *pipelined*: each bin's sub-batches are shipped without waiting for
        the bin's records (the pool's double buffering bounds the run-ahead
        to two bins per shard), so partitioning and store I/O overlap shard
        compute.  Rebalancing needs the previous bin's records to compute
        capacities, so it runs in lockstep.
        """
        trace = as_trace(source)
        reset_stats = getattr(trace, "reset_stats", None)
        if reset_stats is not None:
            reset_stats()
        pipelined = (self._pool is not None
                     and not (self.sharded.rebalance and self.num_shards > 1))
        for batch in trace.batches(self.time_bin):
            if pipelined:
                if self.closed:
                    raise RuntimeError("cannot ingest into a closed session")
                parts = batch.partition(self.num_shards, FLOW_FIELDS)
                for index, part in enumerate(parts):
                    self._pool.ingest_async(index, part)
                self._bins_ingested += 1
            else:
                self.ingest(batch)
        return self

    def close(self) -> ExecutionResult:
        """Close every shard session and return the merged result."""
        if self._closed_result is not None:
            return self._closed_result
        if self._pool is not None:
            self._closed_metrics = self._merge_metrics(self._pool.metrics())
            results = self._pool.close()
        else:
            results = [session.close() for session in self.sessions]
            self._closed_metrics = self._merge_metrics(
                [(session.system.profiler,
                  session.system.feature_states.stats())
                 for session in self.sessions])
        self._closed_result = ExecutionResult.merge(
            results, query_classes=self._query_classes, budget=self.budget,
            name=self.name)
        tenants = self._tenant_metrics(
            self._closed_result.tenant_cycle_totals())
        if tenants is not None:
            self._closed_metrics["tenants"] = tenants
        return self._closed_result

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Complete execution state, as a serialisable checkpoint payload.

        The per-shard :class:`~repro.monitor.session.MonitoringSession`
        objects carry the real state; on the ``workers`` backend they are
        copied out of the worker processes at the current bin boundary
        (the workers keep streaming).  Parent-side mirrors — the previous
        bin's per-shard loads that seed the rebalancer, the query-class
        registry that drives result merging, and the possibly
        ``set_capacity``-adjusted total budget — ride along so a restored
        session continues bit-identically.  Serialise the payload
        immediately (it aliases live objects on the in-process backend);
        :mod:`repro.serve.checkpoint` wraps it in the on-disk format.
        """
        if self.closed:
            raise RuntimeError("cannot checkpoint a closed session")
        if self._pool is not None:
            shard_sessions = self._pool.session_states()
        else:
            shard_sessions = list(self.sessions)
        return {
            "kind": "sharded",
            "config": self.sharded.config,
            "time_bin": self.time_bin,
            "name": self.name,
            "total_cycles_per_second": self.sharded.total_cycles_per_second,
            "shard_sessions": shard_sessions,
            "query_classes": dict(self._query_classes),
            "prev_load": list(self._prev_load),
            "bins_ingested": self.bins_ingested,
            "query_names": list(self.query_names),
        }

    @classmethod
    def from_state(cls, state: Dict, n_workers: int = 1,
                   backend: Optional[str] = None,
                   respect_cores: bool = True) -> "ShardedSession":
        """Rebuild a session from a deserialised :meth:`state_dict` payload.

        The execution backend is chosen *at restore time* (``backend`` /
        ``n_workers``), independently of what the checkpointed run used:
        the state is backend-agnostic, so a run checkpointed on the
        ``workers`` pool may resume in-process and vice versa — results
        stay bit-identical either way.
        """
        if state.get("kind") != "sharded":
            raise ValueError(
                f"not a ShardedSession checkpoint payload: "
                f"kind={state.get('kind')!r}")
        config = state["config"]
        factory = (config.build_queries if config.queries is not None
                   else _no_queries)
        sharded = ShardedSystem(query_factory=factory, config=config,
                                n_workers=n_workers,
                                respect_cores=respect_cores,
                                backend=backend)
        sharded.total_cycles_per_second = \
            float(state["total_cycles_per_second"])
        session = cls.__new__(cls)
        session.sharded = sharded
        session.time_bin = float(state["time_bin"])
        session.name = state["name"]
        session.num_shards = sharded.num_shards
        session.budget = CycleBudget(sharded.total_cycles_per_second,
                                     session.time_bin)
        session._query_classes = dict(state["query_classes"])
        session._prev_load = list(state["prev_load"])
        session._closed_result = None
        resolved = sharded.resolve_backend()
        if resolved == "workers" and sharded.num_shards > 1:
            session.backend = "workers"
            session.sessions = None
            session._pool = ShardWorkerPool(
                sharded.shard_configs, factory,
                time_bin=session.time_bin,
                names=[s.name for s in state["shard_sessions"]])
            try:
                session._pool.load_sessions(state["shard_sessions"])
            except BaseException:
                session._pool.stop()
                raise
            session._bins_ingested = int(state["bins_ingested"])
            session._query_names = list(state["query_names"])
        else:
            session.backend = "inprocess"
            session._pool = None
            session.sessions = list(state["shard_sessions"])
        return session

    def partial_result(self) -> ExecutionResult:
        """Merged accuracy-so-far snapshot (shards keep running)."""
        if self._pool is not None:
            results = self._pool.partial_results()
        else:
            results = [session.partial_result() for session in self.sessions]
        return ExecutionResult.merge(results, query_classes=self._query_classes,
                                     budget=self.budget, name=self.name)

    # ------------------------------------------------------------------
    # Live reconfiguration (forwarded to every shard, next bin boundary)
    # ------------------------------------------------------------------
    def add_query(self, query_factory: Callable[[], Query],
                  start_time: Optional[float] = None) -> None:
        """Register a query on every shard (one fresh instance each)."""
        if self.closed:
            raise RuntimeError("cannot reconfigure a closed session")
        instances = [query_factory() for _ in range(self.num_shards)]
        if self._pool is not None:
            name = instances[0].name
            if name in self._query_names:
                raise ValueError(
                    f"a query named {name!r} is already registered")
            for shard, query in enumerate(instances):
                self._pool.add_query(shard, query, start_time=start_time)
            self._query_names.append(name)
        else:
            for session, query in zip(self.sessions, instances):
                session.add_query(query, start_time=start_time)
        self._query_classes[instances[0].name] = type(instances[0])

    def remove_query(self, name: str) -> None:
        """Deregister a query from every shard.

        The query's class stays registered for result merging: its flushed
        intervals remain part of the session's merged result.
        """
        if self.closed:
            raise RuntimeError("cannot reconfigure a closed session")
        if self._pool is not None:
            if name not in self._query_names:
                raise KeyError(f"no query named {name!r} is registered")
            for shard in range(self.num_shards):
                self._pool.remove_query(shard, name)
            self._query_names.remove(name)
        else:
            for session in self.sessions:
                session.remove_query(name)

    def set_capacity(self, cycles_per_second: float) -> None:
        """Change the *total* capacity; shards re-split it evenly.

        The rebalancer keeps lending against the new base share from the
        next bin on.
        """
        if self.closed:
            raise RuntimeError("cannot reconfigure a closed session")
        cycles_per_second = float(cycles_per_second)
        if cycles_per_second <= 0:
            raise ValueError("cycles_per_second must be positive")
        self.sharded.total_cycles_per_second = cycles_per_second
        self.budget = CycleBudget(cycles_per_second, self.time_bin)
        self._apply_capacities([cycles_per_second / self.num_shards] *
                               self.num_shards)

    # ------------------------------------------------------------------
    def _apply_capacities(self, capacities: Sequence[float]) -> None:
        """Queue per-shard capacities (cycles/s), applied next bin boundary.

        Both backends share the queued-at-boundary semantics: in-process
        sessions queue the change internally; worker commands are FIFO with
        the batches, so a capacity sent before a bin's batch is applied at
        exactly that bin's boundary.
        """
        if self._pool is not None:
            for shard, capacity in enumerate(capacities):
                self._pool.set_capacity(shard, capacity)
        else:
            for session, capacity in zip(self.sessions, capacities):
                session.set_capacity(capacity)

    def _rebalance_capacities(self, parts: Sequence[Batch]) -> List[float]:
        """Lend predicted headroom from underloaded shards to overloaded ones.

        Demand per shard is predicted as the previous bin's cycles-per-packet
        times the incoming packet count; shards with no history (or no
        packets last bin) are assumed to need their base share.  Transfers
        conserve total capacity and never push a shard below
        ``rebalance_floor`` of its base share.  The returned capacities
        (cycles per second, one per shard) are queued with
        :meth:`_apply_capacities` and applied at this bin's boundary,
        *before* the shard's own predict/shed pipeline runs — so a shard
        granted extra cycles sheds less in the very bin that needs them.
        """
        base = self.budget.per_bin / self.num_shards
        demands = []
        for index, part in enumerate(parts):
            prev = self._prev_load[index]
            if prev is None or prev[0] <= 0 or prev[1] <= 0.0:
                demands.append(base)
            else:
                demands.append(prev[1] / prev[0] * len(part))
        floor = self.rebalance_floor() * base
        headroom = [max(0.0, base - max(demand, floor))
                    for demand in demands]
        need = [max(0.0, demand - base) for demand in demands]
        lendable = float(sum(headroom))
        needed = float(sum(need))
        transfer = min(lendable, needed)
        if transfer > 0.0:
            capacities = [
                base - lend * (transfer / lendable) +
                borrow * (transfer / needed)
                for lend, borrow in zip(headroom, need)
            ]
        else:
            capacities = [base] * self.num_shards
        return [capacity / self.time_bin for capacity in capacities]

    def rebalance_floor(self) -> float:
        return self.sharded.rebalance_floor

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardedSession":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is None:
            self.close()
        elif self._pool is not None:
            # Never leak worker processes / shared memory past an error.
            self._pool.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return (f"ShardedSession(shards={self.num_shards}, "
                f"backend={self.backend!r}, "
                f"bins={self.bins_ingested}, {state})")


__all__ = [
    "FLOW_FIELDS",
    "ShardExecutionWarning",
    "ShardWorkerPool",
    "ShardedSession",
    "ShardedSystem",
    "merge_bin_records",
    "merge_execution_results",
    "merge_query_logs",
    "shard_seed",
]
