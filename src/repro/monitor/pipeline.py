"""The per-bin data path as composable pipeline stages.

Historically :meth:`MonitoringSystem._process_bin` was one ~110-line method
that executed the whole of Figure 3.2 for a time bin.  This module breaks
that data path into explicit, reusable stage objects so a bin can be driven
identically by a single :class:`~repro.monitor.system.MonitoringSystem`, by
a streaming :class:`~repro.monitor.session.MonitoringSession`, or by one
shard worker of a :class:`~repro.monitor.sharding.ShardedSystem`:

``IntervalFlushStage``
    Open the bin on the cycle clock, determine the active queries and flush
    any completed measurement intervals.
``AdmissionStage``
    Capture-buffer admission: when the backlog exceeds the buffer the batch
    is lost *uncontrollably* before any query sees it (the "DAG drops" of
    Figure 4.2) and the bin ends early.
``SystemOverheadStage``
    Charge the CoMo base cost (fixed + per packet).
``FilterStage``
    Evaluate every active query's stateless packet filter (with per-batch
    result sharing).
``PredictionStage``
    Feature extraction and per-query cycle prediction (predictive mode).
``RateDecisionStage``
    Turn predictions into per-query sampling rates (Algorithm 1 / Eq. 4.1 /
    no-op, depending on the operating mode).
``ExecutionStage``
    Apply the rates — system packet/flow sampling or the query's custom
    shedding method — and run the queries.
``AccountingStage``
    Close the bin: charge shedding overhead, feed the controller EWMAs and
    buffer discovery, and assemble the :class:`BinRecord`.

Stages share a mutable :class:`BinContext` and are stateless themselves;
all cross-bin state lives on the system (controller, enforcer, runtimes), so
one stage tuple instance can drive any number of systems concurrently.  A
stage that finishes the bin early sets ``ctx.record`` and the pipeline stops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..core.fairness import QueryDemand
from ..core.features import FeatureVector
from .capture import CaptureBuffer
from .packet import Batch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.cycles import CycleClock
    from .system import MonitoringSystem


@dataclass
class BinRecord:
    """Everything recorded about one time bin of an execution."""

    index: int
    start_ts: float
    incoming_packets: int
    incoming_bytes: int
    dropped_packets: int
    unsampled_packets: float
    predicted_cycles: float
    query_cycles: float
    prediction_overhead: float
    shedding_overhead: float
    system_overhead: float
    available_cycles: float
    delay: float
    buffer_occupation: float
    rates: Dict[str, float] = field(default_factory=dict)
    query_cycles_by_query: Dict[str, float] = field(default_factory=dict)
    #: Query cycles accounted per *declared* tenant (empty when the system
    #: runs without tenant groups).  Additive across partitions, like
    #: ``query_cycles_by_query``.
    tenant_cycles: Dict[str, float] = field(default_factory=dict)

    @property
    def total_cycles(self) -> float:
        return (self.query_cycles + self.prediction_overhead +
                self.shedding_overhead + self.system_overhead)

    @property
    def mean_rate(self) -> float:
        return float(np.mean(list(self.rates.values()))) if self.rates else 1.0

    @classmethod
    def merge(cls, records: Sequence["BinRecord"]) -> "BinRecord":
        """Fold per-partition records of the same time bin into a global one.

        The public second-tier merge: shards of one host and nodes of a
        fleet both fold through it.  Packet and cycle quantities are
        additive across partitions; ``delay`` and ``buffer_occupation``
        report the *worst* partition (the one closest to uncontrolled
        drops); per-query rates average across the partition instances of
        each query.

        The fold is associative and permutation-invariant: any grouping or
        ordering of the same records merges to the same values (sums and
        maxima commute; the rate average is over the multiset of per-
        partition rates, which nested merges preserve only when groups are
        merged once — merge a flat list, or accept the grouped average,
        which the fleet tier does knowingly for its already-averaged shard
        rates).  ``index``/``start_ts`` are taken from the first record;
        callers are expected to merge records of the same bin only.
        """
        records = list(records)
        if len(records) == 1:
            return records[0]
        first = records[0]
        rates: Dict[str, List[float]] = {}
        cycles_by_query: Dict[str, float] = {}
        cycles_by_tenant: Dict[str, float] = {}
        for record in records:
            for name, rate in record.rates.items():
                rates.setdefault(name, []).append(rate)
            for name, cycles in record.query_cycles_by_query.items():
                cycles_by_query[name] = cycles_by_query.get(name, 0.0) + cycles
            for name, cycles in record.tenant_cycles.items():
                cycles_by_tenant[name] = (cycles_by_tenant.get(name, 0.0) +
                                          cycles)
        return cls(
            index=first.index, start_ts=first.start_ts,
            incoming_packets=int(sum(r.incoming_packets for r in records)),
            incoming_bytes=int(sum(r.incoming_bytes for r in records)),
            dropped_packets=int(sum(r.dropped_packets for r in records)),
            unsampled_packets=float(sum(r.unsampled_packets
                                        for r in records)),
            predicted_cycles=float(sum(r.predicted_cycles for r in records)),
            query_cycles=float(sum(r.query_cycles for r in records)),
            prediction_overhead=float(sum(r.prediction_overhead
                                          for r in records)),
            shedding_overhead=float(sum(r.shedding_overhead
                                        for r in records)),
            system_overhead=float(sum(r.system_overhead for r in records)),
            available_cycles=float(sum(r.available_cycles for r in records)),
            delay=float(max(r.delay for r in records)),
            buffer_occupation=float(max(r.buffer_occupation
                                        for r in records)),
            rates={name: float(np.mean(values))
                   for name, values in rates.items()},
            query_cycles_by_query=cycles_by_query,
            tenant_cycles=cycles_by_tenant,
        )


@dataclass
class BinContext:
    """Mutable state one time bin accumulates while flowing through stages."""

    index: int
    batch: Batch
    clock: "CycleClock"
    buffer: CaptureBuffer
    #: Query runtimes active for this bin (arrival times already honoured).
    active: List = field(default_factory=list)
    #: CoMo base overhead charged for this bin.
    como: float = 0.0
    #: Per-query filtered sub-batches, keyed by query name.
    filtered: Dict[str, Batch] = field(default_factory=dict)
    #: Pre-shedding feature vectors (predictive mode only).
    features_pre: Dict[str, FeatureVector] = field(default_factory=dict)
    #: Per-query cycle predictions (predictive mode only).
    predictions: Dict[str, float] = field(default_factory=dict)
    #: Demands handed to the allocation strategy.  The default pipeline no
    #: longer populates this — predictions go straight into the system's
    #: :class:`~repro.core.fairness.QuerySlotTable` and ``demand_slots``
    #: below — but custom pipelines may still fill it, in which case the
    #: rate decision falls back to the classic object path.
    demands: List[QueryDemand] = field(default_factory=list)
    #: Slot-table rows (one per active query, in ``active`` order) whose
    #: ``predicted`` column was refreshed this bin; ``None`` until the
    #: prediction stage ran.
    demand_slots: Optional[np.ndarray] = None
    #: Sampling rates decided (and possibly adjusted by custom shedding).
    rates: Dict[str, float] = field(default_factory=dict)
    query_cycles_by_query: Dict[str, float] = field(default_factory=dict)
    shedding_cycles: float = 0.0
    expected_after_shedding: float = 0.0
    unsampled: float = 0.0
    #: Set by the stage that finishes the bin; stops the pipeline.
    record: Optional[BinRecord] = None


class IntervalFlushStage:
    """Open the bin and flush completed measurement intervals."""

    def run(self, system: "MonitoringSystem", ctx: BinContext) -> None:
        ctx.clock.start_bin()
        ctx.active = system._active_runtimes(ctx.batch.start_ts)
        for runtime in ctx.active:
            system._flush_intervals(runtime, ctx.batch.start_ts)


class AdmissionStage:
    """Capture-buffer admission: a full buffer drops the batch uncontrolled."""

    def run(self, system: "MonitoringSystem", ctx: BinContext) -> None:
        status = ctx.buffer.status(ctx.clock.delay)
        if not (status.dropping and len(ctx.batch) > 0):
            return
        # Uncontrolled loss: the batch never reaches the queries and the
        # bin's cycles go into draining the backlog.
        ctx.buffer.record_drop(len(ctx.batch))
        usage = ctx.clock.end_bin()
        system.controller.end_bin(
            usage.total, ctx.clock.per_bin_budget,
            ctx.buffer.status(ctx.clock.delay).occupation)
        ctx.record = BinRecord(
            index=ctx.index, start_ts=ctx.batch.start_ts,
            incoming_packets=len(ctx.batch),
            incoming_bytes=ctx.batch.byte_count,
            dropped_packets=len(ctx.batch), unsampled_packets=0.0,
            predicted_cycles=0.0, query_cycles=0.0,
            prediction_overhead=0.0, shedding_overhead=0.0,
            system_overhead=0.0,
            available_cycles=ctx.clock.per_bin_budget,
            delay=ctx.clock.delay, buffer_occupation=status.occupation,
            rates={runtime.query.name: 0.0 for runtime in ctx.active},
            query_cycles_by_query={},
        )


class SystemOverheadStage:
    """Charge the CoMo base cost of touching the batch."""

    def run(self, system: "MonitoringSystem", ctx: BinContext) -> None:
        ctx.como = (system.system_overhead_fixed +
                    system.system_overhead_per_packet * len(ctx.batch))
        ctx.clock.charge_system(ctx.como)


class FilterStage:
    """Evaluate every active query's packet filter (shared per batch)."""

    def run(self, system: "MonitoringSystem", ctx: BinContext) -> None:
        for runtime in ctx.active:
            ctx.filtered[runtime.query.name] = system._filtered_batch(
                runtime.query.filter, ctx.batch)


class PredictionStage:
    """Extract features and predict per-query cycles (predictive mode)."""

    def run(self, system: "MonitoringSystem", ctx: BinContext) -> None:
        if system.mode != "predictive":
            return
        table = system.demand_table
        slots = np.empty(len(ctx.active), dtype=np.intp)
        for position, runtime in enumerate(ctx.active):
            name = runtime.query.name
            sub_batch = ctx.filtered[name]
            feats = runtime.extractor.extract(sub_batch, update_state=False)
            ctx.features_pre[name] = feats
            prediction = runtime.predictor.predict(feats)
            runtime.last_prediction = prediction
            ctx.predictions[name] = prediction
            ctx.clock.charge_prediction(
                runtime.extractor.extraction_cost(sub_batch) +
                runtime.predictor.overhead_cycles)
            # Columnar demand path: the prediction lands in the slot table,
            # no per-bin QueryDemand objects (the effective minimum rate is
            # maintained there across bins).
            table.predicted[runtime.slot] = prediction
            slots[position] = runtime.slot
        ctx.demand_slots = slots


class RateDecisionStage:
    """Decide per-query sampling rates for the bin."""

    def run(self, system: "MonitoringSystem", ctx: BinContext) -> None:
        ctx.rates = system._decide_rates(ctx)


class ExecutionStage:
    """Apply the rates and run the queries (sampled or custom shedding)."""

    def run(self, system: "MonitoringSystem", ctx: BinContext) -> None:
        for runtime in ctx.active:
            name = runtime.query.name
            rate = ctx.rates.get(name, 1.0)
            sub_batch = ctx.filtered[name]
            if system._uses_custom(runtime):
                cycles, applied = system._run_custom(
                    runtime, sub_batch, rate, ctx.predictions.get(name, 0.0),
                    ctx.index, ctx.features_pre.get(name))
                ctx.rates[name] = applied
                ctx.unsampled += (1.0 - applied) * len(sub_batch)
            else:
                cycles, ls_cycles = system._run_sampled(
                    runtime, sub_batch, rate, ctx.features_pre.get(name))
                ctx.shedding_cycles += ls_cycles
                ctx.unsampled += (1.0 - rate) * len(sub_batch)
            ctx.query_cycles_by_query[name] = cycles
            ctx.clock.charge_query(cycles)
            ctx.expected_after_shedding += ctx.predictions.get(name, 0.0) * rate


class AccountingStage:
    """Close the bin: controller feedback and the final :class:`BinRecord`."""

    def run(self, system: "MonitoringSystem", ctx: BinContext) -> None:
        # ``unsampled`` is reported per packet of the input stream (averaged
        # over the queries), not summed across queries.
        if ctx.active:
            ctx.unsampled /= len(ctx.active)
        ctx.clock.charge_shedding(ctx.shedding_cycles)
        total_query_cycles = float(sum(ctx.query_cycles_by_query.values()))
        if system.mode == "predictive":
            system.controller.record_shedding_overhead(ctx.shedding_cycles)
            system.controller.record_prediction_error(
                ctx.expected_after_shedding, total_query_cycles)
        ctx.clock.record_prediction(float(sum(ctx.predictions.values())))

        usage = ctx.clock.end_bin()
        occupation = ctx.buffer.status(ctx.clock.delay).occupation
        system.controller.end_bin(usage.total, ctx.clock.per_bin_budget,
                                  occupation)
        system._prev_query_cycles = total_query_cycles
        system._prev_reactive_rate = (np.mean(list(ctx.rates.values()))
                                      if ctx.rates else 1.0)
        tenant_cycles: Dict[str, float] = {}
        registry = getattr(system, "tenant_registry", None)
        if registry is not None and registry.declared:
            owners = registry.declared_tenant_of
            for name, cycles in ctx.query_cycles_by_query.items():
                tenant = owners.get(name)
                if tenant is not None:
                    tenant_cycles[tenant] = \
                        tenant_cycles.get(tenant, 0.0) + cycles
        ctx.record = BinRecord(
            index=ctx.index, start_ts=ctx.batch.start_ts,
            incoming_packets=len(ctx.batch),
            incoming_bytes=ctx.batch.byte_count,
            dropped_packets=0, unsampled_packets=ctx.unsampled,
            predicted_cycles=usage.predicted,
            query_cycles=usage.queries,
            prediction_overhead=usage.prediction_overhead,
            shedding_overhead=usage.shedding_overhead,
            system_overhead=usage.system_overhead,
            available_cycles=ctx.clock.per_bin_budget,
            delay=ctx.clock.delay, buffer_occupation=occupation,
            rates=dict(ctx.rates),
            query_cycles_by_query=ctx.query_cycles_by_query,
            tenant_cycles=tenant_cycles,
        )


#: The canonical stage order of Figure 3.2.  Stages are stateless, so the
#: singletons can be shared by every system in the process.
DEFAULT_STAGES = (
    IntervalFlushStage(),
    AdmissionStage(),
    SystemOverheadStage(),
    FilterStage(),
    PredictionStage(),
    RateDecisionStage(),
    ExecutionStage(),
    AccountingStage(),
)


class BinPipeline:
    """Drives one time bin through an ordered tuple of stages.

    The default stage tuple reproduces the historical monolithic
    ``_process_bin`` bit for bit; custom pipelines can insert, replace or
    drop stages (e.g. a tap stage for telemetry) as long as the stages they
    keep see the context fields they expect.
    """

    def __init__(self, stages: Optional[Sequence] = None) -> None:
        self.stages = tuple(stages) if stages is not None else DEFAULT_STAGES

    def process(self, system: "MonitoringSystem", index: int, batch: Batch,
                clock: "CycleClock", buffer: CaptureBuffer) -> BinRecord:
        """Run ``batch`` through the stages and return the bin's record."""
        ctx = BinContext(index=index, batch=batch, clock=clock, buffer=buffer)
        profiler = getattr(system, "profiler", None)
        if profiler is None:
            for stage in self.stages:
                stage.run(system, ctx)
                if ctx.record is not None:
                    break
        else:
            bin_seconds = 0.0
            for stage in self.stages:
                cycles_before = clock.current.total
                started = perf_counter()
                stage.run(system, ctx)
                elapsed = perf_counter() - started
                cycles_after = clock.current.total
                # ``start_bin``/``end_bin`` inside a stage reset or close the
                # usage record; a shrinking total means the stage opened a
                # fresh bin, so its own charges are the post value.
                delta = cycles_after - cycles_before
                if delta < 0.0:
                    delta = cycles_after
                profiler.record(type(stage).__name__, elapsed, delta)
                bin_seconds += elapsed
                if ctx.record is not None:
                    break
            profiler.end_bin(bin_seconds)
        if ctx.record is None:  # pragma: no cover - defensive
            raise RuntimeError("pipeline finished without producing a record")
        return ctx.record


__all__ = [
    "AccountingStage",
    "AdmissionStage",
    "BinContext",
    "BinPipeline",
    "BinRecord",
    "DEFAULT_STAGES",
    "ExecutionStage",
    "FilterStage",
    "IntervalFlushStage",
    "PredictionStage",
    "RateDecisionStage",
    "SystemOverheadStage",
]
