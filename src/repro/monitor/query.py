"""Plug-in query API.

A *query* (the paper also calls it a monitoring application or plug-in
module) is a black box from the point of view of the load shedding scheme:
the system hands it batches of packets and observes only the cycles it
consumed.  The interface below mirrors the CoMo callbacks of Table 2.1 in a
pythonic form:

``update(batch, sampling_rate)``
    Process the packets of one batch, maintaining arbitrary internal state.
``interval_result()``
    Called at each measurement-interval boundary; returns the query's results
    for the interval (a dict of named values) and resets interval state.
``shed_load(batch, target_fraction)``
    Optional custom load shedding hook (Chapter 6): the query itself reduces
    its work to roughly ``target_fraction`` of the full-batch cost and
    returns the sampling-equivalent fraction it actually applied.

Cost accounting: queries *charge* the basic operations they really perform to
a :class:`~repro.core.cycles.CycleMeter`; the system reads the accumulated
total after each batch.  The predictor never sees the individual charges.
"""

from __future__ import annotations

import numbers
from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Sequence

from ..core.cycles import CycleMeter, OperationCosts
from .filters import Filter, all_packets
from .packet import Batch


def merge_additive(values: Sequence, context: str = "result") -> object:
    """Fold per-shard values of one result key by addition.

    Numbers sum; dicts of numbers merge key-wise (the union of keys, each
    summed).  Anything else — rankings, verdict lists, nested structures —
    has no universal merge and must be declared in the owning query's
    :attr:`Query.RESULT_MERGE` spec (or handled by a
    :meth:`Query.derive_merged` hook).
    """
    first = values[0]
    if isinstance(first, dict):
        merged: Dict = {}
        for value in values:
            for key, item in value.items():
                if not isinstance(item, numbers.Number):
                    raise TypeError(
                        f"cannot merge {context}[{key!r}] values of type "
                        f"{type(item).__name__}; declare a RESULT_MERGE "
                        "rule for this key")
                merged[key] = merged.get(key, 0) + item
        return merged
    if isinstance(first, numbers.Number):
        return sum(values)
    raise TypeError(
        f"cannot merge {context} values of type {type(first).__name__}; "
        "declare a RESULT_MERGE rule for this key")


def merge_max(values: Sequence, context: str = "result") -> float:
    """Fold per-shard values by taking the maximum."""
    return max(values)


def merge_union(sort_key: Optional[Callable] = None,
                coerce: Optional[Callable] = None) -> Callable:
    """Rule factory: sorted union of per-shard item collections.

    ``coerce`` normalises items before deduplication (e.g. ``tuple`` for
    cluster coordinates that deserialise as lists); ``sort_key`` orders the
    merged list (natural order by default).
    """
    def rule(values: Sequence, context: str = "result") -> list:
        union = set()
        for collection in values:
            union.update(coerce(item) if coerce is not None else item
                         for item in collection)
        return sorted(union, key=sort_key)
    return rule


#: Named merge rules usable in :attr:`Query.RESULT_MERGE`.  ``"sum"`` is
#: also the fallback for keys with no declared rule.  The special rule
#: ``"derived"`` marks keys the per-key fold skips entirely — the query's
#: :meth:`Query.derive_merged` hook recomputes them from the merged values.
MERGE_RULES: Dict[str, Callable] = {
    "sum": merge_additive,
    "max": merge_max,
    "union": merge_union(),
}

#: Sampling methods a query can request from the system load shedders.
SAMPLING_PACKET = "packet"
SAMPLING_FLOW = "flow"
SAMPLING_CUSTOM = "custom"


class Query(ABC):
    """Base class for plug-in monitoring queries.

    Subclasses set the class attributes below and implement
    :meth:`update` and :meth:`interval_result`.

    Attributes
    ----------
    name:
        Unique query name (used in reports and accuracy tables).
    sampling_method:
        ``"packet"``, ``"flow"`` or ``"custom"`` — which shedding mechanism
        the query selects at configuration time.
    minimum_sampling_rate:
        The ``m_q`` constraint of Chapter 5: the lowest sampling rate under
        which the user still considers the results useful.
    measurement_interval:
        Seconds between result flushes.
    needs_payload:
        Whether the query requires packet payloads to operate.
    """

    name: str = "query"
    sampling_method: str = SAMPLING_PACKET
    minimum_sampling_rate: float = 0.0
    measurement_interval: float = 1.0
    needs_payload: bool = False

    #: Declarative shard-merge spec: result key -> merge rule.  A rule is a
    #: name from :data:`MERGE_RULES` or a callable ``(values, context) ->
    #: merged``; keys with no entry fold additively (numbers sum, dicts of
    #: numbers merge key-wise).  Queries whose merged result has *derived*
    #: keys (a ranking recomputed from merged volumes, say) override
    #: :meth:`derive_merged` on top.
    RESULT_MERGE: Dict[str, object] = {}

    def __init__(
        self,
        packet_filter: Optional[Filter] = None,
        costs: Optional[OperationCosts] = None,
        name: Optional[str] = None,
    ) -> None:
        self.filter = packet_filter if packet_filter is not None else all_packets()
        self.meter = CycleMeter(costs=costs)
        if name is not None:
            self.name = name
        self.enabled = True
        #: Sampling rate applied to the most recent batch (1.0 = no shedding).
        self.last_sampling_rate = 1.0

    # ------------------------------------------------------------------
    # Callbacks implemented by concrete queries
    # ------------------------------------------------------------------
    @abstractmethod
    def update(self, batch: Batch, sampling_rate: float) -> None:
        """Process one (possibly sampled) batch.

        ``sampling_rate`` is the probability with which each packet (or flow)
        of the original filtered batch was retained; queries use it to
        estimate their unsampled output (typically by scaling counters by
        ``1 / sampling_rate``).
        """

    @abstractmethod
    def interval_result(self) -> Dict[str, float]:
        """Return results for the current measurement interval and reset it."""

    def reset(self) -> None:
        """Reset all query state (start of a fresh execution)."""
        self.meter.reset()
        self.enabled = True
        self.last_sampling_rate = 1.0

    # ------------------------------------------------------------------
    @property
    def feature_share_key(self):
        """Key identifying the packet stream this query's extractor sees.

        Queries whose key matches (and whose measurement interval and
        counter backend also match) share per-interval feature-extraction
        state — see :class:`repro.core.features.FeatureStateRegistry`.  The
        default is the filter's ``cache_key``; ``None`` (a hand-written
        predicate, or an override) disables sharing for this query.
        """
        return self.filter.cache_key

    # ------------------------------------------------------------------
    # Sharded execution support
    # ------------------------------------------------------------------
    @classmethod
    def merge_interval_results(cls, results: Sequence[Dict]) -> Dict:
        """Fold per-shard :meth:`interval_result` dicts into one global one.

        When a stream is flow-hash partitioned across N shard instances of
        the same query (:mod:`repro.monitor.sharding`), each shard produces
        its own per-interval result; this classmethod defines how those fold
        back into the result a single instance over the whole stream would
        report.  Each result key folds by the rule declared for it in
        :attr:`RESULT_MERGE` (additive by default — exact for per-flow
        state, since flows never span shards, and for plain counters), and
        :meth:`derive_merged` then recomputes any keys that are functions
        of the merged values rather than folds of the per-shard ones.

        The fold runs over the *union* of the per-shard keys: a key absent
        from some shards (a query result that grew a field mid-stream, a
        shard that saw no matching traffic) merges over the shards that do
        report it instead of being dropped or raising ``KeyError``.
        """
        results = list(results)
        if not results:
            return {}
        if len(results) == 1:
            return dict(results[0])
        keys: list = []
        for result in results:
            for key in result:
                if key not in keys:
                    keys.append(key)
        merged: Dict = {}
        for key in keys:
            rule = cls.RESULT_MERGE.get(key, "sum")
            if rule == "derived":
                continue  # recomputed from merged values in derive_merged
            if isinstance(rule, str):
                rule = MERGE_RULES[rule]
            merged[key] = rule([r[key] for r in results if key in r],
                               context=key)
        return cls.derive_merged(merged, results)

    @classmethod
    def derive_merged(cls, merged: Dict, results: Sequence[Dict]) -> Dict:
        """Hook: recompute result keys derived from the merged values.

        Called by :meth:`merge_interval_results` after the per-key fold,
        with the folded dict and the original per-shard results.  The
        default returns ``merged`` unchanged; queries like ``top-k``
        (ranking recomputed from summed volumes) override it.
        """
        return merged

    # ------------------------------------------------------------------
    # Custom load shedding hook (Chapter 6)
    # ------------------------------------------------------------------
    @property
    def supports_custom_shedding(self) -> bool:
        """True when the query implements its own load shedding method."""
        return self.sampling_method == SAMPLING_CUSTOM

    def shed_load(self, batch: Batch, target_fraction: float) -> float:
        """Custom shedding: reduce the work on ``batch`` to ``target_fraction``.

        Implementations must process the batch themselves (calling
        :meth:`update` or equivalent internal logic) and return the fraction
        of the full-batch resource usage they actually consumed, which the
        enforcement policy compares against its measurement.  The default
        raises, since most queries rely on system sampling.
        """
        raise NotImplementedError(
            f"query {self.name!r} does not implement custom load shedding")

    # ------------------------------------------------------------------
    # Cost accounting helpers
    # ------------------------------------------------------------------
    def charge(self, operation: str, count: float = 1.0) -> None:
        """Charge ``count`` repetitions of a basic operation to the meter."""
        self.meter.charge(operation, count)

    def consume_cycles(self) -> float:
        """Read and reset the cycles accumulated for the last batch."""
        return self.meter.consume()

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def process(self, batch: Batch, sampling_rate: float = 1.0) -> float:
        """Filter, update and return the cycles consumed for one batch.

        This is the path used by standalone examples and tests; the full
        monitoring system drives the same callbacks itself so it can place
        the load shedders between the filter and the query.
        """
        filtered = self.filter.apply(batch)
        self.last_sampling_rate = sampling_rate
        self.update(filtered, sampling_rate)
        return self.consume_cycles()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class QueryResultLog:
    """Accumulates per-interval results of one query over an execution.

    The experiment harness uses two logs per query — one from the evaluated
    (load shedding) run and one from a reference run on the full trace — and
    feeds them to the accuracy metrics of :mod:`repro.monitor.metrics`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.intervals: list = []
        self.results: list = []

    def append(self, interval_start: float, result: Dict[str, float]) -> None:
        self.intervals.append(float(interval_start))
        self.results.append(result)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(zip(self.intervals, self.results))

    def result_at(self, index: int) -> Dict[str, float]:
        return self.results[index]
