"""Monitoring-system substrate: packets, filters, queries, capture, metrics."""

from . import filters, metrics
from .capture import BufferStatus, CaptureBuffer
from .config import (MODES, MODE_ALIASES, SHARD_BACKENDS,
                     ReproDeprecationWarning, SystemConfig)
from .packet import (PROTO_ICMP, PROTO_TCP, PROTO_UDP, Batch, Packet,
                     PacketTrace, StreamingTrace, as_trace, format_ip, ip)
from .query import (SAMPLING_CUSTOM, SAMPLING_FLOW, SAMPLING_PACKET, Query,
                    QueryResultLog)
from .pipeline import BinPipeline
from .session import MonitoringSession
from .sharding import ShardedSession, ShardedSystem
from .system import (BinRecord, ExecutionResult, MonitoringSystem)
from .workers import ShardExecutionWarning, ShardWorkerError, ShardWorkerPool

__all__ = [
    "Batch",
    "BinPipeline",
    "BinRecord",
    "BufferStatus",
    "CaptureBuffer",
    "ShardedSession",
    "ShardedSystem",
    "ExecutionResult",
    "MODES",
    "MODE_ALIASES",
    "MonitoringSession",
    "MonitoringSystem",
    "ReproDeprecationWarning",
    "SHARD_BACKENDS",
    "ShardExecutionWarning",
    "ShardWorkerError",
    "ShardWorkerPool",
    "SystemConfig",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "PacketTrace",
    "Query",
    "QueryResultLog",
    "SAMPLING_CUSTOM",
    "SAMPLING_FLOW",
    "SAMPLING_PACKET",
    "StreamingTrace",
    "as_trace",
    "filters",
    "format_ip",
    "ip",
    "metrics",
]
