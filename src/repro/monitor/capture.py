"""Capture process model: input buffers and uncontrolled packet drops.

Real deployments use DAG capture cards with a fixed amount of buffer memory
(256 MB in the paper's online executions).  When the monitoring process falls
behind, the buffer absorbs the backlog; once it fills up, packets are dropped
*uncontrollably* — these are the "DAG drops" of Figure 4.2, the failure mode
load shedding is designed to avoid.

This module models the buffer in units of CPU cycles of backlog: the system
is ``delay`` cycles behind real time, the buffer can absorb up to
``capacity_cycles`` of backlog, and a batch arriving while the buffer is full
is lost before any query sees it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BufferStatus:
    """Occupation of the capture buffer at a point in time."""

    occupation: float        # fraction of the buffer in use, [0, 1]
    dropping: bool           # True when an arriving batch would be lost


class CaptureBuffer:
    """Finite capture buffer expressed in cycles of processing backlog.

    Parameters
    ----------
    capacity_seconds:
        How many seconds of processing backlog the buffer can absorb; the
        paper's experiments emulate a buffer of 200 ms of traffic
        (Section 5.5.3).  ``None`` means an infinite buffer (used for
        reference executions, which must never drop packets).
    cycles_per_second:
        Conversion factor between backlog seconds and cycles.
    """

    def __init__(self, capacity_seconds: float = 0.2,
                 cycles_per_second: float = 3e8) -> None:
        if capacity_seconds is not None and capacity_seconds < 0:
            raise ValueError("capacity_seconds must be non-negative or None")
        self.capacity_seconds = capacity_seconds
        self.cycles_per_second = float(cycles_per_second)
        self.dropped_packets = 0
        self.dropped_batches = 0

    @property
    def infinite(self) -> bool:
        return self.capacity_seconds is None

    @property
    def capacity_cycles(self) -> float:
        if self.infinite:
            return float("inf")
        return self.capacity_seconds * self.cycles_per_second

    def status(self, delay_cycles: float) -> BufferStatus:
        """Occupation given the current processing backlog."""
        if self.infinite:
            return BufferStatus(occupation=0.0, dropping=False)
        capacity = self.capacity_cycles
        occupation = 0.0 if capacity <= 0 else min(1.0, delay_cycles / capacity)
        return BufferStatus(occupation=occupation,
                            dropping=delay_cycles >= capacity)

    def record_drop(self, packets: int) -> None:
        """Account for an arriving batch lost to a full buffer."""
        self.dropped_packets += int(packets)
        self.dropped_batches += 1

    def reset(self) -> None:
        self.dropped_packets = 0
        self.dropped_batches = 0
