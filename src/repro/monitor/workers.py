"""Persistent shard workers with shared-memory batch transport.

The original pooled shard path (:meth:`ShardedSystem._run_pooled`) forks a
fresh process pool per run, pre-partitions the *whole* stream in the parent
and pickles per-shard execution results back — workable for small in-memory
traces, but it materialises every sub-batch up front (defeating the
out-of-core trace store), cannot rebalance capacity between shards, and on
dense streams the per-run fork/pickle round trips cost more than the
parallelism buys (the ``streaming_replay`` bench recorded 4 sharded workers
running ~1.8x *slower* than serial).

:class:`ShardWorkerPool` replaces that with one **long-lived worker process
per shard**.  Each worker owns its shard's full
:class:`~repro.monitor.session.MonitoringSession` (the whole predict →
allocate → shed → execute pipeline, resident across bins) and is fed one
pre-partitioned sub-batch per time bin:

* **Transport** — the parent packs each sub-batch's columns into a
  ``multiprocessing.shared_memory`` segment using the canonical
  :func:`repro.monitor.packet.column_layout` wire format (the same column
  layout the trace store mmaps), so no column data is ever pickled.  Two
  segments per worker are used round-robin (double buffering): the parent
  packs bin ``i + 1`` into one slot while the worker still reads bin ``i``
  from the other.  The worker copies the columns out of the segment when
  it builds its :class:`~repro.monitor.packet.Batch` (one contiguous
  memcpy per column), after which the slot is free for reuse — zero
  serialisation, one copy.  Payloads, when present, are variable-length
  Python objects and ride the command pipe instead.
* **Result channel** — every ingested bin answers with its
  :class:`~repro.monitor.pipeline.BinRecord` on a per-worker result pipe.
  Control messages (capacity changes — including the per-bin
  capacity-rebalance updates computed by the parent from the previous
  bin's records — query arrivals/departures, partial-result snapshots)
  are piggybacked on the command pipe in FIFO order with the batches, so
  they apply at exactly the bin boundary they would in-process.
* **Lifecycle** — :meth:`close` flushes every worker's session and returns
  the per-shard :class:`~repro.monitor.system.ExecutionResult` list for
  merging; :meth:`stop` (idempotent, also run by ``close`` and ``__del__``)
  joins the processes and closes *and unlinks* every shared-memory
  segment, so no ``/dev/shm`` entries outlive the pool.  A worker dying
  mid-stream surfaces as a :class:`ShardWorkerError` naming the shard, not
  a hang.

Workers are started with the ``fork`` start method when the platform has
it, so the per-shard configs and the query factory are inherited rather
than pickled (lambda factories keep working).  On spawn-only platforms the
pool still runs, but configs and factories must then be picklable.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from multiprocessing import shared_memory
from typing import Callable, List, Optional, Sequence

from .packet import Batch

__all__ = [
    "ShardExecutionWarning",
    "ShardWorkerError",
    "ShardWorkerPool",
    "fork_start_available",
]

#: Smallest shared-memory segment the pool allocates; grown segments get a
#: 25% headroom so a slowly growing stream does not reallocate every bin.
_MIN_SEGMENT_BYTES = 1 << 16
_GROWTH_FACTOR = 1.25

#: Seconds between liveness checks while waiting on a worker response.
_POLL_INTERVAL = 0.05
#: Seconds :meth:`ShardWorkerPool.stop` waits for a worker to exit before
#: terminating it.
_JOIN_TIMEOUT = 5.0


class ShardWorkerError(RuntimeError):
    """A shard worker process failed (raised, or died without answering)."""


class ShardExecutionWarning(UserWarning):
    """A sharded execution that requested process workers runs in-process.

    Emitted instead of silently degrading, so callers asking for
    ``n_workers > 1`` learn that their session executes serially (e.g. the
    fork-pool backend was chosen, which has no streaming-session support).
    """


def fork_start_available() -> bool:
    """Whether the host supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without tracker interference.

    The attaching process must not register the segment with the
    ``resource_tracker`` — the parent owns it and unlinks it on pool
    shutdown; a duplicate registration confuses the (fork-shared) tracker
    into dropping the parent's registration or double-unlinking at worker
    exit.  Python 3.13 exposes ``track=False`` for exactly this; older
    versions get the registration suppressed during the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


# ----------------------------------------------------------------------
# Worker process main loop
# ----------------------------------------------------------------------
def _shard_worker_main(shard_index: int, config, query_factory,
                       time_bin: float, name: str, commands,
                       results) -> None:
    """One shard, resident: build the session once, serve bins forever.

    ``commands`` / ``results`` are the worker ends of the per-shard pipes.
    Every message is handled in FIFO order, which is what gives control
    messages (capacity, query arrivals) their bin-boundary semantics: a
    ``set_capacity`` sent before bin ``i``'s batch is queued by the
    session and applied when bin ``i`` is ingested, exactly as in-process.
    """
    segments = {}
    try:
        system = config.build(query_factory())
        session = system.open_session(time_bin=time_bin, name=name)
        while True:
            message = commands.recv()
            kind = message[0]
            if kind == "ingest":
                _, seq, segment_name, n, bin_len, start_ts, payloads = message
                if n:
                    segment = segments.get(segment_name)
                    if segment is None:
                        segment = _attach_segment(segment_name)
                        segments[segment_name] = segment
                    # Copy the columns out of the slot: the batch then owns
                    # its arrays and the parent may repack the slot as soon
                    # as it sees this bin's record.
                    batch = Batch.from_buffer(
                        segment.buf, n, time_bin=bin_len, start_ts=start_ts,
                        payloads=payloads, copy=True)
                else:
                    batch = Batch.empty(time_bin=bin_len, start_ts=start_ts,
                                        with_payloads=payloads is not None)
                record = session.ingest(batch)
                results.send(("record", seq, record))
            elif kind == "set_capacity":
                session.set_capacity(message[1])
            elif kind == "add_query":
                session.add_query(message[1], start_time=message[2])
            elif kind == "remove_query":
                session.remove_query(message[1])
            elif kind == "partial":
                results.send(("partial", message[1], session.partial_result()))
            elif kind == "metrics":
                # Ship the live profiler and sharing stats; the parent folds
                # the per-shard profiles into one summary.
                results.send(("metrics", message[1],
                              (session.system.profiler,
                               session.system.feature_states.stats())))
            elif kind == "state":
                # Checkpoint capture: ship the whole session back.  Pickling
                # it over the pipe *is* the snapshot — the parent receives a
                # private copy while this worker's live session streams on.
                results.send(("state", message[1], session))
            elif kind == "load_session":
                # Checkpoint restore: adopt the session shipped by the
                # parent (unpickling rebuilt it in this process), replacing
                # the fresh one built at startup.
                session = message[2]
                results.send(("loaded", message[1], True))
            elif kind == "close":
                results.send(("result", message[1], session.close()))
            elif kind == "detach":
                segment = segments.pop(message[1], None)
                if segment is not None:
                    segment.close()
            elif kind == "stop":
                break
            else:  # pragma: no cover - protocol error
                raise ValueError(f"unknown worker command {kind!r}")
    except (EOFError, KeyboardInterrupt):  # parent went away; just exit
        pass
    except BaseException:
        try:
            results.send(("error", shard_index, traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        for segment in segments.values():
            try:
                segment.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass


# ----------------------------------------------------------------------
# Parent-side handles
# ----------------------------------------------------------------------
class _Slot:
    """One shared-memory buffer slot of a worker's double buffer."""

    __slots__ = ("shm", "capacity", "busy_seq")

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self.shm = shm
        self.capacity = shm.size
        #: Sequence number of the ingest currently reading from this slot;
        #: the slot may be repacked once that sequence has been acked.
        self.busy_seq: Optional[int] = None


class _Worker:
    """Parent-side handle of one shard worker."""

    __slots__ = ("index", "process", "commands", "results", "slots", "seq",
                 "acked", "pending_unlinks")

    def __init__(self, index: int, process, commands, results,
                 slots: List[_Slot]) -> None:
        self.index = index
        self.process = process
        self.commands = commands
        self.results = results
        self.slots = slots
        self.seq = 0
        self.acked = 0
        #: Retired (grown-out-of) segments awaiting unlink, as
        #: ``(shm, fence_seq)``: safe to unlink once ``acked >= fence_seq``
        #: (FIFO command handling guarantees the worker processed the
        #: preceding ``detach`` by then).
        self.pending_unlinks: List[tuple] = []


class ShardWorkerPool:
    """One persistent process per shard, fed through shared memory.

    Parameters
    ----------
    configs:
        Per-shard :class:`~repro.monitor.config.SystemConfig` objects (as
        built by :class:`~repro.monitor.sharding.ShardedSystem`).
    query_factory:
        Zero-argument callable returning fresh query instances; called
        once *inside* each worker, so per-shard query state never crosses
        a process boundary.
    time_bin, names:
        Session parameters forwarded to each worker's
        ``open_session(time_bin=..., name=names[i])``.
    """

    def __init__(self, configs: Sequence, query_factory: Callable,
                 time_bin: float, names: Sequence[str],
                 buffers_per_worker: int = 2) -> None:
        if len(names) != len(configs):
            raise ValueError("need one session name per shard config")
        method = "fork" if fork_start_available() else None
        context = multiprocessing.get_context(method)
        self._closed_results: Optional[List] = None
        self._stopped = False
        self._failed: Optional[str] = None
        #: Every segment name this pool ever created (leak tests read it).
        self.created_segments: List[str] = []
        self._workers: List[_Worker] = []
        try:
            for index, config in enumerate(configs):
                command_recv, command_send = multiprocessing.Pipe(duplex=False)
                result_recv, result_send = multiprocessing.Pipe(duplex=False)
                slots = [self._new_slot(_MIN_SEGMENT_BYTES)
                         for _ in range(int(buffers_per_worker))]
                process = context.Process(
                    target=_shard_worker_main,
                    args=(index, config, query_factory, float(time_bin),
                          names[index], command_recv, result_send),
                    daemon=True,
                    name=f"repro-shard-{index}")
                process.start()
                # The worker owns these ends now; closing the parent's
                # copies keeps fd counts flat across many pools.
                command_recv.close()
                result_send.close()
                self._workers.append(_Worker(index, process, command_send,
                                             result_recv, slots))
        except BaseException:
            self.stop()
            raise

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._workers)

    @property
    def stopped(self) -> bool:
        return self._stopped

    def _new_slot(self, nbytes: int) -> _Slot:
        shm = shared_memory.SharedMemory(
            create=True, size=max(int(nbytes), _MIN_SEGMENT_BYTES))
        self.created_segments.append(shm.name)
        return _Slot(shm)

    # ------------------------------------------------------------------
    # Failure plumbing
    # ------------------------------------------------------------------
    def _fail(self, message: str) -> "ShardWorkerError":
        self._failed = message
        self.stop()
        return ShardWorkerError(message)

    def _check_usable(self) -> None:
        if self._failed is not None:
            raise ShardWorkerError(self._failed)
        if self._stopped:
            raise ShardWorkerError("the shard worker pool has been stopped")

    def _send(self, worker: _Worker, message: tuple) -> None:
        try:
            worker.commands.send(message)
        except (BrokenPipeError, OSError):
            raise self._fail(
                f"shard worker {worker.index} died (its command channel is "
                "closed); the sharded execution cannot continue") from None

    def _recv(self, worker: _Worker):
        """Next response from ``worker``; raises if the worker died."""
        while True:
            try:
                if worker.results.poll(_POLL_INTERVAL):
                    response = worker.results.recv()
                    break
            except (EOFError, OSError):
                raise self._fail(
                    f"shard worker {worker.index} died mid-stream without "
                    "reporting a result") from None
            if not worker.process.is_alive():
                # One final drain: the worker may have answered (or sent
                # its error report) just before exiting.
                try:
                    if worker.results.poll(0):
                        response = worker.results.recv()
                        break
                except (EOFError, OSError):
                    pass
                raise self._fail(
                    f"shard worker {worker.index} died mid-stream "
                    f"(exit code {worker.process.exitcode}) without "
                    "reporting a result")
        if response[0] == "error":
            raise self._fail(
                f"shard worker {response[1]} raised:\n{response[2]}")
        return response

    def _note_ack(self, worker: _Worker, seq: int) -> None:
        worker.acked = max(worker.acked, int(seq))
        while worker.pending_unlinks and \
                worker.pending_unlinks[0][1] <= worker.acked:
            shm, _ = worker.pending_unlinks.pop(0)
            self._release_segment(shm)

    @staticmethod
    def _release_segment(shm: shared_memory.SharedMemory) -> None:
        try:
            shm.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest_async(self, shard: int, batch: Batch) -> int:
        """Ship one bin's sub-batch to ``shard``; returns its sequence id.

        Does not wait for the bin's record: with rebalancing off the
        caller may run up to ``buffers_per_worker`` bins ahead per shard
        (the slot acquisition below enforces exactly that window).  Pair
        with :meth:`wait_record` for lockstep semantics.
        """
        self._check_usable()
        worker = self._workers[shard]
        worker.seq += 1
        seq = worker.seq
        n = len(batch)
        segment_name = None
        if n:
            slot = worker.slots[seq % len(worker.slots)]
            # Flow control: the slot is free only once the bin that last
            # used it has been answered.
            while slot.busy_seq is not None and worker.acked < slot.busy_seq:
                response = self._recv(worker)
                self._note_ack(worker, response[1])
            needed = batch.buffer_nbytes()
            if needed > slot.capacity:
                # Grow: retire the old segment (unlink deferred until the
                # worker has provably moved past the detach message).
                self._send(worker, ("detach", slot.shm.name))
                worker.pending_unlinks.append((slot.shm, seq))
                new_slot = self._new_slot(int(needed * _GROWTH_FACTOR))
                worker.slots[seq % len(worker.slots)] = new_slot
                slot = new_slot
            batch.pack_into(slot.shm.buf)
            slot.busy_seq = seq
            segment_name = slot.shm.name
        self._send(worker, ("ingest", seq, segment_name, n, batch.time_bin,
                            batch.start_ts, batch.payloads))
        return seq

    def wait_record(self, shard: int, seq: int):
        """Block until ``shard`` answers sequence ``seq``; return its record.

        Responses arrive in FIFO order; records overtaken while waiting
        (possible only when the caller ran ahead with :meth:`ingest_async`)
        are acknowledged and dropped — their bins are already folded into
        the worker session's own result.
        """
        self._check_usable()
        worker = self._workers[shard]
        while worker.acked < seq:
            response = self._recv(worker)
            self._note_ack(worker, response[1])
            if response[0] == "record" and response[1] == seq:
                return response[2]
        raise ShardWorkerError(  # pragma: no cover - protocol error
            f"record {seq} of shard {shard} was already consumed")

    def ingest(self, parts: Sequence[Batch]) -> List:
        """Lockstep helper: one bin across all shards, records returned.

        All sub-batches are shipped first so the shards compute the bin
        concurrently; the parent then gathers one record per shard.
        """
        seqs = [self.ingest_async(shard, part)
                for shard, part in enumerate(parts)]
        return [self.wait_record(shard, seq)
                for shard, seq in enumerate(seqs)]

    # ------------------------------------------------------------------
    # Control messages (FIFO with the batches: bin-boundary semantics)
    # ------------------------------------------------------------------
    def set_capacity(self, shard: int, cycles_per_second: float) -> None:
        self._check_usable()
        self._send(self._workers[shard],
                   ("set_capacity", float(cycles_per_second)))

    def add_query(self, shard: int, query, start_time=None) -> None:
        self._check_usable()
        self._send(self._workers[shard], ("add_query", query, start_time))

    def remove_query(self, shard: int, name: str) -> None:
        self._check_usable()
        self._send(self._workers[shard], ("remove_query", name))

    # ------------------------------------------------------------------
    # Results and lifecycle
    # ------------------------------------------------------------------
    def partial_results(self) -> List:
        """Accuracy-so-far snapshot of every shard (sessions keep running)."""
        self._check_usable()
        seqs = []
        for worker in self._workers:
            worker.seq += 1
            self._send(worker, ("partial", worker.seq))
            seqs.append(worker.seq)
        return [self._await_payload(worker, seq, "partial")
                for worker, seq in zip(self._workers, seqs)]

    def metrics(self) -> List:
        """Per-shard ``(profiler, sharing_stats)`` pairs (sessions keep
        running).  FIFO with the batches, so each shard's numbers land at a
        bin boundary."""
        self._check_usable()
        seqs = []
        for worker in self._workers:
            worker.seq += 1
            self._send(worker, ("metrics", worker.seq))
            seqs.append(worker.seq)
        return [self._await_payload(worker, seq, "metrics")
                for worker, seq in zip(self._workers, seqs)]

    def session_states(self) -> List:
        """Checkpoint capture: every worker's resident session, copied out.

        FIFO with the batches, so the snapshot lands exactly at a bin
        boundary; the workers keep streaming afterwards.
        """
        self._check_usable()
        seqs = []
        for worker in self._workers:
            worker.seq += 1
            self._send(worker, ("state", worker.seq))
            seqs.append(worker.seq)
        return [self._await_payload(worker, seq, "state")
                for worker, seq in zip(self._workers, seqs)]

    def load_sessions(self, sessions: Sequence) -> None:
        """Checkpoint restore: replace every worker's resident session.

        Each worker adopts the session object shipped to it (state built by
        a prior execution), discarding the fresh one it constructed at
        startup; the ack keeps the restore synchronous, so the caller may
        ingest immediately after.
        """
        self._check_usable()
        if len(sessions) != len(self._workers):
            raise ValueError(
                f"need one session per shard worker: got {len(sessions)} "
                f"for {len(self._workers)} workers")
        seqs = []
        for worker, session in zip(self._workers, sessions):
            worker.seq += 1
            self._send(worker, ("load_session", worker.seq, session))
            seqs.append(worker.seq)
        for worker, seq in zip(self._workers, seqs):
            self._await_payload(worker, seq, "loaded")

    def _await_payload(self, worker: _Worker, seq: int, kind: str):
        while True:
            response = self._recv(worker)
            self._note_ack(worker, response[1])
            if response[0] == kind and response[1] == seq:
                return response[2]

    def close(self) -> List:
        """Flush every worker's session; returns per-shard execution results.

        Idempotent: later calls return the same result objects.  The pool
        is stopped (processes joined, segments unlinked) before returning.
        """
        if self._closed_results is not None:
            return self._closed_results
        self._check_usable()
        seqs = []
        for worker in self._workers:
            worker.seq += 1
            self._send(worker, ("close", worker.seq))
            seqs.append(worker.seq)
        try:
            results = [self._await_payload(worker, seq, "result")
                       for worker, seq in zip(self._workers, seqs)]
        except ShardWorkerError:
            raise
        self._closed_results = results
        self.stop()
        return results

    def stop(self) -> None:
        """Terminate the workers and release every shared resource.

        Idempotent and unconditional: safe to call on a half-constructed,
        failed or already-closed pool (``__del__`` does).
        """
        if self._stopped:
            return
        self._stopped = True
        for worker in self._workers:
            try:
                worker.commands.send(("stop",))
            except Exception:
                pass
        deadline = time.monotonic() + _JOIN_TIMEOUT
        for worker in self._workers:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=_JOIN_TIMEOUT)
        for worker in self._workers:
            for conn in (worker.commands, worker.results):
                try:
                    conn.close()
                except Exception:
                    pass
            for slot in worker.slots:
                self._release_segment(slot.shm)
            for shm, _ in worker.pending_unlinks:
                self._release_segment(shm)
            worker.pending_unlinks = []

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc_value, tb) -> None:
        self.stop()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.stop()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "stopped" if self._stopped else "running"
        return (f"ShardWorkerPool(shards={self.num_shards}, {state}, "
                f"pid={os.getpid()})")
