"""Stateless packet filters.

Each CoMo query registers a stateless filter applied by the capture process to
the incoming packet stream before the query sees any packet.  Filters here are
small composable predicates that operate on whole batches (vectorised) and
return boolean masks.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from .packet import Batch

#: A filter maps a batch to a per-packet boolean mask.
FilterFn = Callable[[Batch], np.ndarray]


class Filter:
    """A named, composable stateless packet filter.

    Filters compose with ``&`` (both must match), ``|`` (either matches) and
    ``~`` (negation), mirroring BPF expression composition.

    ``cache_key`` is an optional string that *uniquely identifies the
    predicate's semantics* (not just its display name).  Only filters with a
    cache key participate in per-batch result sharing inside the monitoring
    system; the factory functions below derive keys from their parameters,
    while hand-written filters stay unshared unless the author opts in.
    """

    def __init__(self, fn: FilterFn, name: str = "filter",
                 cache_key: Optional[str] = None) -> None:
        self._fn = fn
        self.name = name
        self.cache_key = cache_key

    def __call__(self, batch: Batch) -> np.ndarray:
        mask = np.asarray(self._fn(batch), dtype=bool)
        if mask.shape != (len(batch),):
            raise ValueError(
                f"filter {self.name!r} returned mask of shape {mask.shape}, "
                f"expected ({len(batch)},)")
        return mask

    def apply(self, batch: Batch) -> Batch:
        """Return the sub-batch of packets matching the filter.

        When every packet matches, the batch itself is returned (batches are
        immutable), so the broad filters most queries register cost no copy.
        """
        if len(batch) == 0:
            return batch
        mask = self(batch)
        if mask.all():
            return batch
        return batch.select(mask)

    def __and__(self, other: "Filter") -> "Filter":
        return Filter(lambda b: self(b) & other(b),
                      f"({self.name} and {other.name})",
                      cache_key=_combine_keys("and", self, other))

    def __or__(self, other: "Filter") -> "Filter":
        return Filter(lambda b: self(b) | other(b),
                      f"({self.name} or {other.name})",
                      cache_key=_combine_keys("or", self, other))

    def __invert__(self) -> "Filter":
        key = f"not({self.cache_key})" if self.cache_key is not None else None
        return Filter(lambda b: ~self(b), f"not {self.name}", cache_key=key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Filter({self.name})"


def _combine_keys(op: str, first: Filter, second: Filter) -> Optional[str]:
    """Cache key of a composition; None when either side is unshared."""
    if first.cache_key is None or second.cache_key is None:
        return None
    return f"{op}({first.cache_key},{second.cache_key})"


def all_packets() -> Filter:
    """Filter that matches every packet (the common default)."""
    return Filter(lambda b: np.ones(len(b), dtype=bool), "all",
                  cache_key="all")


def no_packets() -> Filter:
    """Filter that matches nothing (useful in tests)."""
    return Filter(lambda b: np.zeros(len(b), dtype=bool), "none",
                  cache_key="none")


def proto(number: int) -> Filter:
    """Match packets with the given IP protocol number."""
    return Filter(lambda b: b.proto == number, f"proto {number}",
                  cache_key=f"proto:{int(number)}")


def tcp() -> Filter:
    from .packet import PROTO_TCP

    return Filter(lambda b: b.proto == PROTO_TCP, "tcp",
                  cache_key=f"proto:{int(PROTO_TCP)}")


def udp() -> Filter:
    from .packet import PROTO_UDP

    return Filter(lambda b: b.proto == PROTO_UDP, "udp",
                  cache_key=f"proto:{int(PROTO_UDP)}")


def port(number: int, direction: str = "either") -> Filter:
    """Match packets whose source and/or destination port equals ``number``.

    ``direction`` is one of ``"src"``, ``"dst"`` or ``"either"``.
    """
    if direction == "src":
        return Filter(lambda b: b.src_port == number, f"src port {number}",
                      cache_key=f"port:{int(number)}:src")
    if direction == "dst":
        return Filter(lambda b: b.dst_port == number, f"dst port {number}",
                      cache_key=f"port:{int(number)}:dst")
    if direction == "either":
        return Filter(
            lambda b: (b.src_port == number) | (b.dst_port == number),
            f"port {number}",
            cache_key=f"port:{int(number)}:either",
        )
    raise ValueError(f"unknown direction {direction!r}")


def subnet(network: int, prefix_len: int, direction: str = "either") -> Filter:
    """Match packets whose address falls inside ``network/prefix_len``."""
    if not 0 <= prefix_len <= 32:
        raise ValueError("prefix length must be in [0, 32]")
    mask_value = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF if prefix_len \
        else 0
    mask = np.uint32(mask_value)
    net = np.uint32(network) & mask

    def match_src(b: Batch) -> np.ndarray:
        return (b.src_ip & mask) == net

    def match_dst(b: Batch) -> np.ndarray:
        return (b.dst_ip & mask) == net

    name = f"net {network}/{prefix_len}"
    key = f"subnet:{int(net)}/{int(prefix_len)}"
    if direction == "src":
        return Filter(match_src, "src " + name, cache_key=key + ":src")
    if direction == "dst":
        return Filter(match_dst, "dst " + name, cache_key=key + ":dst")
    if direction == "either":
        return Filter(lambda b: match_src(b) | match_dst(b), name,
                      cache_key=key + ":either")
    raise ValueError(f"unknown direction {direction!r}")


def size_at_least(n_bytes: int) -> Filter:
    """Match packets whose wire size is at least ``n_bytes``."""
    return Filter(lambda b: b.size >= n_bytes, f"size >= {n_bytes}",
                  cache_key=f"size>={int(n_bytes)}")


def any_of(filters: Iterable[Filter], name: Optional[str] = None) -> Filter:
    """Disjunction of a collection of filters."""
    filters = list(filters)
    if not filters:
        return no_packets()
    combined = filters[0]
    for f in filters[1:]:
        combined = combined | f
    if name is not None:
        combined.name = name
    return combined
