"""Stateless packet filters.

Each CoMo query registers a stateless filter applied by the capture process to
the incoming packet stream before the query sees any packet.  Filters here are
small composable predicates that operate on whole batches (vectorised) and
return boolean masks.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from .packet import Batch

#: A filter maps a batch to a per-packet boolean mask.
FilterFn = Callable[[Batch], np.ndarray]


class Filter:
    """A named, composable stateless packet filter.

    Filters compose with ``&`` (both must match), ``|`` (either matches) and
    ``~`` (negation), mirroring BPF expression composition.

    ``cache_key`` is an optional string that *uniquely identifies the
    predicate's semantics* (not just its display name).  Only filters with a
    cache key participate in per-batch result sharing inside the monitoring
    system; the factory functions below derive keys from their parameters,
    while hand-written filters stay unshared unless the author opts in.
    """

    def __init__(self, fn: FilterFn, name: str = "filter",
                 cache_key: Optional[str] = None) -> None:
        self._fn = fn
        self.name = name
        self.cache_key = cache_key

    def __call__(self, batch: Batch) -> np.ndarray:
        mask = np.asarray(self._fn(batch), dtype=bool)
        if mask.shape != (len(batch),):
            raise ValueError(
                f"filter {self.name!r} returned mask of shape {mask.shape}, "
                f"expected ({len(batch)},)")
        return mask

    def apply(self, batch: Batch) -> Batch:
        """Return the sub-batch of packets matching the filter.

        When every packet matches, the batch itself is returned (batches are
        immutable), so the broad filters most queries register cost no copy.
        """
        if len(batch) == 0:
            return batch
        mask = self(batch)
        if mask.all():
            return batch
        return batch.select(mask)

    def __and__(self, other: "Filter") -> "Filter":
        return Filter(_Conjunction(self, other),
                      f"({self.name} and {other.name})",
                      cache_key=_combine_keys("and", self, other))

    def __or__(self, other: "Filter") -> "Filter":
        return Filter(_Disjunction(self, other),
                      f"({self.name} or {other.name})",
                      cache_key=_combine_keys("or", self, other))

    def __invert__(self) -> "Filter":
        key = f"not({self.cache_key})" if self.cache_key is not None else None
        return Filter(_Negation(self), f"not {self.name}", cache_key=key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Filter({self.name})"


def _combine_keys(op: str, first: Filter, second: Filter) -> Optional[str]:
    """Cache key of a composition; None when either side is unshared."""
    if first.cache_key is None or second.cache_key is None:
        return None
    return f"{op}({first.cache_key},{second.cache_key})"


# The standard predicates are small callable classes rather than lambdas so
# that filters — and therefore the queries carrying them — pickle cleanly
# across process boundaries (live query arrivals are shipped to persistent
# shard workers over a pipe).
class _Conjunction:
    def __init__(self, first: Filter, second: Filter) -> None:
        self.first, self.second = first, second

    def __call__(self, batch: Batch) -> np.ndarray:
        return self.first(batch) & self.second(batch)


class _Disjunction:
    def __init__(self, first: Filter, second: Filter) -> None:
        self.first, self.second = first, second

    def __call__(self, batch: Batch) -> np.ndarray:
        return self.first(batch) | self.second(batch)


class _Negation:
    def __init__(self, inner: Filter) -> None:
        self.inner = inner

    def __call__(self, batch: Batch) -> np.ndarray:
        return ~self.inner(batch)


class _MatchAll:
    def __call__(self, batch: Batch) -> np.ndarray:
        return np.ones(len(batch), dtype=bool)


class _MatchNone:
    def __call__(self, batch: Batch) -> np.ndarray:
        return np.zeros(len(batch), dtype=bool)


class _ProtoEquals:
    def __init__(self, number: int) -> None:
        self.number = number

    def __call__(self, batch: Batch) -> np.ndarray:
        return batch.proto == self.number


class _PortEquals:
    def __init__(self, number: int, direction: str) -> None:
        self.number, self.direction = number, direction

    def __call__(self, batch: Batch) -> np.ndarray:
        if self.direction == "src":
            return batch.src_port == self.number
        if self.direction == "dst":
            return batch.dst_port == self.number
        return (batch.src_port == self.number) | \
            (batch.dst_port == self.number)


class _SubnetMatch:
    def __init__(self, net: np.uint32, mask: np.uint32,
                 direction: str) -> None:
        self.net, self.mask, self.direction = net, mask, direction

    def __call__(self, batch: Batch) -> np.ndarray:
        src = (batch.src_ip & self.mask) == self.net
        if self.direction == "src":
            return src
        dst = (batch.dst_ip & self.mask) == self.net
        if self.direction == "dst":
            return dst
        return src | dst


class _SizeAtLeast:
    def __init__(self, n_bytes: int) -> None:
        self.n_bytes = n_bytes

    def __call__(self, batch: Batch) -> np.ndarray:
        return batch.size >= self.n_bytes


def all_packets() -> Filter:
    """Filter that matches every packet (the common default)."""
    return Filter(_MatchAll(), "all", cache_key="all")


def no_packets() -> Filter:
    """Filter that matches nothing (useful in tests)."""
    return Filter(_MatchNone(), "none", cache_key="none")


def proto(number: int) -> Filter:
    """Match packets with the given IP protocol number."""
    return Filter(_ProtoEquals(number), f"proto {number}",
                  cache_key=f"proto:{int(number)}")


def tcp() -> Filter:
    from .packet import PROTO_TCP

    return Filter(_ProtoEquals(PROTO_TCP), "tcp",
                  cache_key=f"proto:{int(PROTO_TCP)}")


def udp() -> Filter:
    from .packet import PROTO_UDP

    return Filter(_ProtoEquals(PROTO_UDP), "udp",
                  cache_key=f"proto:{int(PROTO_UDP)}")


def port(number: int, direction: str = "either") -> Filter:
    """Match packets whose source and/or destination port equals ``number``.

    ``direction`` is one of ``"src"``, ``"dst"`` or ``"either"``.
    """
    if direction not in ("src", "dst", "either"):
        raise ValueError(f"unknown direction {direction!r}")
    name = f"port {number}" if direction == "either" else \
        f"{direction} port {number}"
    return Filter(_PortEquals(number, direction), name,
                  cache_key=f"port:{int(number)}:{direction}")


def subnet(network: int, prefix_len: int, direction: str = "either") -> Filter:
    """Match packets whose address falls inside ``network/prefix_len``."""
    if not 0 <= prefix_len <= 32:
        raise ValueError("prefix length must be in [0, 32]")
    if direction not in ("src", "dst", "either"):
        raise ValueError(f"unknown direction {direction!r}")
    mask_value = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF if prefix_len \
        else 0
    mask = np.uint32(mask_value)
    net = np.uint32(network) & mask
    name = f"net {network}/{prefix_len}"
    if direction != "either":
        name = f"{direction} {name}"
    key = f"subnet:{int(net)}/{int(prefix_len)}:{direction}"
    return Filter(_SubnetMatch(net, mask, direction), name, cache_key=key)


def size_at_least(n_bytes: int) -> Filter:
    """Match packets whose wire size is at least ``n_bytes``."""
    return Filter(_SizeAtLeast(n_bytes), f"size >= {n_bytes}",
                  cache_key=f"size>={int(n_bytes)}")


def any_of(filters: Iterable[Filter], name: Optional[str] = None) -> Filter:
    """Disjunction of a collection of filters."""
    filters = list(filters)
    if not filters:
        return no_packets()
    combined = filters[0]
    for f in filters[1:]:
        combined = combined | f
    if name is not None:
        combined.name = name
    return combined
