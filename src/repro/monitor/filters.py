"""Stateless packet filters.

Each CoMo query registers a stateless filter applied by the capture process to
the incoming packet stream before the query sees any packet.  Filters here are
small composable predicates that operate on whole batches (vectorised) and
return boolean masks.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from .packet import Batch

#: A filter maps a batch to a per-packet boolean mask.
FilterFn = Callable[[Batch], np.ndarray]


class Filter:
    """A named, composable stateless packet filter.

    Filters compose with ``&`` (both must match), ``|`` (either matches) and
    ``~`` (negation), mirroring BPF expression composition.
    """

    def __init__(self, fn: FilterFn, name: str = "filter") -> None:
        self._fn = fn
        self.name = name

    def __call__(self, batch: Batch) -> np.ndarray:
        mask = np.asarray(self._fn(batch), dtype=bool)
        if mask.shape != (len(batch),):
            raise ValueError(
                f"filter {self.name!r} returned mask of shape {mask.shape}, "
                f"expected ({len(batch)},)")
        return mask

    def apply(self, batch: Batch) -> Batch:
        """Return the sub-batch of packets matching the filter."""
        if len(batch) == 0:
            return batch
        return batch.select(self(batch))

    def __and__(self, other: "Filter") -> "Filter":
        return Filter(lambda b: self(b) & other(b), f"({self.name} and {other.name})")

    def __or__(self, other: "Filter") -> "Filter":
        return Filter(lambda b: self(b) | other(b), f"({self.name} or {other.name})")

    def __invert__(self) -> "Filter":
        return Filter(lambda b: ~self(b), f"not {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Filter({self.name})"


def all_packets() -> Filter:
    """Filter that matches every packet (the common default)."""
    return Filter(lambda b: np.ones(len(b), dtype=bool), "all")


def no_packets() -> Filter:
    """Filter that matches nothing (useful in tests)."""
    return Filter(lambda b: np.zeros(len(b), dtype=bool), "none")


def proto(number: int) -> Filter:
    """Match packets with the given IP protocol number."""
    return Filter(lambda b: b.proto == number, f"proto {number}")


def tcp() -> Filter:
    from .packet import PROTO_TCP

    return Filter(lambda b: b.proto == PROTO_TCP, "tcp")


def udp() -> Filter:
    from .packet import PROTO_UDP

    return Filter(lambda b: b.proto == PROTO_UDP, "udp")


def port(number: int, direction: str = "either") -> Filter:
    """Match packets whose source and/or destination port equals ``number``.

    ``direction`` is one of ``"src"``, ``"dst"`` or ``"either"``.
    """
    if direction == "src":
        return Filter(lambda b: b.src_port == number, f"src port {number}")
    if direction == "dst":
        return Filter(lambda b: b.dst_port == number, f"dst port {number}")
    if direction == "either":
        return Filter(
            lambda b: (b.src_port == number) | (b.dst_port == number),
            f"port {number}",
        )
    raise ValueError(f"unknown direction {direction!r}")


def subnet(network: int, prefix_len: int, direction: str = "either") -> Filter:
    """Match packets whose address falls inside ``network/prefix_len``."""
    if not 0 <= prefix_len <= 32:
        raise ValueError("prefix length must be in [0, 32]")
    mask_value = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF if prefix_len \
        else 0
    mask = np.uint32(mask_value)
    net = np.uint32(network) & mask

    def match_src(b: Batch) -> np.ndarray:
        return (b.src_ip & mask) == net

    def match_dst(b: Batch) -> np.ndarray:
        return (b.dst_ip & mask) == net

    name = f"net {network}/{prefix_len}"
    if direction == "src":
        return Filter(match_src, "src " + name)
    if direction == "dst":
        return Filter(match_dst, "dst " + name)
    if direction == "either":
        return Filter(lambda b: match_src(b) | match_dst(b), name)
    raise ValueError(f"unknown direction {direction!r}")


def size_at_least(n_bytes: int) -> Filter:
    """Match packets whose wire size is at least ``n_bytes``."""
    return Filter(lambda b: b.size >= n_bytes, f"size >= {n_bytes}")


def any_of(filters: Iterable[Filter], name: Optional[str] = None) -> Filter:
    """Disjunction of a collection of filters."""
    filters = list(filters)
    if not filters:
        return no_packets()
    combined = filters[0]
    for f in filters[1:]:
        combined = combined | f
    if name is not None:
        combined.name = name
    return combined
