"""Typed, serialisable configuration for the monitoring system.

Every knob of :class:`~repro.monitor.system.MonitoringSystem` is captured by
:class:`SystemConfig`, a frozen dataclass that validates its fields eagerly —
a typo'd strategy or predictor name fails at construction with a message
listing the valid options, not minutes later inside the controller.  Because
the config is a plain value object it can be copied (:meth:`replace`),
serialised (:meth:`to_dict` / :meth:`from_dict`) and shipped across process
boundaries, which is what lets experiment grids, :class:`ParallelRunner`
cells and checkpoints all speak one type instead of threading ``**kwargs``
through four layers.

The canonical operating-mode registry also lives here (the system module
re-exports it), so that config validation does not need to import the system
and create a cycle.
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Tuple, Union

from ..core.cycles import CycleBudget
from ..core.fairness import STRATEGIES
from ..core.prediction import PREDICTOR_KINDS

#: Valid operating modes.
MODES = ("predictive", "reactive", "original", "reference")
#: Aliases accepted for convenience (Chapter 5 names).
MODE_ALIASES = {"no_lshed": "original"}

#: Valid distinct-counting backends for feature extraction.
FEATURE_METHODS = ("bitmap", "exact")

#: Valid shard-execution backends (how ``num_shards > 1`` actually runs):
#: ``"inprocess"`` drives every shard serially in the calling process,
#: ``"fork"`` is the legacy per-run fork pool (whole stream pre-partitioned,
#: no rebalancing, no streaming sessions), ``"workers"`` keeps one
#: persistent worker process per shard fed through shared memory
#: (:class:`~repro.monitor.workers.ShardWorkerPool`; supports rebalancing
#: and streaming), and ``"auto"`` picks ``"workers"`` when parallelism was
#: requested and the host can deliver it, ``"inprocess"`` otherwise.
SHARD_BACKENDS = ("auto", "inprocess", "fork", "workers")


def _unknown_fields_error(unknown: Iterable[str],
                          valid: Iterable[str]) -> ValueError:
    """A strict-keys error naming each unknown field with a close match.

    Hot-reload safety: a daemon rejecting ``{"cycles_per_secnod": ...}``
    must say *which* key is wrong and what was probably meant, because the
    operator gets the message back over an HTTP error, not a traceback.
    """
    valid = sorted(valid)
    described = []
    for key in sorted(unknown):
        matches = difflib.get_close_matches(key, valid, n=1)
        described.append(f"{key!r} (did you mean {matches[0]!r}?)"
                         if matches else repr(key))
    return ValueError(f"unknown SystemConfig field(s) {', '.join(described)}; "
                      f"valid fields: {valid}")


class ReproDeprecationWarning(DeprecationWarning):
    """Deprecation warnings raised by the ``repro`` package.

    A dedicated subclass lets the test suite turn *our* deprecations into
    errors (so internal code cannot quietly keep using shimmed paths) without
    also erroring on unrelated ``DeprecationWarning`` noise from third-party
    libraries.
    """


@dataclass(frozen=True)
class SystemConfig:
    """Frozen, validated value object holding every system knob.

    Parameters mirror :class:`~repro.monitor.system.MonitoringSystem`; the
    one representational difference is the cycle budget: a config stores the
    scalar ``cycles_per_second`` (``None`` = the default host capacity)
    rather than a :class:`~repro.core.cycles.CycleBudget` object, because the
    per-bin budget is always rebuilt from the execution's ``time_bin`` anyway
    and a scalar keeps the config JSON-serialisable.

    Examples
    --------
    >>> config = SystemConfig(mode="predictive", strategy="mmfs_pkt")
    >>> config = config.replace(cycles_per_second=2e8, seed=7)
    >>> SystemConfig.from_dict(config.to_dict()) == config
    True
    >>> system = config.build(queries)          # doctest: +SKIP
    """

    mode: str = "predictive"
    strategy: Union[str, Callable] = "eq_srates"
    predictor: str = "mlr"
    predictor_kwargs: Dict[str, Any] = field(default_factory=dict)
    cycles_per_second: Optional[float] = None
    buffer_seconds: Optional[float] = 0.2
    support_custom_shedding: bool = True
    feature_method: str = "bitmap"
    feature_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Share per-interval feature-extraction state between queries with the
    #: same filter, measurement interval and counter backend (bit-identical
    #: results; see :class:`repro.core.features.FeatureStateRegistry`).
    #: ``False`` forces the classic one-extractor-per-query path.
    feature_sharing: bool = True
    measurement_noise: float = 0.0
    system_overhead_fixed: float = 2e4
    system_overhead_per_packet: float = 20.0
    reactive_min_rate: float = 0.0
    seed: int = 0
    #: Number of flow-hash shards the stream is partitioned over.  ``1``
    #: runs the classic single-system data path; ``> 1`` is honoured by
    #: :class:`~repro.monitor.sharding.ShardedSystem` (and by
    #: ``runner.run_system``, which routes there automatically).
    num_shards: int = 1
    #: Per-bin capacity rebalancing between shards: unused predicted
    #: headroom on underloaded shards is lent to overloaded ones before
    #: they shed.
    shard_rebalance: bool = True
    #: Fraction of its base capacity share a shard always retains, so a
    #: momentarily idle shard is never starved below a working minimum.
    shard_rebalance_floor: float = 0.1
    #: Shard-execution backend, one of :data:`SHARD_BACKENDS`.  ``"auto"``
    #: (the default) resolves to the persistent worker pool when the caller
    #: asked for parallelism (``n_workers > 1``) and the host has the cores
    #: and the ``fork`` start method to honour it, and to in-process
    #: execution otherwise.
    shard_backend: str = "auto"
    #: Declarative query mix: a tuple of
    #: :class:`repro.queries.QuerySpec` (anything
    #: :func:`repro.queries.parse_query_specs` accepts — a comma-separated
    #: name string, names, spec dicts — is canonicalised at construction).
    #: ``None`` means the query set is supplied as instances at build time;
    #: when set, :meth:`build` (and ``runner.run_system`` /
    #: ``ShardedSystem`` with no explicit queries) instantiates it.
    queries: Optional[Tuple[Any, ...]] = None
    #: Declarative tenant groups: a tuple of
    #: :class:`repro.core.tenancy.TenantGroup` (or dicts), each owning a set
    #: of query specs plus a fair-share weight, optional budget-share
    #: ceiling and minimum-rate floor.  When set and ``queries`` is
    #: ``None``, the query mix is *derived* from the tenants' members, so
    #: every consumer of ``queries`` (runner, shards, serve) works
    #: unchanged; when both are set they must describe the same query set.
    tenants: Optional[Tuple[Any, ...]] = None

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        set_ = object.__setattr__  # the dataclass is frozen
        set_(self, "mode", MODE_ALIASES.get(self.mode, self.mode))
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; valid modes: "
                             f"{MODES} (aliases: {sorted(MODE_ALIASES)})")
        if not callable(self.strategy) and self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; valid strategies: "
                f"{tuple(sorted(STRATEGIES))} (or any callable)")
        if self.predictor not in PREDICTOR_KINDS:
            raise ValueError(f"unknown predictor {self.predictor!r}; "
                             f"valid predictors: {PREDICTOR_KINDS}")
        if self.feature_method not in FEATURE_METHODS:
            raise ValueError(
                f"unknown feature_method {self.feature_method!r}; "
                f"valid methods: {FEATURE_METHODS}")
        # Defensive copies: a config must never alias caller-owned dicts.
        set_(self, "predictor_kwargs", dict(self.predictor_kwargs or {}))
        set_(self, "feature_kwargs", dict(self.feature_kwargs or {}))
        if self.cycles_per_second is not None:
            set_(self, "cycles_per_second", float(self.cycles_per_second))
            if self.cycles_per_second <= 0:
                raise ValueError("cycles_per_second must be positive or None")
        if self.buffer_seconds is not None:
            set_(self, "buffer_seconds", float(self.buffer_seconds))
            if self.buffer_seconds < 0:
                raise ValueError("buffer_seconds must be >= 0 or None")
        set_(self, "support_custom_shedding", bool(self.support_custom_shedding))
        set_(self, "feature_sharing", bool(self.feature_sharing))
        set_(self, "measurement_noise", float(self.measurement_noise))
        if self.measurement_noise < 0:
            raise ValueError("measurement_noise must be >= 0")
        set_(self, "system_overhead_fixed", float(self.system_overhead_fixed))
        set_(self, "system_overhead_per_packet",
             float(self.system_overhead_per_packet))
        set_(self, "reactive_min_rate", float(self.reactive_min_rate))
        if not 0.0 <= self.reactive_min_rate <= 1.0:
            raise ValueError("reactive_min_rate must be in [0, 1]")
        set_(self, "seed", int(self.seed))
        set_(self, "num_shards", int(self.num_shards))
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        set_(self, "shard_rebalance", bool(self.shard_rebalance))
        set_(self, "shard_rebalance_floor",
             float(self.shard_rebalance_floor))
        if not 0.0 < self.shard_rebalance_floor <= 1.0:
            raise ValueError("shard_rebalance_floor must be in (0, 1]")
        if self.shard_backend not in SHARD_BACKENDS:
            raise ValueError(
                f"unknown shard_backend {self.shard_backend!r}; "
                f"valid backends: {SHARD_BACKENDS}")
        if self.queries is not None:
            # Deferred import: repro.queries imports the monitor package.
            from ..queries import parse_query_specs
            set_(self, "queries", parse_query_specs(self.queries))
        if self.tenants is not None:
            from ..core.tenancy import parse_tenant_groups
            from ..queries import parse_query_specs
            set_(self, "tenants", parse_tenant_groups(self.tenants))
            if not self.tenants:
                set_(self, "tenants", None)
            else:
                members = parse_query_specs(tuple(
                    spec for group in self.tenants for spec in group.queries))
                if self.queries is None:
                    set_(self, "queries", members)
                elif self.queries != members:
                    raise ValueError(
                        "queries and tenants disagree: when both are set, "
                        "'queries' must list exactly the tenants' member "
                        "specs in tenant order (or be omitted so it is "
                        "derived)")

    # ------------------------------------------------------------------
    def replace(self, **changes: Any) -> "SystemConfig":
        """A copy with the given fields changed (and re-validated)."""
        valid = {f.name for f in dataclasses.fields(self)}
        unknown = set(changes) - valid
        if unknown:
            raise _unknown_fields_error(unknown, valid)
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """Plain, JSON-serialisable dict representation.

        Raises ``TypeError`` when the strategy is a callable — function
        objects cannot round-trip through serialisation; register the
        strategy under a name instead.
        """
        if callable(self.strategy):
            raise TypeError(
                "a SystemConfig with a callable strategy is not serialisable;"
                " register it in repro.core.fairness.STRATEGIES and refer to"
                " it by name")
        data = {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}
        data["predictor_kwargs"] = dict(self.predictor_kwargs)
        data["feature_kwargs"] = dict(self.feature_kwargs)
        if self.queries is not None:
            data["queries"] = [spec.to_dict() for spec in self.queries]
        if self.tenants is not None:
            data["tenants"] = [group.to_dict() for group in self.tenants]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SystemConfig":
        """Rebuild a config from :meth:`to_dict` output (strict keys)."""
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise _unknown_fields_error(unknown, valid)
        return cls(**data)

    # ------------------------------------------------------------------
    def make_budget(self, time_bin: float = 0.1) -> CycleBudget:
        """The :class:`CycleBudget` this config implies for a ``time_bin``."""
        if self.cycles_per_second is None:
            return CycleBudget(time_bin=time_bin)
        return CycleBudget(self.cycles_per_second, time_bin)

    def build_queries(self):
        """Fresh query instances for the declarative ``queries`` field.

        Returns ``None`` when the config carries no query specs.  Every
        call builds new instances, so per-shard and per-run state never
        aliases.
        """
        if self.queries is None:
            return None
        return [spec.build() for spec in self.queries]

    def build(self, queries=None) -> "MonitoringSystem":  # noqa: F821
        """Construct a :class:`MonitoringSystem` from this config.

        ``queries`` defaults to instances built from the config's own
        declarative ``queries`` field (when set).  A sharded config
        (``num_shards > 1``) cannot be built from query *instances* —
        every shard needs its own copies — so building one here raises;
        construct a :class:`~repro.monitor.sharding.ShardedSystem` with a
        query factory instead (``runner.run_system`` does this
        automatically).
        """
        from .system import MonitoringSystem
        if queries is None:
            queries = self.build_queries()
        return MonitoringSystem.from_config(self, queries)


__all__ = [
    "FEATURE_METHODS",
    "MODES",
    "MODE_ALIASES",
    "ReproDeprecationWarning",
    "SHARD_BACKENDS",
    "SystemConfig",
]
