"""The monitoring system: queries + capture + load shedding, end to end.

:class:`MonitoringSystem` reproduces the CoMo data path of Figure 2.1 at the
granularity the load shedding scheme cares about: batches of packets flow
from the capture process, through the prediction and load shedding subsystem
(Figure 3.2), into the plug-in queries, while a cycle clock accounts for
every consumer of CPU time.

Four operating modes correspond to the systems compared in the evaluation:

``predictive``
    The paper's scheme (Algorithm 1): per-query MLR+FCBF prediction, an
    allocation strategy (eq_srates / mmfs_cpu / mmfs_pkt), packet / flow /
    custom shedding, buffer discovery and error correction.
``reactive``
    The SEDA-like baseline of Section 4.5.1: the sampling rate follows the
    measured load of the *previous* bin (Equation 4.1).
``original``
    The unmodified system (also the ``no_lshed`` system of Chapter 5): no
    sampling at all; overload turns into uncontrolled capture-buffer drops.
``reference``
    ``original`` with an infinite buffer; used to compute the ground-truth
    query results against which accuracy is measured.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..core.custom import CustomShedEnforcer
from ..core.cycles import CycleBudget, CycleClock
from ..core.fairness import QueryDemand, QuerySlotTable
from ..core.features import (FeatureExtractor, FeatureStateRegistry,
                             FeatureVector)
from ..core.prediction import CyclePredictor, make_predictor
from ..core.sampling import FlowSampler, PacketSampler
from ..core.shedding import LoadSheddingController, reactive_rate
from ..core.tenancy import TenantAssignment, TenantRegistry
from .capture import CaptureBuffer
from .config import MODES, MODE_ALIASES, SystemConfig
from .packet import Batch, PacketTrace, as_trace
from .pipeline import BinPipeline, BinRecord
from .query import (SAMPLING_CUSTOM, SAMPLING_FLOW, Query, QueryResultLog)

__all__ = ["BinRecord", "ExecutionResult", "MonitoringSystem",
           "merge_query_logs", "MODES", "MODE_ALIASES"]


def merge_query_logs(logs: Iterable[QueryResultLog],
                     query_cls: type) -> QueryResultLog:
    """Merge per-partition result logs interval by interval.

    All partitions (shards of one host, nodes of a fleet) observe the same
    bin timeline — empty sub-batches included — so their logs flush at
    identical interval boundaries; a mismatch means the partitions diverged
    and is an error, not something to paper over.  Each interval folds
    through ``query_cls.merge_interval_results``, so the associativity of
    the merged log is exactly that of the query's ``RESULT_MERGE`` spec.
    """
    logs = list(logs)
    if len(logs) == 1:
        return logs[0]
    first = logs[0]
    for log in logs[1:]:
        if log.intervals != first.intervals:
            raise ValueError(
                f"partition logs of query {first.name!r} have mismatching "
                "interval boundaries; partitions must see the same bin "
                "timeline")
    merged = QueryResultLog(first.name)
    for index, interval_start in enumerate(first.intervals):
        merged.append(interval_start, query_cls.merge_interval_results(
            [log.results[index] for log in logs]))
    return merged


class ExecutionResult:
    """Result of running a system over a trace."""

    def __init__(self, mode: str, strategy: str, trace_name: str,
                 budget: CycleBudget) -> None:
        self.mode = mode
        self.strategy = strategy
        self.trace_name = trace_name
        self.budget = budget
        self.bins: List[BinRecord] = []
        self.query_logs: Dict[str, QueryResultLog] = {}

    # -- second-tier merge --------------------------------------------------
    @classmethod
    def merge(cls, results: "Iterable[ExecutionResult]",
              query_classes: Optional[Dict[str, type]] = None,
              budget: Optional[CycleBudget] = None,
              name: Optional[str] = None) -> "ExecutionResult":
        """Fold per-partition executions into one global execution.

        The public merge API the sharding and fleet tiers fold through.
        Bin records of the same index fold via :meth:`BinRecord.merge`
        (sums / maxima / rate means); query logs fold interval by interval
        via :func:`merge_query_logs` under each query's ``RESULT_MERGE``
        spec.

        **Ordering and associativity.**  Every registered query's
        ``RESULT_MERGE`` fold is associative and permutation-invariant:
        ``merge([a, b, c])``, ``merge([merge([a, b]), c])`` and
        ``merge([c, a, b])`` agree on every query-log value (floating-point
        sums commute exactly for the integer-valued counters the queries
        report; otherwise to rounding).  Nested ``BinRecord`` merges
        re-average already-averaged sampling rates, so grouped bin-level
        *rate* means are weighted differently from flat ones — every other
        bin quantity is an associative sum or max.

        Parameters default for the fleet case: ``query_classes`` resolves
        each log name through the :data:`repro.queries.QUERY_CLASSES`
        registry (pass it explicitly for renamed or custom query
        instances), ``budget`` sums the member capacities over the first
        result's time bin, and ``name`` is taken from the first result.
        """
        results = list(results)
        if not results:
            raise ValueError("cannot merge zero execution results")
        first = results[0]
        if budget is None:
            budget = CycleBudget(
                cycles_per_second=float(sum(r.budget.cycles_per_second
                                            for r in results)),
                time_bin=first.budget.time_bin)
        if name is None:
            name = first.trace_name
        if query_classes is None:
            from ..queries import QUERY_CLASSES
            query_classes = {}
            for qname in first.query_logs:
                if qname not in QUERY_CLASSES:
                    raise ValueError(
                        f"query log {qname!r} does not match a registered "
                        "query kind; pass query_classes= explicitly to "
                        "merge renamed or custom query instances")
                query_classes[qname] = QUERY_CLASSES[qname]
        merged = cls(first.mode, first.strategy, name, budget)
        n_bins = len(first.bins)
        for result in results[1:]:
            if len(result.bins) != n_bins:
                raise ValueError(
                    "partition executions cover different bin counts")
        merged.bins = [
            BinRecord.merge([result.bins[index] for result in results])
            for index in range(n_bins)
        ]
        merged.query_logs = {
            qname: merge_query_logs([result.query_logs[qname]
                                     for result in results],
                                    query_classes[qname])
            for qname in first.query_logs
        }
        return merged

    # -- aggregate views ----------------------------------------------------
    def series(self, attribute: str) -> np.ndarray:
        """Per-bin series of any :class:`BinRecord` attribute/property."""
        return np.array([getattr(record, attribute) for record in self.bins],
                        dtype=np.float64)

    @property
    def total_packets(self) -> int:
        return int(sum(record.incoming_packets for record in self.bins))

    @property
    def dropped_packets(self) -> int:
        return int(sum(record.dropped_packets for record in self.bins))

    @property
    def unsampled_packets(self) -> float:
        return float(sum(record.unsampled_packets for record in self.bins))

    @property
    def drop_fraction(self) -> float:
        total = self.total_packets
        return self.dropped_packets / total if total else 0.0

    def cycles_per_bin(self) -> np.ndarray:
        return self.series("total_cycles")

    def mean_sampling_rate(self) -> float:
        rates = [record.mean_rate for record in self.bins if record.rates]
        return float(np.mean(rates)) if rates else 1.0

    def rate_series(self, query_name: str) -> np.ndarray:
        return np.array([record.rates.get(query_name, 1.0)
                         for record in self.bins], dtype=np.float64)

    def tenant_cycle_totals(self) -> Dict[str, float]:
        """Total query cycles accounted per declared tenant.

        Folds the per-bin ``tenant_cycles`` maps across the execution;
        empty when the system ran without tenant groups.  Survives both
        merge tiers (shards, fleet) because :meth:`BinRecord.merge` sums
        tenant cycles additively.
        """
        totals: Dict[str, float] = {}
        for record in self.bins:
            for tenant, cycles in record.tenant_cycles.items():
                totals[tenant] = totals.get(tenant, 0.0) + cycles
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ExecutionResult(mode={self.mode!r}, bins={len(self.bins)}, "
                f"dropped={self.dropped_packets})")


class _QueryRuntime:
    """Per-query state owned by the monitoring system."""

    def __init__(self, query: Query, start_time: float, predictor: CyclePredictor,
                 extractor: FeatureExtractor, sampler, seed: int) -> None:
        self.query = query
        self.start_time = float(start_time)
        self.predictor = predictor
        self.extractor = extractor
        self.sampler = sampler
        self.log = QueryResultLog(query.name)
        self.interval_start: Optional[float] = None
        self.last_prediction = 0.0
        self.seed = seed
        #: Row of the system's :class:`~repro.core.fairness.QuerySlotTable`
        #: holding this query's demand columns (set by ``add_query``).
        self.slot = -1

    def reset(self) -> None:
        self.query.reset()
        self.predictor.reset()
        self.extractor.reset()
        self.log = QueryResultLog(self.query.name)
        self.interval_start = None
        self.last_prediction = 0.0


class MonitoringSystem:
    """A CoMo-like monitoring system with pluggable load shedding.

    Parameters
    ----------
    queries:
        Initial query set (more can be added with :meth:`add_query`).
    mode:
        One of ``predictive``, ``reactive``, ``original``, ``reference``.
    strategy:
        Allocation strategy for the predictive mode (``eq_srates``,
        ``mmfs_cpu``, ``mmfs_pkt`` or a callable).
    predictor:
        Predictor kind for the predictive mode (``mlr``, ``slr``, ``ewma``).
    budget:
        Cycle capacity of the host; defaults to 3e8 cycles per 100 ms bin.
    buffer_seconds:
        Capture buffer size expressed in seconds of backlog (None = infinite).
    support_custom_shedding:
        Whether custom load shedding is honoured (Chapter 6); when False,
        custom queries fall back to packet sampling (the system of Fig. 6.6).
    measurement_noise:
        Relative standard deviation of the cycle measurement noise.
    """

    def __init__(
        self,
        queries: Optional[Iterable[Query]] = None,
        mode: str = "predictive",
        strategy: str = "eq_srates",
        predictor: str = "mlr",
        predictor_kwargs: Optional[dict] = None,
        budget: Optional[CycleBudget] = None,
        buffer_seconds: Optional[float] = 0.2,
        support_custom_shedding: bool = True,
        feature_method: str = "bitmap",
        feature_kwargs: Optional[dict] = None,
        measurement_noise: float = 0.0,
        system_overhead_fixed: float = 2e4,
        system_overhead_per_packet: float = 20.0,
        reactive_min_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        # All validation lives in SystemConfig: typo'd modes, strategies and
        # predictors fail here, eagerly, with the valid options listed.
        config = SystemConfig(
            mode=mode, strategy=strategy, predictor=predictor,
            predictor_kwargs=predictor_kwargs or {},
            cycles_per_second=(None if budget is None
                               else budget.cycles_per_second),
            buffer_seconds=buffer_seconds,
            support_custom_shedding=support_custom_shedding,
            feature_method=feature_method,
            feature_kwargs=feature_kwargs or {},
            measurement_noise=measurement_noise,
            system_overhead_fixed=system_overhead_fixed,
            system_overhead_per_packet=system_overhead_per_packet,
            reactive_min_rate=reactive_min_rate, seed=seed)
        self._init_from_config(config, budget=budget, queries=queries)

    @classmethod
    def from_config(cls, config: SystemConfig,
                    queries: Optional[Iterable[Query]] = None
                    ) -> "MonitoringSystem":
        """Construct a system from a :class:`SystemConfig` value object."""
        system = cls.__new__(cls)
        system._init_from_config(config, queries=queries)
        return system

    def _init_from_config(self, config: SystemConfig,
                          budget: Optional[CycleBudget] = None,
                          queries: Optional[Iterable[Query]] = None) -> None:
        if config.num_shards != 1:
            raise ValueError(
                f"a MonitoringSystem is a single shard; num_shards="
                f"{config.num_shards} requires repro.monitor.sharding."
                "ShardedSystem (runner.run_system routes there "
                "automatically)")
        self.config = config
        self.mode = config.mode
        self.strategy_name = config.strategy \
            if isinstance(config.strategy, str) \
            else getattr(config.strategy, "__name__", "custom")
        self.predictor_kind = config.predictor
        self.predictor_kwargs = dict(config.predictor_kwargs)
        self.budget = budget if budget is not None else config.make_budget()
        self.buffer_seconds = None if config.mode == "reference" \
            else config.buffer_seconds
        self.support_custom_shedding = config.support_custom_shedding
        self.feature_method = config.feature_method
        self.feature_kwargs = dict(config.feature_kwargs)
        self.measurement_noise = config.measurement_noise
        self.system_overhead_fixed = config.system_overhead_fixed
        self.system_overhead_per_packet = config.system_overhead_per_packet
        self.reactive_min_rate = config.reactive_min_rate
        self.seed = config.seed
        self._rng = np.random.default_rng(config.seed)

        self.controller = LoadSheddingController(strategy=config.strategy)
        self.enforcer = CustomShedEnforcer()
        #: Shared per-interval feature state: queries with the same filter,
        #: measurement interval and counter backend pay one set of counter
        #: merges/reads per bin (``config.feature_sharing`` gates it).
        self.feature_states = FeatureStateRegistry()
        #: Per-stage wall-time/cycle telemetry (see :mod:`repro.profile`).
        from ..profile import StageProfiler
        self.profiler = StageProfiler()
        #: Per-bin data path; replaceable with a custom stage tuple.
        self.pipeline = BinPipeline()
        #: Columnar per-tenant state + query→tenant membership (queries
        #: outside declared groups become implicit singleton tenants).
        self.tenant_registry = TenantRegistry(config.tenants or ())
        #: Stable per-query demand columns (predicted cycles, effective
        #: minimum rates, tie-break ranks, tenant slots) maintained across
        #: bins; the per-bin allocator gathers rows by slot index.
        self.demand_table = QuerySlotTable()
        self._runtimes: Dict[str, _QueryRuntime] = {}
        self._prev_reactive_rate = 1.0
        self._prev_query_cycles = 0.0
        if queries is None:
            # A config may carry a declarative query mix of its own.
            queries = config.build_queries() or ()
        for query in queries:
            self.add_query(query)

    # ------------------------------------------------------------------
    # Query management
    # ------------------------------------------------------------------
    def add_query(self, query: Query, start_time: float = 0.0) -> None:
        """Register a query; ``start_time`` models query arrivals (Ch. 6)."""
        if query.name in self._runtimes:
            raise ValueError(f"a query named {query.name!r} is already registered")
        seed = int(self._rng.integers(0, 2 ** 31))
        predictor = make_predictor(self.predictor_kind, **self.predictor_kwargs)
        share_key = query.feature_share_key \
            if self.config.feature_sharing else None
        extractor = FeatureExtractor(
            measurement_interval=query.measurement_interval,
            method=self.feature_method,
            counter_kwargs=self.feature_kwargs,
            registry=self.feature_states if share_key is not None else None,
            share_key=share_key,
        )
        if query.sampling_method == SAMPLING_FLOW:
            sampler = FlowSampler(rng=np.random.default_rng(seed),
                                  measurement_interval=query.measurement_interval)
        else:
            sampler = PacketSampler(rng=np.random.default_rng(seed))
        query.meter.noise_std = self.measurement_noise
        query.meter.reseed(seed + 1)
        runtime = _QueryRuntime(
            query, start_time, predictor, extractor, sampler, seed)
        # Columnar demand state: the query's effective minimum sampling
        # rate (its own constraint lifted to any declared tenant floor) and
        # tenant slot live in the slot table from now on.
        effective_min = max(query.minimum_sampling_rate,
                            self.tenant_registry.min_rate_for(query.name))
        runtime.slot = self.demand_table.add(
            query.name, min_rate=effective_min,
            tenant_slot=self.tenant_registry.assign(query.name))
        self._runtimes[query.name] = runtime

    def remove_query(self, name: str) -> None:
        """Deregister a query and forget all per-query shedding state.

        Dropping the enforcement and controller records matters when a
        same-named query is later re-added mid-experiment: a fresh query must
        not inherit the violation history (or correction factor) of the old
        one, which would get it disabled for sins it never committed.
        """
        runtime = self._runtimes.pop(name, None)
        if runtime is not None:
            runtime.extractor.release()
        self.demand_table.remove(name)
        self.enforcer.reset(name)
        self.controller.forget_query(name)

    @property
    def query_names(self) -> List[str]:
        return list(self._runtimes)

    def runtime(self, name: str) -> _QueryRuntime:
        return self._runtimes[name]

    def _uses_custom(self, runtime: _QueryRuntime) -> bool:
        return (self.mode == "predictive" and self.support_custom_shedding and
                runtime.query.sampling_method == SAMPLING_CUSTOM)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def open_session(self, time_bin: float = 0.1, name: str = "live"):
        """Open a push-based :class:`~repro.monitor.session.MonitoringSession`.

        The session owns the execution: feed it batches with
        ``session.ingest(batch)``, reconfigure it live (``add_query``,
        ``remove_query``, ``set_capacity``) and finish with
        ``session.close()``.  Opening a session resets all per-execution
        state, exactly as :meth:`run` does.
        """
        from .session import MonitoringSession
        return MonitoringSession(self, time_bin=time_bin, name=name)

    def run(self, trace: PacketTrace, time_bin: float = 0.1) -> ExecutionResult:
        """Run the system over a trace and return the execution record.

        Thin wrapper over the streaming session API: it opens a session,
        ingests every batch of the trace and closes the session.  Driving a
        session by hand over the same batches is bit-identical.  ``trace``
        may also be a :class:`~repro.monitor.packet.StreamingTrace` or a
        trace store, in which case the execution is out-of-core.
        """
        trace = as_trace(trace)
        session = self.open_session(time_bin=time_bin, name=trace.name)
        return session.ingest_trace(trace).close()

    def _reset(self) -> None:
        # Clear the registry *before* resetting the runtimes: each
        # extractor re-acquires on reset, so the first one re-creates a
        # pristine group the rest join.
        self.feature_states.clear()
        for runtime in self._runtimes.values():
            runtime.reset()
        self.controller.reset()
        self.enforcer.reset()
        self.profiler.reset()
        self._prev_reactive_rate = 1.0
        self._prev_query_cycles = 0.0

    def _active_runtimes(self, batch_start: float) -> List[_QueryRuntime]:
        return [runtime for runtime in self._runtimes.values()
                if runtime.start_time <= batch_start + 1e-9]

    # ------------------------------------------------------------------
    def _flush_intervals(self, runtime: _QueryRuntime, batch_start: float
                         ) -> None:
        """Emit measurement-interval results up to ``batch_start``."""
        interval = runtime.query.measurement_interval
        if runtime.interval_start is None:
            runtime.interval_start = batch_start
            return
        while batch_start >= runtime.interval_start + interval - 1e-9:
            result = runtime.query.interval_result()
            runtime.query.consume_cycles()  # flush cost is charged to export
            runtime.log.append(runtime.interval_start, result)
            runtime.interval_start += interval

    def _flush_runtime_final(self, runtime: _QueryRuntime) -> None:
        """Flush one query's last (possibly partial) measurement interval.

        Called when an execution ends and when a query departs mid-session.
        """
        if runtime.interval_start is None:
            return
        final = runtime.query.interval_result()
        runtime.query.consume_cycles()
        runtime.log.append(runtime.interval_start, final)

    def _final_flush(self) -> None:
        """Flush the last (possibly partial) measurement intervals."""
        for runtime in self._runtimes.values():
            self._flush_runtime_final(runtime)

    # ------------------------------------------------------------------
    def _process_bin(self, index: int, batch: Batch, clock: CycleClock,
                     buffer: CaptureBuffer) -> BinRecord:
        """Drive one time bin through the stage pipeline (Figure 3.2).

        The stages live in :mod:`repro.monitor.pipeline`; this method is the
        single entry point every execution shape (``run()``, streaming
        sessions, shard workers) funnels through.
        """
        return self.pipeline.process(self, index, batch, clock, buffer)

    # ------------------------------------------------------------------
    @staticmethod
    def _filtered_batch(packet_filter, batch: Batch) -> Batch:
        """Apply a stateless filter with per-batch result sharing.

        Queries frequently register semantically identical filters (most use
        ``all_packets``); the result is memoised on the batch keyed by the
        filter's ``cache_key``, so N queries behind the same predicate
        trigger one evaluation — and because traces memoise their batch
        slices, the reuse extends across modes run over the same trace.
        Filters without a cache key (hand-written predicates) are never
        shared.
        """
        key = packet_filter.cache_key
        if key is None:
            return packet_filter.apply(batch)
        cached = batch.cached_filter(key)
        if cached is None:
            cached = packet_filter.apply(batch)
            batch.store_filter(key, cached)
        return cached

    # ------------------------------------------------------------------
    def _decide_rates(self, ctx) -> Dict[str, float]:
        """Per-query sampling rates for the bin described by ``ctx``.

        Predictive mode gathers the demand columns straight from the slot
        table by the rows the prediction stage refreshed (``demand_slots``)
        — no per-bin objects.  Custom pipelines that filled ``ctx.demands``
        instead (or skipped prediction entirely) fall back to the classic
        :class:`QueryDemand` path.
        """
        names = [runtime.query.name for runtime in ctx.active]
        clock = ctx.clock
        if self.mode in ("original", "reference"):
            return {name: 1.0 for name in names}
        if self.mode == "reactive":
            rate = reactive_rate(self._prev_reactive_rate,
                                 self._prev_query_cycles,
                                 clock.per_bin_budget - ctx.como,
                                 clock.delay,
                                 min_rate=self.reactive_min_rate)
            return {name: rate for name in names}
        slots = ctx.demand_slots
        if slots is None or ctx.demands:
            plan = self.controller.plan(ctx.demands, clock.per_bin_budget,
                                        clock.overhead_so_far(), clock.delay)
            return dict(plan.rates)
        table = self.demand_table
        tenants = None
        if self.tenant_registry.declared:
            tenants = TenantAssignment(self.tenant_registry,
                                       table.tenant_slot[slots])
        plan = self.controller.plan_arrays(
            names, table.predicted[slots], table.min_rate[slots],
            clock.per_bin_budget, clock.overhead_so_far(), clock.delay,
            tenants=tenants, rank=table.name_rank[slots])
        return dict(plan.rates)

    def _run_sampled(self, runtime: _QueryRuntime, sub_batch: Batch,
                     rate: float, features_pre: Optional[FeatureVector]
                     ) -> tuple:
        """Run a query behind system packet/flow sampling.  Returns
        ``(query_cycles, shedding_cycles)``."""
        query = runtime.query
        shedding_cycles = 0.0
        if rate >= 1.0:
            processed = sub_batch
            features_post = features_pre
            if self.mode == "predictive":
                runtime.extractor.commit(sub_batch)
        elif rate <= 0.0:
            # The query is disabled for this bin: it sees no packets.
            processed = sub_batch.select(np.zeros(len(sub_batch), dtype=bool))
            features_post = None
        else:
            processed = runtime.sampler.sample(sub_batch, rate)
            shedding_cycles += runtime.sampler.cost(sub_batch)
            if self.mode == "predictive":
                features_post = runtime.extractor.extract(processed,
                                                          update_state=True)
                shedding_cycles += runtime.extractor.extraction_cost(processed)
            else:
                features_post = None
        query.last_sampling_rate = rate if rate > 0 else 0.0
        if rate > 0.0:
            query.update(processed, max(rate, 1e-12))
        cycles = query.consume_cycles()
        if self.mode == "predictive" and features_post is not None:
            runtime.predictor.observe(features_post.values
                                      if isinstance(features_post, FeatureVector)
                                      else features_post, cycles)
        return cycles, shedding_cycles

    def _run_custom(self, runtime: _QueryRuntime, sub_batch: Batch,
                    rate: float, prediction: float, bin_index: int,
                    features_pre: Optional[FeatureVector]) -> tuple:
        """Run a query that sheds its own load.  Returns
        ``(query_cycles, applied_fraction)``."""
        query = runtime.query
        name = query.name
        if self.enforcer.is_disabled(name, bin_index) or rate <= 0.0:
            return 0.0, 0.0
        allowed = self.enforcer.allowed_fraction(name, rate)
        applied = query.shed_load(sub_batch, allowed)
        cycles = query.consume_cycles()
        # The query was granted ``prediction * allowed`` cycles; consuming
        # noticeably more than that is a violation the enforcer acts upon.
        self.enforcer.record(name, expected_cycles=prediction * allowed,
                             actual_cycles=cycles, bin_index=bin_index)
        if features_pre is not None:
            # Keep the regression history in full-batch terms: scale the
            # measured cycles back up by the fraction the query reports.
            scale = max(float(applied), 0.05)
            runtime.predictor.observe(features_pre.values, cycles / scale)
            runtime.extractor.commit(sub_batch)
        return cycles, float(applied)
