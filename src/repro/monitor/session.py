"""Streaming execution sessions: push-based ingestion with live control.

The paper's load-shedding scheme is an *online* system — it sheds load on
live traffic with no a-priori knowledge of the workload — and
:class:`MonitoringSession` is the execution handle that matches that shape.
Instead of handing :meth:`MonitoringSystem.run` a fully materialised trace,
a caller opens a session and pushes batches as they arrive::

    session = system.open_session(time_bin=0.1)
    for batch in capture_process:        # any iterable / generator of batches
        record = session.ingest(batch)   # full per-bin pipeline, one bin
    result = session.close()             # final measurement-interval flush

Each :meth:`ingest` call drives the complete per-bin pipeline of Figure 3.2
(prediction -> allocation -> shedding -> queries) and returns the bin's
:class:`~repro.monitor.system.BinRecord`.  Between bins the session can be
reconfigured live — the Chapter 6 dynamic scenario:

* :meth:`add_query` / :meth:`remove_query` model query arrivals and
  departures (Figure 6.9); a departing query's last partial measurement
  interval is flushed into its log, and its enforcement/controller state is
  dropped so a later same-named query starts clean.
* :meth:`set_capacity` models the host capacity changing under the system
  (CPU frequency scaling, co-located jobs).

All three take effect at the next bin boundary — i.e. they are queued and
applied at the start of the next :meth:`ingest` (or at :meth:`close`), never
in the middle of a bin — so a bin is always processed under one consistent
configuration.

:meth:`MonitoringSystem.run` is a thin wrapper over this class (open, ingest
every batch, close) and is bit-identical to driving the session by hand; the
golden regression tests pin that equivalence down.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.cycles import CycleBudget, CycleClock
from .capture import CaptureBuffer
from .packet import Batch, as_trace
from .query import Query, QueryResultLog
from .system import BinRecord, ExecutionResult, MonitoringSystem


def _snapshot_log(log: QueryResultLog) -> QueryResultLog:
    """Shallow copy of a result log (for mid-stream snapshots)."""
    copy = QueryResultLog(log.name)
    copy.intervals = list(log.intervals)
    copy.results = list(log.results)
    return copy


def _concat_logs(first: QueryResultLog, second: QueryResultLog
                 ) -> QueryResultLog:
    """One chronological log out of two lifetimes of a same-named query."""
    merged = QueryResultLog(first.name)
    merged.intervals = list(first.intervals) + list(second.intervals)
    merged.results = list(first.results) + list(second.results)
    return merged


class MonitoringSession:
    """Push-based execution handle over a :class:`MonitoringSystem`.

    Opening a session resets the system's per-execution state (exactly as
    :meth:`MonitoringSystem.run` used to) and takes ownership of the per-bin
    machinery: the cycle clock, the capture buffer and the bin index.  One
    system can therefore only be driven by one session at a time; open a new
    session to start a fresh execution.

    Parameters
    ----------
    system:
        The system to execute.
    time_bin:
        Bin length in seconds (the paper uses 100 ms).  Every ingested batch
        is treated as one bin of this length.
    name:
        Label stored as the execution's ``trace_name`` (``run()`` passes the
        trace's name).
    """

    def __init__(self, system: MonitoringSystem, time_bin: float = 0.1,
                 name: str = "live") -> None:
        system._reset()
        self.system = system
        self.time_bin = float(time_bin)
        self.name = name
        self.budget = CycleBudget(system.budget.cycles_per_second,
                                  self.time_bin)
        self.clock = CycleClock(self.budget)
        self.buffer = CaptureBuffer(system.buffer_seconds,
                                    cycles_per_second=self.budget.cycles_per_second)
        system.controller.configure_budget(self.budget.per_bin,
                                           self.buffer.capacity_cycles)
        self._bins: List[BinRecord] = []
        #: Queued reconfigurations, applied in call order at the next bin
        #: boundary: ("add", query, start_time) | ("remove", name) |
        #: ("capacity", cycles_per_second).
        self._pending: List[Tuple] = []
        #: Final logs of queries that departed mid-session.
        self._departed_logs: Dict[str, QueryResultLog] = {}
        self._next_index = 0
        self._last_start_ts: Optional[float] = None
        self._result: Optional[ExecutionResult] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._result is not None

    @property
    def bins_ingested(self) -> int:
        return len(self._bins)

    @property
    def query_names(self) -> List[str]:
        """Queries currently registered (pending changes not yet applied)."""
        return self.system.query_names

    @property
    def metrics(self) -> Dict:
        """Operational metrics of the execution so far (JSON-able).

        ``profile`` is the per-stage wall-time/cycle breakdown recorded by
        :class:`repro.profile.StageProfiler` (with p50/p95/p99 per-bin
        latency percentiles); ``feature_sharing`` reports the shared
        feature-state registry — group/member counts and how many
        extraction reads and counter merges were served from shared state
        instead of being recomputed per query.  When the system declares
        tenant groups, ``tenants`` adds the per-tenant accounting: tenant
        count and query cycles consumed per tenant so far.
        """
        metrics = {
            "profile": self.system.profiler.summary(),
            "feature_sharing": self.system.feature_states.stats(),
        }
        registry = self.system.tenant_registry
        if registry.declared:
            totals: Dict[str, float] = {}
            for record in self._bins:
                for tenant, cycles in record.tenant_cycles.items():
                    totals[tenant] = totals.get(tenant, 0.0) + cycles
            metrics["tenants"] = {
                "count": len(registry.groups),
                "query_cycles": totals,
            }
        return metrics

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, batch: Batch) -> BinRecord:
        """Process one time bin's worth of packets and record the outcome.

        Pending reconfigurations are applied first (this call *is* the bin
        boundary they were waiting for), then the batch flows through the
        full pipeline: capture-buffer admission, prediction, allocation,
        shedding and query execution.
        """
        if self.closed:
            raise RuntimeError("cannot ingest into a closed session")
        self._apply_pending(batch.start_ts)
        record = self.system._process_bin(self._next_index, batch, self.clock,
                                          self.buffer)
        self._next_index += 1
        self._last_start_ts = float(batch.start_ts)
        self._bins.append(record)
        return record

    def ingest_trace(self, source) -> "MonitoringSession":
        """Stream every bin of ``source`` through :meth:`ingest`.

        ``source`` is anything :func:`repro.monitor.packet.as_trace`
        accepts: an in-memory :class:`~repro.monitor.packet.PacketTrace`, a
        :class:`~repro.monitor.packet.StreamingTrace`, or a trace store —
        the out-of-core path: a store far larger than RAM flows through the
        full predict/shed pipeline one chunk-cache-bounded bin at a time.
        A streaming source's cache telemetry is reset first, so every
        replay reports its own hit/miss/residency numbers rather than
        totals accumulated across earlier runs.  The session stays open
        (reconfigure, ingest more, or :meth:`close`); returns ``self`` so
        ``ingest_trace(store).close()`` reads naturally.
        """
        trace = as_trace(source)
        reset_stats = getattr(trace, "reset_stats", None)
        if reset_stats is not None:
            reset_stats()
        for batch in trace.batches(self.time_bin):
            self.ingest(batch)
        return self

    def close(self) -> ExecutionResult:
        """Flush the last (possibly partial) measurement intervals and
        return the final :class:`ExecutionResult`.  Idempotent."""
        if self._result is not None:
            return self._result
        self._apply_pending(None)
        self.system._final_flush()
        result = self._make_result()
        result.bins = self._bins
        result.query_logs = self._collect_logs(snapshot=False)
        self._result = result
        return result

    def partial_result(self) -> ExecutionResult:
        """Snapshot of the execution so far (accuracy-so-far queries).

        The snapshot holds copies of the bins and result logs accumulated up
        to the last ingested bin; open measurement intervals are *not*
        flushed (the session keeps running), so the logs contain completed
        intervals only.  Feed it to the usual accuracy helpers, e.g.
        ``runner.accuracy_by_query(session.partial_result(), reference)``.
        """
        result = self._make_result()
        result.bins = list(self._bins)
        result.query_logs = self._collect_logs(snapshot=True)
        return result

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """Complete execution state, as a serialisable checkpoint payload.

        The session object graph *is* the state — system, queries,
        predictors, controller, enforcer, RNGs, cycle clock, capture
        buffer, result logs, bin records and any still-pending
        reconfigurations are all reachable from ``self`` and all pickle
        exactly (NumPy generators and arrays round-trip bit for bit).  The
        caller must serialise the returned payload *immediately* (e.g.
        ``pickle.dumps``): it aliases live objects, so it is a snapshot
        only at the moment it is captured.  :mod:`repro.serve.checkpoint`
        wraps this in a versioned on-disk format.
        """
        if self.closed:
            raise RuntimeError("cannot checkpoint a closed session")
        return {"kind": "monitoring", "session": self}

    @classmethod
    def from_state(cls, state: Dict) -> "MonitoringSession":
        """Rebuild a session from a deserialised :meth:`state_dict` payload.

        The payload must have round-tripped through serialisation (the
        checkpoint loader's job); the rebuilt session then owns a private
        copy of every component and resumes bit-identically — ``__init__``
        is deliberately bypassed, because it would reset the system's
        accumulated per-execution state.
        """
        if state.get("kind") != "monitoring":
            raise ValueError(
                f"not a MonitoringSession checkpoint payload: "
                f"kind={state.get('kind')!r}")
        session = state["session"]
        if not isinstance(session, cls):
            raise TypeError(
                f"checkpoint payload holds a {type(session).__name__}, "
                f"expected {cls.__name__}")
        return session

    # ------------------------------------------------------------------
    def _collect_logs(self, snapshot: bool) -> Dict[str, QueryResultLog]:
        """Departed logs plus live logs; same-named lifetimes concatenated.

        A query that departed and was later replaced by a same-named arrival
        must not lose its flushed intervals: the result log for that name is
        the chronological concatenation of every lifetime.
        """
        logs: Dict[str, QueryResultLog] = {}
        for name, log in self._departed_logs.items():
            logs[name] = _snapshot_log(log) if snapshot else log
        for name, runtime in self.system._runtimes.items():
            live = _snapshot_log(runtime.log) if snapshot else runtime.log
            prior = logs.get(name)
            logs[name] = live if prior is None else _concat_logs(prior, live)
        return logs

    # ------------------------------------------------------------------
    # Live reconfiguration (applied at the next bin boundary)
    # ------------------------------------------------------------------
    def add_query(self, query: Query, start_time: Optional[float] = None
                  ) -> None:
        """Register ``query`` at the next bin boundary (a query arrival).

        ``start_time`` defaults to the next bin's start timestamp, i.e. the
        query becomes active immediately at the next ingested bin; pass an
        explicit timestamp to model an arrival scheduled further ahead.
        """
        if self.closed:
            raise RuntimeError("cannot reconfigure a closed session")
        name = query.name
        pending_add = any(op[0] == "add" and op[1].name == name
                          for op in self._pending)
        pending_remove = any(op[0] == "remove" and op[1] == name
                             for op in self._pending)
        if pending_add or (name in self.system._runtimes and
                           not pending_remove):
            raise ValueError(f"a query named {name!r} is already registered")
        self._pending.append(("add", query, start_time))

    def remove_query(self, name: str) -> None:
        """Deregister a query at the next bin boundary (a query departure).

        The query's final partial measurement interval is flushed into its
        log (kept in the session's result; if a same-named query arrives and
        departs again later, the logs are concatenated chronologically), and
        all per-query enforcement and controller state is dropped, so a
        same-named query added later starts with a clean slate.
        """
        if self.closed:
            raise RuntimeError("cannot reconfigure a closed session")
        for index, op in enumerate(self._pending):
            if op[0] == "add" and op[1].name == name:
                del self._pending[index]
                return
        already_departing = any(op[0] == "remove" and op[1] == name
                                for op in self._pending)
        if already_departing or name not in self.system._runtimes:
            raise KeyError(f"no query named {name!r} is registered")
        self._pending.append(("remove", name))

    def set_capacity(self, cycles_per_second: float) -> None:
        """Change the host's cycle capacity at the next bin boundary.

        The per-bin budget, the capture buffer's backlog capacity and the
        controller's probe step sizes are all rebuilt from the new capacity;
        accumulated processing delay (backlog) carries over, exactly as it
        would on a real host whose clock changed under a loaded monitor.
        """
        if self.closed:
            raise RuntimeError("cannot reconfigure a closed session")
        cycles_per_second = float(cycles_per_second)
        if cycles_per_second <= 0:
            raise ValueError("cycles_per_second must be positive")
        self._pending.append(("capacity", cycles_per_second))

    # ------------------------------------------------------------------
    def _apply_pending(self, boundary_ts: Optional[float]) -> None:
        """Apply queued reconfigurations in call order at a bin boundary."""
        pending, self._pending = self._pending, []
        for op in pending:
            kind = op[0]
            if kind == "add":
                _, query, start_time = op
                if start_time is None:
                    start_time = (boundary_ts if boundary_ts is not None
                                  else self._next_boundary_ts())
                self.system.add_query(query, start_time=start_time)
            elif kind == "remove":
                name = op[1]
                runtime = self.system._runtimes[name]
                self.system._flush_runtime_final(runtime)
                prior = self._departed_logs.get(name)
                self._departed_logs[name] = runtime.log if prior is None \
                    else _concat_logs(prior, runtime.log)
                self.system.remove_query(name)
            else:  # capacity
                self.budget = CycleBudget(op[1], self.time_bin)
                self.clock.budget = self.budget
                self.buffer.cycles_per_second = float(op[1])
                self.system.controller.configure_budget(
                    self.budget.per_bin, self.buffer.capacity_cycles)

    def _next_boundary_ts(self) -> float:
        if self._last_start_ts is None:
            return 0.0
        return self._last_start_ts + self.time_bin

    def _make_result(self) -> ExecutionResult:
        return ExecutionResult(self.system.mode, self.system.strategy_name,
                               self.name, self.budget)

    # ------------------------------------------------------------------
    def __enter__(self) -> "MonitoringSession":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is None:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return (f"MonitoringSession(mode={self.system.mode!r}, "
                f"bins={len(self._bins)}, {state})")


__all__ = ["MonitoringSession"]
