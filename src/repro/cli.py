"""Shared command-line surface of the repro entry points.

``python -m repro.replay``, ``python -m repro.serve`` and
``python -m repro.fleet`` all describe the same monitoring system — query
mix, operating mode, sharding layout, bin length — so the flag definitions
and the config-overlay logic live here once and the three CLIs stay in
lockstep by construction.
"""

from __future__ import annotations

import argparse
import os

__all__ = ["add_system_args", "apply_system_args", "resolve_query_specs"]


def resolve_query_specs(value: str):
    """Turn the ``--queries`` argument into a tuple of query specs.

    Resolution order: anything ending in ``.json`` loads as a JSON spec
    file; a known mix name expands from
    :data:`repro.experiments.scenarios.QUERY_MIXES` (mix names always win
    over same-named files, so a stray file in the working directory cannot
    shadow a documented mix); any other existing path loads as a spec
    file; anything else parses as comma-separated registry names.
    """
    from .experiments.scenarios import QUERY_MIXES
    from .queries import load_query_specs, parse_query_specs

    if value.endswith(".json"):
        return load_query_specs(value)
    if value in QUERY_MIXES:
        return parse_query_specs(QUERY_MIXES[value])
    if os.path.exists(value):
        return load_query_specs(value)
    return parse_query_specs(value)


def add_system_args(parser: argparse.ArgumentParser,
                    with_defaults: bool = True) -> None:
    """Install the system/sharding flags shared by the repro CLIs.

    With ``with_defaults=False`` every default becomes ``None`` (and the
    help strings stop claiming defaults), which lets a caller overlay
    *only the flags the user actually typed* onto a config loaded from a
    file (:func:`apply_system_args` skips ``None``).
    """
    def d(value):
        return value if with_defaults else None

    def h(text):
        return text + (" (default: %(default)s)" if with_defaults else "")

    parser.add_argument("--queries", default=d("counter,flows,top-k"),
                        help=h("comma-separated query names, a named mix "
                               "from repro.experiments.scenarios."
                               "QUERY_MIXES, or a path to a JSON spec file "
                               "(a list of names and/or {kind, kwargs, "
                               "filter} objects)"))
    parser.add_argument("--mode", default=d("predictive"),
                        help=h("operating mode"))
    parser.add_argument("--strategy", default=None,
                        help="allocation strategy for the predictive mode")
    parser.add_argument("--predictor", default=None,
                        help="cycle predictor kind (mlr, slr, ewma)")
    parser.add_argument("--num-shards", type=int, default=d(1),
                        help="flow-hash shards to partition the stream over")
    parser.add_argument("--backend", default=d("auto"),
                        choices=("auto", "inprocess", "fork", "workers"),
                        help="shard-execution backend: 'workers' keeps one "
                             "persistent process per shard fed through "
                             "shared memory; 'auto' picks workers when "
                             "--n-workers asks for parallelism the host "
                             "can honour")
    parser.add_argument("--n-workers", type=int, default=d(1),
                        help="process parallelism requested for sharded "
                             "execution (1 = serial)")
    parser.add_argument("--time-bin", type=float, default=d(0.1),
                        help=h("bin length in seconds"))
    parser.add_argument("--seed", type=int, default=d(0),
                        help=h("system seed"))


def apply_system_args(config, args):
    """Overlay parsed system flags onto ``config`` (``None`` = keep).

    ``args`` is a namespace produced by an :func:`add_system_args` parser;
    every flag the user set (non-``None``) replaces the corresponding
    config field, with ``--queries`` resolved through
    :func:`resolve_query_specs`.  Returns the (re-validated) config.
    """
    overrides = {}
    if args.queries is not None:
        overrides["queries"] = resolve_query_specs(args.queries)
    for flag, config_field in (("mode", "mode"), ("strategy", "strategy"),
                               ("predictor", "predictor"), ("seed", "seed"),
                               ("num_shards", "num_shards"),
                               ("backend", "shard_backend")):
        value = getattr(args, flag)
        if value is not None:
            overrides[config_field] = value
    return config.replace(**overrides) if overrides else config
