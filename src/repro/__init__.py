"""repro: a reproduction of "Load Shedding in Network Monitoring Applications".

The package implements the predictive load shedding scheme of Barlet-Ros,
Iannaccone et al. (USENIX 2007) together with every substrate needed to
exercise it: a CoMo-like monitoring system, the standard query set, a
synthetic traffic generator with anomaly injection, and an experiment harness
that regenerates each table and figure of the paper's evaluation.

Quick start::

    from repro import SystemConfig, standard_queries
    from repro.traffic import load_preset

    trace = load_preset("CESCA-I", seed=1, duration=10.0)
    config = SystemConfig(mode="predictive", strategy="mmfs_pkt")
    system = config.build(standard_queries(["counter", "flows", "top-k"]))
    result = system.run(trace)
    print(result.drop_fraction, result.mean_sampling_rate())

Streaming ingestion (live traffic, no materialised trace)::

    session = system.open_session(time_bin=0.1)
    for batch in batch_source:          # any generator of Batch objects
        session.ingest(batch)           # full per-bin pipeline
    session.add_query(make_query("top-k"))   # arrives at the next bin
    result = session.close()

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured comparison of every reproduced experiment.
"""

from .core import (EWMAPredictor, FeatureExtractor, LoadSheddingController,
                   MLRPredictor, SLRPredictor)
from .core.cycles import CycleBudget
from .core.tenancy import TenantGroup, TenantRegistry
from .fleet import (FleetAggregator, FleetRunner, FleetTopology, NodeSpec,
                    load_topology)
from .monitor import (Batch, ExecutionResult, MonitoringSession,
                      MonitoringSystem, PacketTrace, Query,
                      ReproDeprecationWarning, ShardedSession, ShardedSystem,
                      StreamingTrace, SystemConfig)
from .queries import make_query, standard_queries
from .traffic import (TraceStore, TraceWriter, generate_trace,
                      generate_trace_store, load_preset, open_trace)

__version__ = "1.3.0"

__all__ = [
    "Batch",
    "CycleBudget",
    "EWMAPredictor",
    "ExecutionResult",
    "FeatureExtractor",
    "FleetAggregator",
    "FleetRunner",
    "FleetTopology",
    "LoadSheddingController",
    "MLRPredictor",
    "MonitoringSession",
    "MonitoringSystem",
    "NodeSpec",
    "PacketTrace",
    "Query",
    "ReproDeprecationWarning",
    "SLRPredictor",
    "ShardedSession",
    "ShardedSystem",
    "StreamingTrace",
    "SystemConfig",
    "TenantGroup",
    "TenantRegistry",
    "TraceStore",
    "TraceWriter",
    "__version__",
    "generate_trace",
    "generate_trace_store",
    "load_preset",
    "load_topology",
    "make_query",
    "open_trace",
    "standard_queries",
]
