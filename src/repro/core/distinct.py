"""Distinct-item counting.

The feature extraction stage needs, for every traffic aggregate of Table 3.1,
the number of *unique* items in a batch and the number of *new* items with
respect to the current measurement interval.  The paper uses the
multi-resolution bitmap algorithm of Estan, Varghese and Fisk because it has
a deterministic, small per-packet cost and a bounded memory footprint; we
implement the same structure (:class:`MultiResolutionBitmap`) plus an exact
counter (:class:`ExactDistinctCounter`) used as ground truth in tests and as
an optional extraction backend.

Both counters share a small interface:

``add_hashes(hashes)``      register an array of 64-bit item hashes
``estimate()``              estimated number of distinct items added so far
``merge(other)``            in-place union with another counter
``copy() / reset()``        bookkeeping helpers
"""

from __future__ import annotations

import numpy as np


class DistinctCounter:
    """Interface shared by the distinct-counting backends."""

    def add_hashes(self, hashes: np.ndarray) -> None:
        raise NotImplementedError

    def estimate(self) -> float:
        raise NotImplementedError

    def merge(self, other: "DistinctCounter") -> None:
        raise NotImplementedError

    def new_estimate(self, other: "DistinctCounter") -> float:
        """Estimated number of items of ``other`` not yet counted here.

        Neither counter is modified.  Equals ``union.estimate() -
        self.estimate()``; backends override this when they can compute it
        without materialising the union.
        """
        union = self.copy()
        union.merge(other)
        return max(0.0, union.estimate() - self.estimate())

    def copy(self) -> "DistinctCounter":
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class ExactDistinctCounter(DistinctCounter):
    """Exact distinct counting over 64-bit item hashes (hash collisions are
    negligible for the cardinalities involved)."""

    def __init__(self) -> None:
        self._items: set = set()

    def add_hashes(self, hashes: np.ndarray) -> None:
        if len(hashes) == 0:
            return
        self._items.update(np.unique(hashes).tolist())

    def estimate(self) -> float:
        return float(len(self._items))

    def merge(self, other: "ExactDistinctCounter") -> None:
        self._items |= other._items

    def new_estimate(self, other: "ExactDistinctCounter") -> float:
        # Exact backend: count the batch items missing from this counter
        # directly, without copying the (much larger) interval set.
        return float(len(other._items.difference(self._items)))

    def copy(self) -> "ExactDistinctCounter":
        clone = ExactDistinctCounter()
        clone._items = set(self._items)
        return clone

    def reset(self) -> None:
        self._items.clear()


class MultiResolutionBitmap(DistinctCounter):
    """Multi-resolution bitmap distinct counter.

    The hash space ``[0, 1)`` is split into ``num_components`` geometrically
    shrinking slices; component ``i`` covers a fraction ``2^-(i+1)`` of the
    space (the last component covers the remaining tail).  Each component is
    a plain linear-counting bitmap of ``bits_per_component`` bits.  The
    estimator picks the lowest-resolution *base* component that is not
    saturated and scales the linear-counting estimates of the base and all
    finer... coarser components by the fraction of hash space they cover.

    With the default dimensioning (8 components of 4096 bits) the estimation
    error stays around 1% for cardinalities up to several hundred thousand,
    matching the dimensioning reported in Section 3.2.1.
    """

    #: A component is considered saturated once this fraction of bits is set.
    SATURATION = 0.93

    def __init__(self, num_components: int = 8, bits_per_component: int = 4096,
                 ) -> None:
        if num_components < 1:
            raise ValueError("num_components must be >= 1")
        if bits_per_component < 8:
            raise ValueError("bits_per_component must be >= 8")
        self.num_components = num_components
        self.bits_per_component = bits_per_component
        self._bits = np.zeros((num_components, bits_per_component), dtype=bool)
        # Fraction of the hash space covered by each component.
        coverage = [2.0 ** -(i + 1) for i in range(num_components - 1)]
        coverage.append(2.0 ** -(num_components - 1))
        self._coverage = np.array(coverage)

    # ------------------------------------------------------------------
    def _component_of(self, unit: np.ndarray) -> np.ndarray:
        """Component index for hash values mapped to [0, 1)."""
        # Component i covers [1 - 2^-i, 1 - 2^-(i+1)); the last component
        # absorbs the tail.  -log2(1 - v) gives the index directly.
        with np.errstate(divide="ignore"):
            idx = np.floor(-np.log2(np.clip(1.0 - unit, 1e-300, 1.0)))
        return np.minimum(idx.astype(np.int64), self.num_components - 1)

    def add_hashes(self, hashes: np.ndarray) -> None:
        if len(hashes) == 0:
            return
        hashes = np.asarray(hashes, dtype=np.uint64)
        unit = hashes.astype(np.float64) / float(2 ** 64)
        comp = self._component_of(unit)
        # Use independent bits of the hash for the within-component position
        # so the position is not correlated with the component choice.
        position = (hashes & np.uint64(0xFFFFFFFF)).astype(np.int64) \
            % self.bits_per_component
        self._bits[comp, position] = True

    def _component_estimates(self) -> np.ndarray:
        """Per-component linear-counting estimates."""
        b = float(self.bits_per_component)
        set_bits = self._bits.sum(axis=1).astype(np.float64)
        # Linear counting: n ~= -b * ln(unset / b); saturated components
        # (all bits set) get an effectively infinite estimate.
        unset = np.maximum(b - set_bits, 0.5)
        return -b * np.log(unset / b)

    def estimate(self) -> float:
        estimates = self._component_estimates()
        fill = self._bits.mean(axis=1)
        # Base component: the first (coarsest-coverage) component that is not
        # saturated; all components from it onwards are usable.
        usable = np.flatnonzero(fill < self.SATURATION)
        if len(usable) == 0:
            base = self.num_components - 1
        else:
            base = int(usable[0])
        covered = self._coverage[base:].sum()
        return float(estimates[base:].sum() / covered)

    def merge(self, other: "MultiResolutionBitmap") -> None:
        if (other.num_components != self.num_components or
                other.bits_per_component != self.bits_per_component):
            raise ValueError("cannot merge bitmaps with different geometry")
        self._bits |= other._bits

    def copy(self) -> "MultiResolutionBitmap":
        clone = MultiResolutionBitmap(self.num_components,
                                      self.bits_per_component)
        clone._bits = self._bits.copy()
        return clone

    def reset(self) -> None:
        self._bits[:] = False

    @property
    def memory_bits(self) -> int:
        """Total number of bits of state (for overhead reporting)."""
        return self.num_components * self.bits_per_component


def make_counter(method: str = "bitmap", **kwargs) -> DistinctCounter:
    """Factory for distinct counters.

    ``method`` is ``"bitmap"`` (multi-resolution bitmap, the paper's choice)
    or ``"exact"``.
    """
    if method == "bitmap":
        return MultiResolutionBitmap(**kwargs)
    if method == "exact":
        return ExactDistinctCounter()
    raise ValueError(f"unknown distinct-counting method {method!r}")
