"""Custom load shedding with enforcement (Chapter 6).

Queries that are not robust to packet or flow sampling (e.g. the
signature-based P2P detector) may implement their own load shedding method.
The system then only tells the query the *fraction* of its full-batch
resource usage it is allowed to consume and delegates the actual shedding.

Delegation is safe only if the system polices the queries: a selfish query
could ignore the request and a buggy one could shed the wrong amount.  The
enforcement policy implemented here mirrors Section 6.1.1:

* for every batch the expected consumption is ``predicted_cycles * fraction``;
* a per-query *correction factor* (EWMA of actual / expected) compensates
  queries whose custom method consistently sheds too little or too much, so a
  well-meaning but imprecise method converges to the right usage
  (Figure 6.3);
* queries that keep exceeding their allocation even after correction are
  considered non-cooperative and are disabled for an exponentially growing
  number of bins (Figures 6.10 and 6.11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: EWMA weight of the correction factor.
CORRECTION_EWMA = 0.9


@dataclass
class EnforcementState:
    """Per-query bookkeeping of the enforcement policy."""

    correction: float = 1.0
    violations: int = 0
    disabled_until_bin: int = -1
    penalty_bins: int = 0
    total_violations: int = 0
    total_disables: int = 0


class CustomShedEnforcer:
    """Polices queries that perform their own load shedding.

    Parameters
    ----------
    tolerance:
        Fractional excess over the (corrected) expected consumption that is
        tolerated before counting a violation.
    violation_limit:
        Number of consecutive violations after which a query is disabled.
    base_penalty_bins:
        Length of the first disable period, in time bins; it doubles at every
        subsequent offence.
    max_correction:
        Upper bound on the correction factor, so a query reporting absurd
        costs cannot push the factor to infinity.
    """

    def __init__(self, tolerance: float = 0.25, violation_limit: int = 3,
                 base_penalty_bins: int = 20,
                 max_correction: float = 20.0) -> None:
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if violation_limit < 1:
            raise ValueError("violation_limit must be >= 1")
        self.tolerance = float(tolerance)
        self.violation_limit = int(violation_limit)
        self.base_penalty_bins = int(base_penalty_bins)
        self.max_correction = float(max_correction)
        self._states: Dict[str, EnforcementState] = {}

    # ------------------------------------------------------------------
    def state(self, name: str) -> EnforcementState:
        if name not in self._states:
            self._states[name] = EnforcementState()
        return self._states[name]

    def is_disabled(self, name: str, bin_index: int) -> bool:
        """Whether the query is currently serving a penalty."""
        return bin_index <= self.state(name).disabled_until_bin

    def allowed_fraction(self, name: str, requested_fraction: float) -> float:
        """Fraction of its full-batch usage the query may actually consume.

        The requested fraction (the sampling rate the allocation strategy
        chose) is divided by the query's correction factor, so a query whose
        custom method historically consumed twice what it was asked is now
        asked for half as much.
        """
        state = self.state(name)
        fraction = requested_fraction / max(state.correction, 1e-6)
        return float(min(1.0, max(0.0, fraction)))

    # ------------------------------------------------------------------
    def record(self, name: str, expected_cycles: float, actual_cycles: float,
               bin_index: int) -> EnforcementState:
        """Record the outcome of one batch and update the policy state.

        ``expected_cycles`` is what the system granted (prediction times the
        *requested* fraction); ``actual_cycles`` is what the query consumed.
        """
        state = self.state(name)
        if expected_cycles > 0.0:
            ratio = actual_cycles / expected_cycles
            state.correction = min(
                self.max_correction,
                CORRECTION_EWMA * ratio +
                (1.0 - CORRECTION_EWMA) * state.correction)
            exceeded = actual_cycles > expected_cycles * (1.0 + self.tolerance)
        else:
            exceeded = actual_cycles > 0.0
        if exceeded:
            state.violations += 1
            state.total_violations += 1
            if state.violations >= self.violation_limit:
                # Disable with exponentially growing penalties.
                state.penalty_bins = (self.base_penalty_bins
                                      if state.penalty_bins == 0
                                      else state.penalty_bins * 2)
                state.disabled_until_bin = bin_index + state.penalty_bins
                state.violations = 0
                state.total_disables += 1
        else:
            state.violations = max(0, state.violations - 1)
        return state

    def reset(self, name: Optional[str] = None) -> None:
        """Forget enforcement state for one query (or all)."""
        if name is None:
            self._states.clear()
        else:
            self._states.pop(name, None)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-query enforcement statistics for reporting."""
        return {
            name: {
                "correction": state.correction,
                "total_violations": float(state.total_violations),
                "total_disables": float(state.total_disables),
            }
            for name, state in self._states.items()
        }
