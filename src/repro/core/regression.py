"""Linear regression machinery (Section 3.2.2).

The prediction subsystem models the CPU usage of a query as a linear function
of a subset of the traffic features.  The coefficients are estimated with
ordinary least squares computed through the singular value decomposition,
exactly as in the paper (SVD handles over- and under-determined systems and
near-collinear predictors gracefully).

Two thin wrappers are provided on top of the solver:

* :class:`MultipleLinearRegression` — fit on ``n`` past observations of ``p``
  predictors (plus an intercept) and predict the response for new batches;
* :class:`SlidingHistory` — the fixed-length history of
  ``(feature vector, measured cycles)`` pairs the regressions are fitted on.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence, Tuple

import numpy as np


def ols_svd(design: np.ndarray, response: np.ndarray,
            rcond: float = 1e-10) -> np.ndarray:
    """Ordinary least squares via singular value decomposition.

    Returns the coefficient vector ``b`` minimising ``||design @ b - response||``.
    Singular values below ``rcond`` times the largest are treated as zero,
    which keeps the solution stable when predictors are collinear.
    """
    design = np.asarray(design, dtype=np.float64)
    response = np.asarray(response, dtype=np.float64)
    if design.ndim != 2:
        raise ValueError("design matrix must be 2-D")
    if len(design) != len(response):
        raise ValueError("design and response must have the same length")
    u, s, vt = np.linalg.svd(design, full_matrices=False)
    cutoff = rcond * (s[0] if len(s) else 0.0)
    s_inv = np.where(s > cutoff, 1.0 / np.where(s > 0, s, 1.0), 0.0)
    return vt.T @ (s_inv * (u.T @ response))


class MultipleLinearRegression:
    """Multiple linear regression with an intercept term.

    ``fit`` estimates the coefficients from observations; ``predict`` applies
    them to new predictor vectors.  With a single predictor this degenerates
    to the paper's SLR baseline.
    """

    def __init__(self) -> None:
        self.intercept_: float = 0.0
        self.coefficients_: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self.coefficients_ is not None

    def fit(self, predictors: np.ndarray, response: np.ndarray
            ) -> "MultipleLinearRegression":
        """Fit on an ``(n, p)`` predictor matrix and length-``n`` response."""
        predictors = np.atleast_2d(np.asarray(predictors, dtype=np.float64))
        response = np.asarray(response, dtype=np.float64)
        n = len(response)
        if predictors.shape[0] != n:
            raise ValueError("predictors and response must have equal length")
        design = np.column_stack([np.ones(n), predictors])
        coefficients = ols_svd(design, response)
        self.intercept_ = float(coefficients[0])
        self.coefficients_ = coefficients[1:]
        return self

    def predict(self, predictors: np.ndarray) -> np.ndarray:
        """Predict responses for an ``(m, p)`` matrix (or a single vector)."""
        if not self.is_fitted:
            raise RuntimeError("regression model has not been fitted")
        predictors = np.asarray(predictors, dtype=np.float64)
        single = predictors.ndim == 1
        matrix = np.atleast_2d(predictors)
        result = self.intercept_ + matrix @ self.coefficients_
        return float(result[0]) if single else result

    def residuals(self, predictors: np.ndarray,
                  response: np.ndarray) -> np.ndarray:
        """Fitted-minus-actual residuals over a set of observations."""
        return np.atleast_1d(self.predict(predictors)) - np.asarray(response)


class SlidingHistory:
    """Fixed-length history of (features, cycles) observations.

    The history length ``n`` is the "amount of history" parameter studied in
    Section 3.3.1 (60 batches, i.e. 6 s, by default).  Observations corrupted
    by context switches are replaced by their predicted value through
    :meth:`replace_last`, as described in Section 4.4.
    """

    def __init__(self, length: int = 60) -> None:
        if length < 2:
            raise ValueError("history length must be >= 2")
        self.length = length
        self._features: Deque[np.ndarray] = deque(maxlen=length)
        self._cycles: Deque[float] = deque(maxlen=length)

    def __len__(self) -> int:
        return len(self._cycles)

    @property
    def is_full(self) -> bool:
        return len(self) == self.length

    def append(self, features: np.ndarray, cycles: float) -> None:
        self._features.append(np.asarray(features, dtype=np.float64))
        self._cycles.append(float(cycles))

    def replace_last(self, cycles: float) -> None:
        """Replace the response of the most recent observation."""
        if not self._cycles:
            raise IndexError("history is empty")
        self._cycles[-1] = float(cycles)

    def feature_matrix(self, indices: Optional[Sequence[int]] = None
                       ) -> np.ndarray:
        """Return the stored feature vectors as an ``(n, p)`` matrix.

        ``indices`` optionally selects a subset of feature columns.
        """
        matrix = np.vstack(self._features) if self._features else \
            np.empty((0, 0))
        if indices is not None and matrix.size:
            matrix = matrix[:, list(indices)]
        return matrix

    def responses(self) -> np.ndarray:
        return np.array(self._cycles, dtype=np.float64)

    def clear(self) -> None:
        self._features.clear()
        self._cycles.clear()

    def observations(self) -> Tuple[np.ndarray, np.ndarray]:
        """The full (features, cycles) history as arrays."""
        return self.feature_matrix(), self.responses()
