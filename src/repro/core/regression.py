"""Linear regression machinery (Section 3.2.2).

The prediction subsystem models the CPU usage of a query as a linear function
of a subset of the traffic features.  The coefficients are estimated with
ordinary least squares computed through the singular value decomposition,
exactly as in the paper (SVD handles over- and under-determined systems and
near-collinear predictors gracefully).

Two thin wrappers are provided on top of the solver:

* :class:`MultipleLinearRegression` — fit on ``n`` past observations of ``p``
  predictors (plus an intercept) and predict the response for new batches;
* :class:`SlidingHistory` — the fixed-length history of
  ``(feature vector, measured cycles)`` pairs the regressions are fitted on.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def ols_svd(design: np.ndarray, response: np.ndarray,
            rcond: float = 1e-10) -> np.ndarray:
    """Ordinary least squares via singular value decomposition.

    Returns the coefficient vector ``b`` minimising ``||design @ b - response||``.
    Singular values below ``rcond`` times the largest are treated as zero,
    which keeps the solution stable when predictors are collinear.
    """
    design = np.asarray(design, dtype=np.float64)
    response = np.asarray(response, dtype=np.float64)
    if design.ndim != 2:
        raise ValueError("design matrix must be 2-D")
    if len(design) != len(response):
        raise ValueError("design and response must have the same length")
    u, s, vt = np.linalg.svd(design, full_matrices=False)
    cutoff = rcond * (s[0] if len(s) else 0.0)
    s_inv = np.where(s > cutoff, 1.0 / np.where(s > 0, s, 1.0), 0.0)
    return vt.T @ (s_inv * (u.T @ response))


class MultipleLinearRegression:
    """Multiple linear regression with an intercept term.

    ``fit`` estimates the coefficients from observations; ``predict`` applies
    them to new predictor vectors.  With a single predictor this degenerates
    to the paper's SLR baseline.
    """

    def __init__(self) -> None:
        self.intercept_: float = 0.0
        self.coefficients_: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self.coefficients_ is not None

    def fit(self, predictors: np.ndarray, response: np.ndarray
            ) -> "MultipleLinearRegression":
        """Fit on an ``(n, p)`` predictor matrix and length-``n`` response."""
        predictors = np.atleast_2d(np.asarray(predictors, dtype=np.float64))
        response = np.asarray(response, dtype=np.float64)
        n = len(response)
        if predictors.shape[0] != n:
            raise ValueError("predictors and response must have equal length")
        design = np.column_stack([np.ones(n), predictors])
        coefficients = ols_svd(design, response)
        self.intercept_ = float(coefficients[0])
        self.coefficients_ = coefficients[1:]
        return self

    def predict(self, predictors: np.ndarray) -> np.ndarray:
        """Predict responses for an ``(m, p)`` matrix (or a single vector)."""
        if not self.is_fitted:
            raise RuntimeError("regression model has not been fitted")
        predictors = np.asarray(predictors, dtype=np.float64)
        single = predictors.ndim == 1
        matrix = np.atleast_2d(predictors)
        result = self.intercept_ + matrix @ self.coefficients_
        return float(result[0]) if single else result

    def residuals(self, predictors: np.ndarray,
                  response: np.ndarray) -> np.ndarray:
        """Fitted-minus-actual residuals over a set of observations."""
        return np.atleast_1d(self.predict(predictors)) - np.asarray(response)


class SlidingHistory:
    """Fixed-length history of (features, cycles) observations.

    The history length ``n`` is the "amount of history" parameter studied in
    Section 3.3.1 (60 batches, i.e. 6 s, by default).  Observations corrupted
    by context switches are replaced by their predicted value through
    :meth:`replace_last`, as described in Section 4.4.

    Storage is a preallocated ``2 * length`` slide buffer: appends write at a
    moving cursor, and only when the cursor runs off the end are the last
    ``length`` rows block-copied back to the front.  The window is therefore
    always a contiguous slice, so :meth:`feature_matrix` and
    :meth:`responses` are zero-copy views — no per-prediction ``vstack``.
    The views alias live storage: they are valid until the next ``append``
    and must not be mutated (every consumer feeds them straight into a
    fit/selection pass, which copies).

    :attr:`version` counts every mutation (append / replace / clear), so
    predictors can skip refitting when the window genuinely did not change.
    """

    def __init__(self, length: int = 60) -> None:
        if length < 2:
            raise ValueError("history length must be >= 2")
        self.length = length
        #: Lazily allocated on the first append, once the feature width is
        #: known (a cleared history may be refilled with a new width).
        self._features: Optional[np.ndarray] = None
        self._cycles = np.zeros(2 * length, dtype=np.float64)
        self._pos = 0
        self._count = 0
        self._version = 0

    def __len__(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        return self._count == self.length

    @property
    def version(self) -> int:
        """Monotone mutation counter; unchanged value ⇒ unchanged window."""
        return self._version

    @property
    def width(self) -> int:
        """Feature-vector width of the stored observations (0 when empty)."""
        return 0 if self._features is None else int(self._features.shape[1])

    def append(self, features: np.ndarray, cycles: float) -> None:
        row = np.asarray(features, dtype=np.float64).reshape(-1)
        if self._features is None:
            self._features = np.zeros((2 * self.length, row.shape[0]),
                                      dtype=np.float64)
        elif row.shape[0] != self._features.shape[1]:
            if self._count:
                raise ValueError(
                    f"feature width changed mid-history: expected "
                    f"{self._features.shape[1]}, got {row.shape[0]}")
            self._features = np.zeros((2 * self.length, row.shape[0]),
                                      dtype=np.float64)
        if self._pos == 2 * self.length:
            # Cursor ran off the end: slide the window back to the front.
            self._features[:self.length] = self._features[self.length:]
            self._cycles[:self.length] = self._cycles[self.length:]
            self._pos = self.length
        self._features[self._pos] = row
        self._cycles[self._pos] = float(cycles)
        self._pos += 1
        self._count = min(self._count + 1, self.length)
        self._version += 1

    def replace_last(self, cycles: float) -> None:
        """Replace the response of the most recent observation."""
        if not self._count:
            raise IndexError("history is empty")
        self._cycles[self._pos - 1] = float(cycles)
        self._version += 1

    def feature_matrix(self, indices: Optional[Sequence[int]] = None
                       ) -> np.ndarray:
        """Return the stored feature vectors as an ``(n, p)`` matrix.

        ``indices`` optionally selects a subset of feature columns.  Without
        ``indices`` the result is a zero-copy view of the live buffer (valid
        until the next append; do not mutate); column selection copies.
        """
        if self._count == 0 or self._features is None:
            return np.empty((0, 0))
        matrix = self._features[self._pos - self._count:self._pos]
        if indices is not None and matrix.size:
            matrix = matrix[:, list(indices)]
        return matrix

    def responses(self) -> np.ndarray:
        """The response vector, as a zero-copy view of the live buffer."""
        return self._cycles[self._pos - self._count:self._pos]

    def clear(self) -> None:
        self._features = None
        self._pos = 0
        self._count = 0
        self._version += 1

    def observations(self) -> Tuple[np.ndarray, np.ndarray]:
        """The full (features, cycles) history as arrays."""
        return self.feature_matrix(), self.responses()
