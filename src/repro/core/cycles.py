"""Simulated CPU-cycle accounting.

The paper measures query cost with the x86 time-stamp counter (TSC) on a
3 GHz machine, so each 100 ms time bin offers ``3e8`` cycles to process a
batch.  This module provides the equivalent substrate for the reproduction:

* :class:`OperationCosts` — per-operation cycle weights queries use to charge
  for the real work they perform (per packet, per byte, per hash insert, ...).
  Deriving the cycle cost from actual operation counts reproduces the paper's
  core empirical observation that query cost is dominated by basic
  state-maintenance operations driven by traffic features.
* :class:`CycleMeter` — accumulates charges for one batch and adds optional
  measurement noise (the paper's context switches / cache effects).
* :class:`CycleClock` — the per-bin budget and overhead bookkeeping used by
  the load shedding scheme (``avail_cycles`` in Algorithm 1).

The prediction and shedding code never looks inside a query's cost model; it
only observes the total cycles a query reports for a batch, which preserves
the black-box property of the original system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

#: Default cycle cost of each basic operation.  The absolute values are
#: arbitrary (the algorithms only care about relative magnitudes); they are
#: chosen so that the standard query set on the default CESCA-like trace
#: reproduces the cost ranking of Figure 2.2 (pattern-search and p2p-detector
#: the most expensive, counter-style queries the cheapest).
DEFAULT_OPERATION_COSTS: Dict[str, float] = {
    "packet": 60.0,          # touching one packet header
    "byte": 2.5,             # scanning / copying one payload byte
    "hash_lookup": 180.0,    # hash-table lookup of an existing entry
    "hash_insert": 420.0,    # creating a new hash-table entry
    "hash_update": 90.0,     # updating an existing entry in place
    "counter_update": 25.0,  # bumping a simple array counter
    "sort_op": 55.0,         # one comparison/swap in a ranking structure
    "tree_op": 240.0,        # one node visit in a tree/cluster structure
    "regex_byte": 4.0,       # signature matching per byte
    "store_byte": 1.2,       # writing one byte to the storage process
    "flush": 5000.0,         # per measurement-interval bookkeeping
}


class OperationCosts:
    """Mapping of basic operation names to cycle weights.

    Unknown operations raise ``KeyError`` so typos in query cost models are
    caught by tests rather than silently charged zero cycles.
    """

    def __init__(self, weights: Optional[Dict[str, float]] = None) -> None:
        self._weights = dict(DEFAULT_OPERATION_COSTS)
        if weights:
            self._weights.update(weights)

    def cost(self, operation: str, count: float = 1.0) -> float:
        """Cycles for ``count`` repetitions of ``operation``."""
        return self._weights[operation] * count

    def __contains__(self, operation: str) -> bool:
        return operation in self._weights

    def __getitem__(self, operation: str) -> float:
        return self._weights[operation]

    def as_dict(self) -> Dict[str, float]:
        return dict(self._weights)


class CycleMeter:
    """Accumulates cycle charges for the batch currently being processed.

    A query calls :meth:`charge` while it processes a batch; the monitoring
    system then calls :meth:`consume` to read (and reset) the total, adding
    multiplicative measurement noise if configured.  Noise models the TSC
    measurement artefacts described in Section 3.2.4.
    """

    def __init__(
        self,
        costs: Optional[OperationCosts] = None,
        noise_std: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.costs = costs if costs is not None else OperationCosts()
        self.noise_std = float(noise_std)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._accumulated = 0.0

    def reseed(self, seed: int) -> None:
        """Re-seed the measurement-noise generator deterministically.

        The monitoring system derives one seed per query so that executions
        are reproducible regardless of registration order; this is the public
        API for doing so.
        """
        self._rng = np.random.default_rng(seed)

    def charge(self, operation: str, count: float = 1.0) -> float:
        """Charge ``count`` repetitions of ``operation``; returns the cycles."""
        cycles = self.costs.cost(operation, count)
        self._accumulated += cycles
        return cycles

    def charge_cycles(self, cycles: float) -> None:
        """Charge an explicit number of cycles (used by selfish/buggy queries)."""
        self._accumulated += float(cycles)

    @property
    def pending(self) -> float:
        """Cycles accumulated since the last :meth:`consume`."""
        return self._accumulated

    def consume(self) -> float:
        """Return the accumulated cycles (with noise) and reset the meter."""
        cycles = self._accumulated
        self._accumulated = 0.0
        if self.noise_std > 0.0 and cycles > 0.0:
            cycles *= max(0.0, 1.0 + self._rng.normal(0.0, self.noise_std))
        return cycles

    def reset(self) -> None:
        self._accumulated = 0.0


@dataclass
class CycleBudget:
    """Cycle capacity of the simulated monitoring host.

    ``cycles_per_second`` plays the role of the CPU frequency; the per-bin
    budget is ``cycles_per_second * time_bin``, exactly as in Algorithm 1.
    """

    cycles_per_second: float = 3e8
    time_bin: float = 0.1

    @property
    def per_bin(self) -> float:
        return self.cycles_per_second * self.time_bin

    def scaled(self, factor: float) -> "CycleBudget":
        """Return a budget scaled by ``factor`` (used for overload sweeps)."""
        return CycleBudget(self.cycles_per_second * factor, self.time_bin)


@dataclass
class BinUsage:
    """Cycle usage recorded for a single time bin."""

    predicted: float = 0.0
    queries: float = 0.0
    prediction_overhead: float = 0.0
    shedding_overhead: float = 0.0
    system_overhead: float = 0.0

    @property
    def total(self) -> float:
        return (self.queries + self.prediction_overhead +
                self.shedding_overhead + self.system_overhead)


class CycleClock:
    """Tracks cycle consumption against the per-bin budget.

    The clock exposes the quantities Algorithm 1 needs: the bin budget, the
    overhead already consumed in the current bin (``como_cycles`` +
    ``ps_cycles``), and the *delay* accumulated when previous bins overran
    their budget (used by the buffer-discovery mechanism).
    """

    def __init__(self, budget: Optional[CycleBudget] = None) -> None:
        self.budget = budget if budget is not None else CycleBudget()
        self.current = BinUsage()
        self.history: list = []
        self._carry_delay = 0.0

    # -- per-bin lifecycle ------------------------------------------------
    def start_bin(self) -> None:
        """Begin accounting for a new time bin."""
        self.current = BinUsage()

    def end_bin(self) -> BinUsage:
        """Close the current bin, updating the running delay."""
        usage = self.current
        overrun = usage.total - self.budget.per_bin
        # Delay only accumulates; spare cycles in a bin are lost (a capture
        # system cannot bank idle time), but they do pay down existing delay.
        self._carry_delay = max(0.0, self._carry_delay + overrun)
        self.history.append(usage)
        return usage

    # -- charging ----------------------------------------------------------
    def charge_query(self, cycles: float) -> None:
        self.current.queries += float(cycles)

    def charge_prediction(self, cycles: float) -> None:
        self.current.prediction_overhead += float(cycles)

    def charge_shedding(self, cycles: float) -> None:
        self.current.shedding_overhead += float(cycles)

    def charge_system(self, cycles: float) -> None:
        self.current.system_overhead += float(cycles)

    def record_prediction(self, cycles: float) -> None:
        self.current.predicted = float(cycles)

    # -- quantities used by Algorithm 1 -------------------------------------
    @property
    def per_bin_budget(self) -> float:
        return self.budget.per_bin

    @property
    def delay(self) -> float:
        """Cycles by which the system is currently behind real time."""
        return self._carry_delay

    def overhead_so_far(self) -> float:
        """Overhead cycles already consumed in the current bin."""
        return (self.current.system_overhead +
                self.current.prediction_overhead +
                self.current.shedding_overhead)

    def reset(self) -> None:
        self.current = BinUsage()
        self.history = []
        self._carry_delay = 0.0
