"""Hash functions used by the load shedding scheme.

Two families are provided:

* :class:`H3Hash` — the classical H3 universal hash family used by the
  flowwise flow-sampling load shedder (Section 4.2).  A fresh H3 function is
  drawn every measurement interval so that flow selection cannot be predicted
  or evaded by an adversary.
* :func:`mix64` / :func:`combine_columns` — a fast 64-bit mixing hash used to
  map traffic-aggregate keys (combinations of header fields, Table 3.1) to
  uniformly distributed values for the distinct counters.

All functions are vectorised over NumPy arrays.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

_U64 = np.uint64
_MASK64 = _U64(0xFFFFFFFFFFFFFFFF)


def mix64(keys: np.ndarray) -> np.ndarray:
    """SplitMix64-style finalizer: map 64-bit keys to well-mixed 64-bit hashes."""
    with np.errstate(over="ignore"):
        z = keys.astype(np.uint64, copy=True)
        z = (z + _U64(0x9E3779B97F4A7C15)) & _MASK64
        z ^= z >> _U64(30)
        z = (z * _U64(0xBF58476D1CE4E5B9)) & _MASK64
        z ^= z >> _U64(27)
        z = (z * _U64(0x94D049BB133111EB)) & _MASK64
        z ^= z >> _U64(31)
    return z


def combine_columns(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Combine several integer header columns into one 64-bit key per packet.

    The combination hashes each column and mixes it into an accumulator so
    that e.g. ``(src_ip, dst_ip)`` and ``(dst_ip, src_ip)`` produce different
    keys.
    """
    if not columns:
        raise ValueError("at least one column is required")
    acc = np.zeros(len(columns[0]), dtype=np.uint64)
    with np.errstate(over="ignore"):
        for col in columns:
            acc = mix64(acc ^ (col.astype(np.uint64) + _U64(0x9E3779B9)))
    return acc


def hash_to_unit_interval(hashes: np.ndarray) -> np.ndarray:
    """Map 64-bit hashes to floats uniformly distributed in ``[0, 1)``."""
    return hashes.astype(np.float64) / float(2 ** 64)


class H3Hash:
    """An H3 universal hash function over fixed-width integer keys.

    H3 treats the key as a bit vector and XORs together the rows of a random
    matrix selected by the set key bits.  The family is 2-universal, which is
    what the flowwise sampler relies on for unbiased flow selection.

    Parameters
    ----------
    key_bits:
        Width of the input keys in bits (the 5-tuple key uses 104 bits in the
        paper; here keys are pre-mixed to 64 bits).
    out_bits:
        Width of the produced hash values.
    rng:
        Generator used to draw the random matrix; pass a seeded generator for
        reproducibility.
    """

    def __init__(self, key_bits: int = 64, out_bits: int = 32,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 1 <= out_bits <= 64:
            raise ValueError("out_bits must be in [1, 64]")
        if not 1 <= key_bits <= 64:
            raise ValueError("key_bits must be in [1, 64]")
        rng = rng if rng is not None else np.random.default_rng()
        self.key_bits = key_bits
        self.out_bits = out_bits
        max_val = (1 << out_bits) - 1
        self._matrix = rng.integers(0, max_val + 1, size=key_bits,
                                    dtype=np.uint64)

    def __call__(self, keys: np.ndarray) -> np.ndarray:
        """Hash an array of integer keys to ``out_bits``-bit values."""
        keys = np.asarray(keys, dtype=np.uint64)
        result = np.zeros(keys.shape, dtype=np.uint64)
        with np.errstate(over="ignore"):
            for bit in range(self.key_bits):
                bit_set = (keys >> np.uint64(bit)) & np.uint64(1)
                result ^= bit_set * self._matrix[bit]
        return result

    def unit_interval(self, keys: np.ndarray) -> np.ndarray:
        """Hash keys and map the result uniformly to ``[0, 1)``."""
        return self(keys).astype(np.float64) / float(1 << self.out_bits)
