"""Traffic feature extraction (Section 3.2.1).

For every batch the system extracts a fixed set of simple features with a
deterministic worst-case cost:

* the number of packets and bytes in the batch;
* for each of the ten traffic aggregates of Table 3.1 (combinations of the
  TCP/IP header fields), four counters:

  - ``unique``              distinct items in the batch,
  - ``new``                 items not yet seen in the current measurement
                            interval,
  - ``repeated``            packets in the batch minus unique items,
  - ``interval_repeated``   packets in the batch minus new items.

That yields ``2 + 4 x 10 = 42`` features per batch, the numbers quoted in
Section 3.2.3.  Distinct items are counted with multi-resolution bitmaps by
default (the paper's choice) or exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .distinct import DistinctCounter, make_counter

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from ..monitor.packet import Batch

#: The traffic aggregates of Table 3.1: name -> header columns combined.
TRAFFIC_AGGREGATES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("src_ip", ("src_ip",)),
    ("dst_ip", ("dst_ip",)),
    ("proto", ("proto",)),
    ("src_dst_ip", ("src_ip", "dst_ip")),
    ("src_port_proto", ("src_port", "proto")),
    ("dst_port_proto", ("dst_port", "proto")),
    ("src_ip_port_proto", ("src_ip", "src_port", "proto")),
    ("dst_ip_port_proto", ("dst_ip", "dst_port", "proto")),
    ("src_dst_port_proto", ("src_port", "dst_port", "proto")),
    ("five_tuple", ("src_ip", "dst_ip", "src_port", "dst_port", "proto")),
)

#: Per-aggregate counter kinds, in the order they appear in the feature vector.
AGGREGATE_COUNTERS = ("unique", "new", "repeated", "interval_repeated")


def feature_names() -> List[str]:
    """Names of all extracted features, in canonical order."""
    names = ["packets", "bytes"]
    for agg_name, _ in TRAFFIC_AGGREGATES:
        for counter in AGGREGATE_COUNTERS:
            names.append(f"{agg_name}_{counter}")
    return names


#: Canonical feature order used throughout prediction.
FEATURE_NAMES: Tuple[str, ...] = tuple(feature_names())
NUM_FEATURES = len(FEATURE_NAMES)
_FEATURE_INDEX: Dict[str, int] = {name: i for i, name in enumerate(FEATURE_NAMES)}


@dataclass
class FeatureVector:
    """The features extracted from one batch."""

    values: np.ndarray
    names: Tuple[str, ...] = FEATURE_NAMES

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if len(self.values) != len(self.names):
            raise ValueError(
                f"expected {len(self.names)} feature values, got {len(self.values)}")

    def __getitem__(self, name: str) -> float:
        return float(self.values[_FEATURE_INDEX[name]])

    def as_dict(self) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.names, self.values)}

    def __len__(self) -> int:
        return len(self.values)


class FeatureExtractor:
    """Extracts the 42 traffic features from batches for one query.

    The extractor keeps per-measurement-interval state (one distinct counter
    per aggregate) used to compute the ``new`` and ``interval_repeated``
    counters; the state resets automatically when a batch belonging to a new
    measurement interval arrives, so callers simply feed batches in time
    order.

    Parameters
    ----------
    measurement_interval:
        The query's measurement interval in seconds.
    method:
        ``"bitmap"`` (multi-resolution bitmaps, default) or ``"exact"``.
    counter_kwargs:
        Extra arguments passed to the bitmap constructor (e.g. smaller
        bitmaps to trade accuracy for speed).
    """

    def __init__(self, measurement_interval: float = 1.0,
                 method: str = "bitmap",
                 counter_kwargs: Optional[dict] = None) -> None:
        if measurement_interval <= 0:
            raise ValueError("measurement_interval must be positive")
        self.measurement_interval = float(measurement_interval)
        self.method = method
        self._counter_kwargs = dict(counter_kwargs or {})
        #: Identifies the counter backend for the shared per-batch memo: all
        #: extractors with the same backend share batch counters.
        self._counter_signature = (method,
                                   tuple(sorted(self._counter_kwargs.items())))
        self._interval_counters: List[DistinctCounter] = [
            self._new_counter() for _ in TRAFFIC_AGGREGATES]
        self._interval_start: Optional[float] = None
        # Cache of the per-aggregate batch counters built by the most recent
        # ``extract(..., update_state=False)`` call, so that ``commit`` can
        # merge them without recomputing hashes.
        self._pending_batch_id: Optional[int] = None
        self._pending_counters: Optional[List[DistinctCounter]] = None
        #: Number of cycles charged per extracted feature value; used by the
        #: shedding scheme to account for its own overhead (Table 3.4).
        self.cycles_per_packet = 12.0
        self.cycles_fixed = 2000.0

    def _new_counter(self) -> DistinctCounter:
        return make_counter(self.method, **self._counter_kwargs)

    def _batch_counter(self, batch: "Batch", columns: Tuple[str, ...]
                       ) -> Tuple[DistinctCounter, float]:
        """Distinct counter over one aggregate of ``batch``, shared.

        Every query's extractor needs the same per-batch counter for the
        pre-sampling extraction; it is built once, memoised on the batch and
        only ever merged *from*, never mutated.
        """
        def build() -> Tuple[DistinctCounter, float]:
            counter = self._new_counter()
            counter.add_hashes(batch.aggregate_hashes(columns))
            return counter, counter.estimate()

        return batch.memo(("counter", self._counter_signature, columns), build)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all interval state (start of a fresh execution)."""
        self._interval_counters = [self._new_counter()
                                   for _ in TRAFFIC_AGGREGATES]
        self._interval_start = None
        self._pending_batch_id = None
        self._pending_counters = None

    def _maybe_roll_interval(self, batch_start: float) -> None:
        if self._interval_start is None:
            self._interval_start = batch_start
            return
        if batch_start - self._interval_start >= self.measurement_interval:
            for counter in self._interval_counters:
                counter.reset()
            # Align the new interval start on a multiple of the interval so
            # long gaps roll forward correctly.
            elapsed = batch_start - self._interval_start
            steps = int(elapsed // self.measurement_interval)
            self._interval_start += steps * self.measurement_interval

    # ------------------------------------------------------------------
    def extract(self, batch: "Batch", update_state: bool = True) -> FeatureVector:
        """Extract the feature vector of ``batch``.

        With ``update_state=False`` the per-interval counters are left
        untouched; Algorithm 1 uses this for the pre-sampling extraction and
        then re-extracts (with ``update_state=True``) on the sampled batch so
        the regression history matches what the query actually processed.
        """
        self._maybe_roll_interval(batch.start_ts)
        n_packets = float(len(batch))
        values = np.zeros(NUM_FEATURES, dtype=np.float64)
        values[0] = n_packets
        values[1] = float(batch.byte_count)
        idx = 2
        pending: List[DistinctCounter] = []
        for agg_index, (agg_name, columns) in enumerate(TRAFFIC_AGGREGATES):
            interval_counter = self._interval_counters[agg_index]
            if len(batch) == 0:
                unique = 0.0
                new = 0.0
                pending.append(self._new_counter())
            else:
                batch_counter, unique = self._batch_counter(batch, columns)
                pending.append(batch_counter)
                new = max(0.0, interval_counter.new_estimate(batch_counter))
                if update_state:
                    interval_counter.merge(batch_counter)
            values[idx] = unique
            values[idx + 1] = new
            values[idx + 2] = max(0.0, n_packets - unique)
            values[idx + 3] = max(0.0, n_packets - new)
            idx += 4
        if update_state:
            self._pending_batch_id = None
            self._pending_counters = None
        else:
            self._pending_batch_id = id(batch)
            self._pending_counters = pending
        return FeatureVector(values)

    def commit(self, batch: "Batch") -> None:
        """Fold ``batch`` into the interval state without recomputing features.

        Used by the monitoring system when a batch was *not* sampled: the
        features obtained from the earlier ``extract(..., update_state=False)``
        call are reused for the regression history and only the interval
        counters need updating.  Falls back to a full recomputation when the
        batch differs from the one last extracted.
        """
        self._maybe_roll_interval(batch.start_ts)
        if len(batch) == 0:
            return
        if (self._pending_batch_id == id(batch)
                and self._pending_counters is not None):
            for counter, pending in zip(self._interval_counters,
                                        self._pending_counters):
                counter.merge(pending)
        else:
            for agg_index, (_, columns) in enumerate(TRAFFIC_AGGREGATES):
                batch_counter, _ = self._batch_counter(batch, columns)
                self._interval_counters[agg_index].merge(batch_counter)
        self._pending_batch_id = None
        self._pending_counters = None

    def extraction_cost(self, batch: "Batch") -> float:
        """Simulated cycle cost of extracting features from ``batch``.

        The paper reports feature extraction as the dominant prediction
        overhead (~9% of total cycles, Table 3.4); the linear-in-packets model
        here reproduces that property under the default cost weights.
        """
        return self.cycles_fixed + self.cycles_per_packet * len(batch)


def select_values(vector: FeatureVector, names: Sequence[str]) -> np.ndarray:
    """Return the values of the named features as an array."""
    return np.array([vector[name] for name in names], dtype=np.float64)
