"""Traffic feature extraction (Section 3.2.1).

For every batch the system extracts a fixed set of simple features with a
deterministic worst-case cost:

* the number of packets and bytes in the batch;
* for each of the ten traffic aggregates of Table 3.1 (combinations of the
  TCP/IP header fields), four counters:

  - ``unique``              distinct items in the batch,
  - ``new``                 items not yet seen in the current measurement
                            interval,
  - ``repeated``            packets in the batch minus unique items,
  - ``interval_repeated``   packets in the batch minus new items.

That yields ``2 + 4 x 10 = 42`` features per batch, the numbers quoted in
Section 3.2.3.  Distinct items are counted with multi-resolution bitmaps by
default (the paper's choice) or exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .distinct import DistinctCounter, make_counter

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from ..monitor.packet import Batch

#: The traffic aggregates of Table 3.1: name -> header columns combined.
TRAFFIC_AGGREGATES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("src_ip", ("src_ip",)),
    ("dst_ip", ("dst_ip",)),
    ("proto", ("proto",)),
    ("src_dst_ip", ("src_ip", "dst_ip")),
    ("src_port_proto", ("src_port", "proto")),
    ("dst_port_proto", ("dst_port", "proto")),
    ("src_ip_port_proto", ("src_ip", "src_port", "proto")),
    ("dst_ip_port_proto", ("dst_ip", "dst_port", "proto")),
    ("src_dst_port_proto", ("src_port", "dst_port", "proto")),
    ("five_tuple", ("src_ip", "dst_ip", "src_port", "dst_port", "proto")),
)

#: Per-aggregate counter kinds, in the order they appear in the feature vector.
AGGREGATE_COUNTERS = ("unique", "new", "repeated", "interval_repeated")


def feature_names() -> List[str]:
    """Names of all extracted features, in canonical order."""
    names = ["packets", "bytes"]
    for agg_name, _ in TRAFFIC_AGGREGATES:
        for counter in AGGREGATE_COUNTERS:
            names.append(f"{agg_name}_{counter}")
    return names


#: Canonical feature order used throughout prediction.
FEATURE_NAMES: Tuple[str, ...] = tuple(feature_names())
NUM_FEATURES = len(FEATURE_NAMES)
_FEATURE_INDEX: Dict[str, int] = {name: i for i, name in enumerate(FEATURE_NAMES)}


@dataclass
class FeatureVector:
    """The features extracted from one batch."""

    values: np.ndarray
    names: Tuple[str, ...] = FEATURE_NAMES

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if len(self.values) != len(self.names):
            raise ValueError(
                f"expected {len(self.names)} feature values, got {len(self.values)}")

    def __getitem__(self, name: str) -> float:
        return float(self.values[_FEATURE_INDEX[name]])

    def as_dict(self) -> Dict[str, float]:
        return {name: float(v) for name, v in zip(self.names, self.values)}

    def __len__(self) -> int:
        return len(self.values)


class IntervalState:
    """Per-interval counter state shared by a group of extractors.

    One group exists per ``(measurement interval, counter signature, filter
    share key)``: every member merges *the same* filtered sub-batch objects
    at the same interval boundaries, so the ten distinct counters — and the
    per-bin ``new_estimate`` reads against them — are paid once for the
    whole group instead of once per query.

    Bit-identity is guaranteed by construction: bitmap/exact merges are
    commutative unions, so the shared counters hold exactly the state each
    member's private counters would hold — *as long as the member merged
    every batch the group merged*.  The group tracks that with write
    rounds:

    * ``write_round`` counts merge rounds since the group was created; a
      member whose ``_synced`` round (or the ``heal_round``, see below)
      equals it is in lockstep and may read/merge through the group.
    * ``snapshot`` holds copies of the counters as they were *before* the
      current round's merge; a member exactly one round behind (its batch
      was fully shed, say) forks its private state from the snapshot —
      bit-identical to the private path, which would have skipped the same
      merge.
    * ``heal_round`` records the round at which the counters were last
      wiped by an interval roll: a wipe erases any missed-merge divergence,
      so members behind at most that round snap back into lockstep.

    The monitoring pipeline reads (prediction) strictly before it writes
    (execution) within a bin and each bin merges at most one batch per
    group, so an attached member is never more than one round behind — the
    three cases above are exhaustive.
    """

    def __init__(self, interval: float, method: str,
                 counter_kwargs: dict) -> None:
        self.interval = float(interval)
        self.method = method
        self.counter_kwargs = dict(counter_kwargs)
        self.counters: List[DistinctCounter] = [
            make_counter(method, **self.counter_kwargs)
            for _ in TRAFFIC_AGGREGATES]
        self.interval_start: Optional[float] = None
        self.write_round = 0
        self.heal_round = 0
        #: The batch merged by the current round; doubles as the dedup
        #: token so later members' commits of the same batch are no-ops.
        self.round_batch = None
        self.snapshot: Optional[List[DistinctCounter]] = None
        self.members = 0
        #: Read cache: (batch, write_round, heal_round, values array).
        self.cache: Optional[tuple] = None
        # Telemetry (surfaced through session.metrics).
        self.shared_reads = 0
        self.computed_reads = 0
        self.deduped_merges = 0
        self.forks = 0

    @property
    def pristine(self) -> bool:
        """True while no batch has touched the group (joinable state)."""
        return self.interval_start is None and self.write_round == 0

    def roll(self, batch_start: float) -> None:
        """Advance the measurement interval; idempotent per batch start.

        Mirrors the private extractor's interval roll exactly.  A wipe
        heals every member (their private state would have been wiped the
        same way, erasing any missed merges), so it resets the round
        bookkeeping too.
        """
        if self.interval_start is None:
            self.interval_start = batch_start
            return
        if batch_start - self.interval_start >= self.interval:
            for counter in self.counters:
                counter.reset()
            elapsed = batch_start - self.interval_start
            steps = int(elapsed // self.interval)
            self.interval_start += steps * self.interval
            self.heal_round = self.write_round
            self.snapshot = None
            self.round_batch = None
            self.cache = None

    def begin_round(self, batch) -> None:
        """Open a merge round for ``batch`` (called by the first committer)."""
        if self.members > 1:
            self.snapshot = [counter.copy() for counter in self.counters]
        self.write_round += 1
        self.round_batch = batch


class FeatureStateRegistry:
    """Registry of shared :class:`IntervalState` groups for one system.

    ``acquire`` joins an existing group only while it is *pristine* (no
    batch seen yet): extractors created together — at system construction,
    at a reset, or in the same bin-boundary reconfiguration — share state,
    while a query arriving after the stream started gets a fresh group (its
    private state would start empty, unlike the running group's).
    """

    def __init__(self) -> None:
        self._groups: Dict[tuple, IntervalState] = {}

    def acquire(self, interval: float, method: str, counter_kwargs: dict,
                share_key) -> IntervalState:
        key = (float(interval), method,
               tuple(sorted(counter_kwargs.items())), share_key)
        group = self._groups.get(key)
        if group is None or not group.pristine:
            group = IntervalState(interval, method, counter_kwargs)
            self._groups[key] = group
        group.members += 1
        return group

    def release(self, group: IntervalState) -> None:
        group.members = max(0, group.members - 1)

    def clear(self) -> None:
        """Drop every group (start of a fresh execution).

        Members re-acquire on their own reset, so the reset order matters:
        clear the registry first, then reset the extractors.
        """
        self._groups.clear()

    def stats(self) -> Dict[str, float]:
        """Aggregate sharing telemetry across the registry's groups."""
        groups = list(self._groups.values())
        return {
            "groups": len(groups),
            "members": int(sum(g.members for g in groups)),
            "shared_reads": int(sum(g.shared_reads for g in groups)),
            "computed_reads": int(sum(g.computed_reads for g in groups)),
            "deduped_merges": int(sum(g.deduped_merges for g in groups)),
            "forks": int(sum(g.forks for g in groups)),
        }


#: Sync states of an attached extractor relative to its group.
_SYNC = "sync"
_FORK_SNAPSHOT = "snapshot"
_FORK_PRISTINE = "pristine"


class FeatureExtractor:
    """Extracts the 42 traffic features from batches for one query.

    The extractor keeps per-measurement-interval state (one distinct counter
    per aggregate) used to compute the ``new`` and ``interval_repeated``
    counters; the state resets automatically when a batch belonging to a new
    measurement interval arrives, so callers simply feed batches in time
    order.

    When constructed with a ``registry`` and a ``share_key``, the interval
    state is shared through an :class:`IntervalState` group: extractors
    with the same interval, counter backend and filter pay one set of
    merges and ``new_estimate`` reads per bin instead of one per query,
    with bit-identical results.  An extractor silently *forks* back to
    private state the moment its own stream diverges from the group's
    (sampled extraction, a fully shed bin, a mid-stream join).

    Parameters
    ----------
    measurement_interval:
        The query's measurement interval in seconds.
    method:
        ``"bitmap"`` (multi-resolution bitmaps, default) or ``"exact"``.
    counter_kwargs:
        Extra arguments passed to the bitmap constructor (e.g. smaller
        bitmaps to trade accuracy for speed).
    registry:
        Optional :class:`FeatureStateRegistry` to share interval state
        through.
    share_key:
        Hashable key identifying the packet stream this extractor sees
        (the query filter's ``cache_key``); ``None`` disables sharing.
    """

    def __init__(self, measurement_interval: float = 1.0,
                 method: str = "bitmap",
                 counter_kwargs: Optional[dict] = None,
                 registry: Optional[FeatureStateRegistry] = None,
                 share_key=None) -> None:
        if measurement_interval <= 0:
            raise ValueError("measurement_interval must be positive")
        self.measurement_interval = float(measurement_interval)
        self.method = method
        self._counter_kwargs = dict(counter_kwargs or {})
        #: Identifies the counter backend for the shared per-batch memo: all
        #: extractors with the same backend share batch counters.
        self._counter_signature = (method,
                                   tuple(sorted(self._counter_kwargs.items())))
        self._interval_counters: List[DistinctCounter] = [
            self._new_counter() for _ in TRAFFIC_AGGREGATES]
        self._interval_start: Optional[float] = None
        # Cache of the per-aggregate batch counters built by the most recent
        # ``extract(..., update_state=False)`` call, so that ``commit`` can
        # merge them without recomputing hashes.  The batch itself is held
        # (not its ``id()``): an id can be recycled after the batch is
        # garbage-collected, silently merging stale counters.
        self._pending_batch = None
        self._pending_counters: Optional[List[DistinctCounter]] = None
        self._registry = registry
        self._share_key = share_key
        self._group: Optional[IntervalState] = None
        #: Group round this member has merged through (attached mode only).
        self._synced = 0
        self._participated = False
        if registry is not None and share_key is not None:
            self._group = registry.acquire(
                self.measurement_interval, method, self._counter_kwargs,
                share_key)
        #: Number of cycles charged per extracted feature value; used by the
        #: shedding scheme to account for its own overhead (Table 3.4).
        self.cycles_per_packet = 12.0
        self.cycles_fixed = 2000.0

    def _new_counter(self) -> DistinctCounter:
        return make_counter(self.method, **self._counter_kwargs)

    @property
    def shared(self) -> bool:
        """True while the interval state lives in a shared group."""
        return self._group is not None

    def _batch_counter(self, batch: "Batch", columns: Tuple[str, ...]
                       ) -> Tuple[DistinctCounter, float]:
        """Distinct counter over one aggregate of ``batch``, shared.

        Every query's extractor needs the same per-batch counter for the
        pre-sampling extraction; it is built once, memoised on the batch and
        only ever merged *from*, never mutated.
        """
        def build() -> Tuple[DistinctCounter, float]:
            counter = self._new_counter()
            counter.add_hashes(batch.aggregate_hashes(columns))
            return counter, counter.estimate()

        return batch.memo(("counter", self._counter_signature, columns), build)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all interval state (start of a fresh execution).

        A sharing extractor re-acquires a group from its registry, so a
        reset re-establishes sharing even after a mid-run fork (the system
        clears the registry first, making every re-acquired group fresh).
        """
        self._interval_counters = [self._new_counter()
                                   for _ in TRAFFIC_AGGREGATES]
        self._interval_start = None
        self._pending_batch = None
        self._pending_counters = None
        self.release()
        self._synced = 0
        self._participated = False
        if self._registry is not None and self._share_key is not None:
            self._group = self._registry.acquire(
                self.measurement_interval, self.method, self._counter_kwargs,
                self._share_key)

    def release(self) -> None:
        """Leave the shared group (query removal / extractor teardown)."""
        if self._group is not None:
            self._registry.release(self._group)
            self._group = None

    # ------------------------------------------------------------------
    # Shared-group protocol
    # ------------------------------------------------------------------
    def _sync_state(self, batch_start: float) -> str:
        """Classify this member against the group's current round."""
        group = self._group
        if self._participated:
            effective = max(self._synced, group.heal_round)
            if effective == group.write_round:
                return _SYNC
            if effective == group.write_round - 1:
                if group.snapshot is None:  # pragma: no cover - defensive
                    raise RuntimeError(
                        "shared interval state lost its fork snapshot")
                return _FORK_SNAPSHOT
            raise RuntimeError(  # pragma: no cover - defensive
                "shared interval state diverged beyond repair (member "
                f"round {effective}, group round {group.write_round}); "
                "batches must flow through the monitoring pipeline")
        # Never merged or read anything yet: in lockstep only if the group
        # still holds exactly what a pristine private extractor would
        # (empty counters, aligned interval).
        if group.write_round == group.heal_round \
                and group.interval_start == batch_start:
            return _SYNC
        return _FORK_PRISTINE

    def _detach(self, state: str) -> None:
        """Fork private interval state out of the group and leave it."""
        group = self._group
        if state == _SYNC:
            self._interval_counters = [c.copy() for c in group.counters]
            self._interval_start = group.interval_start
        elif state == _FORK_SNAPSHOT:
            self._interval_counters = [c.copy() for c in group.snapshot]
            self._interval_start = group.interval_start
        else:  # pristine: nothing observed yet, start from scratch
            self._interval_counters = [self._new_counter()
                                       for _ in TRAFFIC_AGGREGATES]
            self._interval_start = None
        group.forks += 1
        self.release()

    @staticmethod
    def _empty_vector(batch: "Batch") -> FeatureVector:
        """The feature vector of an empty batch (no counter state touched)."""
        values = np.zeros(NUM_FEATURES, dtype=np.float64)
        values[1] = float(batch.byte_count)
        return FeatureVector(values)

    def _read_shared(self, batch: "Batch") -> FeatureVector:
        """Read the feature vector through the group (no state change)."""
        group = self._group
        cache = group.cache
        if (cache is not None and cache[0] is batch
                and cache[1] == group.write_round
                and cache[2] == group.heal_round):
            group.shared_reads += 1
            return FeatureVector(cache[3])
        n_packets = float(len(batch))
        values = np.zeros(NUM_FEATURES, dtype=np.float64)
        values[0] = n_packets
        values[1] = float(batch.byte_count)
        idx = 2
        for agg_index, (_, columns) in enumerate(TRAFFIC_AGGREGATES):
            batch_counter, unique = self._batch_counter(batch, columns)
            new = max(0.0,
                      group.counters[agg_index].new_estimate(batch_counter))
            values[idx] = unique
            values[idx + 1] = new
            values[idx + 2] = max(0.0, n_packets - unique)
            values[idx + 3] = max(0.0, n_packets - new)
            idx += 4
        group.cache = (batch, group.write_round, group.heal_round, values)
        group.computed_reads += 1
        return FeatureVector(values)

    def _maybe_roll_interval(self, batch_start: float) -> None:
        if self._interval_start is None:
            self._interval_start = batch_start
            return
        if batch_start - self._interval_start >= self.measurement_interval:
            for counter in self._interval_counters:
                counter.reset()
            # Align the new interval start on a multiple of the interval so
            # long gaps roll forward correctly.
            elapsed = batch_start - self._interval_start
            steps = int(elapsed // self.measurement_interval)
            self._interval_start += steps * self.measurement_interval

    # ------------------------------------------------------------------
    def extract(self, batch: "Batch", update_state: bool = True) -> FeatureVector:
        """Extract the feature vector of ``batch``.

        With ``update_state=False`` the per-interval counters are left
        untouched; Algorithm 1 uses this for the pre-sampling extraction and
        then re-extracts (with ``update_state=True``) on the sampled batch so
        the regression history matches what the query actually processed.
        """
        if self._group is not None:
            group = self._group
            group.roll(batch.start_ts)
            state = self._sync_state(batch.start_ts)
            if len(batch) == 0:
                # An empty batch changes no counter state on either path,
                # so an in-sync member can stay attached.
                if state == _SYNC:
                    self._participated = True
                    self._synced = group.write_round
                    self._pending_batch = None
                    self._pending_counters = None
                    return self._empty_vector(batch)
                self._detach(state)
            elif not update_state and state == _SYNC:
                self._participated = True
                self._synced = group.write_round
                self._pending_batch = None
                self._pending_counters = None
                return self._read_shared(batch)
            else:
                # A state-updating extract on a non-group batch (sampled
                # path) — or any out-of-sync access — forks private state.
                self._detach(state)
        self._maybe_roll_interval(batch.start_ts)
        n_packets = float(len(batch))
        values = np.zeros(NUM_FEATURES, dtype=np.float64)
        values[0] = n_packets
        values[1] = float(batch.byte_count)
        idx = 2
        pending: List[DistinctCounter] = []
        for agg_index, (agg_name, columns) in enumerate(TRAFFIC_AGGREGATES):
            interval_counter = self._interval_counters[agg_index]
            if len(batch) == 0:
                unique = 0.0
                new = 0.0
                pending.append(self._new_counter())
            else:
                batch_counter, unique = self._batch_counter(batch, columns)
                pending.append(batch_counter)
                new = max(0.0, interval_counter.new_estimate(batch_counter))
                if update_state:
                    interval_counter.merge(batch_counter)
            values[idx] = unique
            values[idx + 1] = new
            values[idx + 2] = max(0.0, n_packets - unique)
            values[idx + 3] = max(0.0, n_packets - new)
            idx += 4
        if update_state:
            self._pending_batch = None
            self._pending_counters = None
        else:
            self._pending_batch = batch
            self._pending_counters = pending
        return FeatureVector(values)

    def commit(self, batch: "Batch") -> None:
        """Fold ``batch`` into the interval state without recomputing features.

        Used by the monitoring system when a batch was *not* sampled: the
        features obtained from the earlier ``extract(..., update_state=False)``
        call are reused for the regression history and only the interval
        counters need updating.  Falls back to a full recomputation when the
        batch differs from the one last extracted.

        On a shared group the first committer of a bin merges the batch for
        everyone (one round); the other members' commits of the same batch
        object are dedup no-ops — this is where N-queries-one-merge comes
        from.
        """
        if self._group is not None:
            group = self._group
            group.roll(batch.start_ts)
            if len(batch) == 0:
                return
            if group.round_batch is batch and self._participated:
                effective = max(self._synced, group.heal_round)
                if effective >= group.write_round - 1:
                    # This batch is exactly the current round's merge:
                    # someone already folded it in on our behalf.
                    self._synced = group.write_round
                    group.deduped_merges += 1
                    self._pending_batch = None
                    self._pending_counters = None
                    return
            state = self._sync_state(batch.start_ts)
            if state == _SYNC:
                group.begin_round(batch)
                for agg_index, (_, columns) in enumerate(TRAFFIC_AGGREGATES):
                    batch_counter, _ = self._batch_counter(batch, columns)
                    group.counters[agg_index].merge(batch_counter)
                self._participated = True
                self._synced = group.write_round
                self._pending_batch = None
                self._pending_counters = None
                return
            self._detach(state)
        self._maybe_roll_interval(batch.start_ts)
        if len(batch) == 0:
            return
        if (self._pending_batch is batch
                and self._pending_counters is not None):
            for counter, pending in zip(self._interval_counters,
                                        self._pending_counters):
                counter.merge(pending)
        else:
            for agg_index, (_, columns) in enumerate(TRAFFIC_AGGREGATES):
                batch_counter, _ = self._batch_counter(batch, columns)
                self._interval_counters[agg_index].merge(batch_counter)
        self._pending_batch = None
        self._pending_counters = None

    def extraction_cost(self, batch: "Batch") -> float:
        """Simulated cycle cost of extracting features from ``batch``.

        The paper reports feature extraction as the dominant prediction
        overhead (~9% of total cycles, Table 3.4); the linear-in-packets model
        here reproduces that property under the default cost weights.
        """
        return self.cycles_fixed + self.cycles_per_packet * len(batch)


@lru_cache(maxsize=None)
def _name_indices(names: Tuple[str, ...]) -> np.ndarray:
    """Precomputed fancy-index array for a tuple of canonical feature names."""
    return np.array([_FEATURE_INDEX[name] for name in names], dtype=np.intp)


def select_values(vector: FeatureVector, names: Sequence[str]) -> np.ndarray:
    """Return the values of the named features as an array.

    Resolves the names once into a cached fancy-index array (the name
    universe is the fixed canonical feature set), so repeated selection is
    a single vectorised gather instead of a per-name Python loop.
    """
    return vector.values[_name_indices(tuple(names))]
