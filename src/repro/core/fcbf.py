"""Feature selection with a Fast Correlation-Based Filter variant.

Section 3.2.3: before fitting the multiple linear regression, the system
selects the subset of traffic features that is relevant and non-redundant for
predicting a query's CPU usage.  The paper uses a variant of FCBF (Yu & Liu)
with the absolute linear correlation coefficient as the goodness measure
instead of symmetrical uncertainty:

1. *Relevance*: keep the predictors whose ``|corr(X_i, Y)|`` is at least the
   FCBF threshold.
2. *Redundancy removal*: walk the surviving predictors in decreasing order of
   relevance; a predictor is dropped if its correlation with an
   already-accepted predictor exceeds its own correlation with the response.

The default threshold (0.6) is the trade-off point identified in
Section 3.3.1.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def linear_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson linear correlation coefficient, with degenerate-input care.

    Constant series have zero variance; their correlation with anything is
    defined here as 0 so that constant features are never selected.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) != len(y):
        raise ValueError("series must have the same length")
    if len(x) < 2:
        return 0.0
    xd = x - x.mean()
    yd = y - y.mean()
    denom = np.sqrt((xd * xd).sum() * (yd * yd).sum())
    if denom <= 0.0:
        return 0.0
    return float(np.clip((xd * yd).sum() / denom, -1.0, 1.0))


def fcbf_select(
    features: np.ndarray,
    response: np.ndarray,
    threshold: float = 0.6,
    feature_names: Sequence[str] = None,
) -> List[int]:
    """Select relevant, non-redundant predictor columns.

    Parameters
    ----------
    features:
        ``(n, p)`` matrix of feature observations.
    response:
        Length-``n`` response vector (measured CPU cycles).
    threshold:
        FCBF relevance threshold in ``[0, 1)``.
    feature_names:
        Unused except for validation of dimensions; kept so call sites read
        naturally.

    Returns
    -------
    list of int
        Indices of the selected feature columns, ordered by decreasing
        relevance.  If no feature passes the threshold the single most
        correlated feature is returned, so the regression always has at
        least one predictor.
    """
    features = np.asarray(features, dtype=np.float64)
    response = np.asarray(response, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D matrix")
    n, p = features.shape
    if len(response) != n:
        raise ValueError("response length must match number of observations")
    if not 0.0 <= threshold < 1.0:
        raise ValueError("threshold must be in [0, 1)")
    if feature_names is not None and len(feature_names) != p:
        raise ValueError("feature_names length must match feature columns")

    # FCBF runs on every prediction of every query (Section 3.2.3), so the
    # per-pair work must be minimal.  The centered columns and their sums of
    # squares are hoisted out of the correlation loops; each individual
    # operation keeps the exact order of :func:`linear_correlation`, so the
    # selection is bit-identical to computing every correlation from scratch.
    if n < 2:
        return [0]
    # One centered, contiguous row per feature; the axis-1 reductions below
    # visit elements in the same order as the per-column scalar ops, so
    # every correlation is bit-identical to linear_correlation's result.
    columns = np.ascontiguousarray(features.T)
    centered = columns - columns.mean(axis=1)[:, None]
    ssq = (centered * centered).sum(axis=1)
    yd = response - response.mean()
    y_ssq = (yd * yd).sum()

    def _correlations(vector: np.ndarray, vector_ssq: float) -> np.ndarray:
        """|corr(vector, feature_j)| for every feature at once."""
        with np.errstate(invalid="ignore", divide="ignore"):
            denom = np.sqrt(ssq * vector_ssq)
            corr = np.abs(np.clip((centered * vector).sum(axis=1) / denom,
                                  -1.0, 1.0))
        return np.where(denom > 0.0, corr, 0.0)

    relevance = _correlations(yd, y_ssq)

    # Phase 1: relevance filtering.
    candidates = [j for j in range(p) if relevance[j] >= threshold]
    if not candidates:
        # Fall back to the single best predictor so MLR can still run.
        return [int(np.argmax(relevance))]

    # Phase 2: redundancy removal, scanning by decreasing relevance.
    candidates.sort(key=lambda j: relevance[j], reverse=True)
    selected: List[int] = []
    remaining = list(candidates)
    while remaining:
        best = remaining.pop(0)
        selected.append(best)
        if not remaining:
            break
        cross = _correlations(centered[best], ssq[best])
        remaining = [j for j in remaining if cross[j] < relevance[j]]
    return selected


def selection_cost(n_observations: int, n_features: int,
                   cycles_per_correlation: float = 1.0) -> float:
    """Simulated cycle cost of running FCBF.

    The FCBF complexity is ``O(n p log p)``; the constant is tuned so that,
    relative to the query costs of the standard set, the selection overhead
    lands around the ~1.7% share reported in Table 3.4.
    """
    p = max(n_features, 1)
    return cycles_per_correlation * n_observations * p * (1.0 + np.log2(p)) / 10.0
