"""Vectorised keyed-aggregation kernels shared by the query plug-ins.

Before this module existed every stateful query hand-rolled its own table:
``flows`` and ``top-k`` kept sorted NumPy arrays, while ``p2p-detector``,
``super-sources`` and ``autofocus`` looped over packets updating Python
dicts and sets — the slowest tier of the whole pipeline once the data path
and the trace store were vectorised.  The kernels here generalise the
sorted-array tables so that *all* keyed queries share one implementation:

:class:`KeyedAccumulator`
    A columnar table: one sorted ``uint64`` key array plus any number of
    parallel ``float64`` value columns.  Per-batch updates are pure array
    operations (``np.unique`` / ``np.searchsorted`` / ``np.insert``), and
    :meth:`KeyedAccumulator.observe` reports how many keys were new so the
    caller can charge the exact hash-insert/update cost model the paper's
    queries use.
:class:`DistinctFanout`
    A mergeable distinct-(key, item) table reporting the number of distinct
    items per key (the super-spreader fan-out).  It is the exact,
    vectorised sibling of :class:`repro.core.distinct.ExactDistinctCounter`
    — pairs are deduplicated in a sorted ``uint64`` pair-key array — and it
    can optionally carry a bounded-memory
    :class:`~repro.core.distinct.DistinctCounter` (via
    :func:`repro.core.distinct.make_counter`) tracking the global distinct
    pair cardinality.
:func:`payload_hits`
    Batched signature search over packet payloads: the payload list is
    joined with a separator byte that cannot occur inside any pattern, so
    one C-level ``bytes.find`` sweep replaces the per-packet Python loop of
    the payload-inspection queries.

All kernels expose an explicit ``merge`` with union-of-keys semantics, so
shard folding falls out of the state type: two accumulators built from
flow-disjoint sub-streams merge into exactly the accumulator a single
instance over the whole stream would hold.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .distinct import DistinctCounter


def aggregate_batch(keys: np.ndarray, weights: Optional[np.ndarray] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate per-packet values by key within one batch.

    Returns ``(unique_keys, sums)`` where ``unique_keys`` is sorted and
    ``sums[i]`` is the total weight (or the occurrence count when
    ``weights`` is None) of ``unique_keys[i]``.
    """
    if weights is None:
        unique, counts = np.unique(keys, return_counts=True)
        return unique, counts.astype(np.float64)
    unique, inverse = np.unique(keys, return_inverse=True)
    return unique, np.bincount(inverse, weights=weights,
                               minlength=len(unique))


class KeyedAccumulator:
    """Sorted-``uint64`` key table with parallel ``float64`` value columns.

    Parameters
    ----------
    columns:
        Names of the value columns.  An accumulator with no columns is a
        plain key set (the flow-table shape).
    """

    __slots__ = ("column_names", "_keys", "_columns")

    def __init__(self, columns: Sequence[str] = ()) -> None:
        self.column_names: Tuple[str, ...] = tuple(columns)
        self._keys = np.empty(0, dtype=np.uint64)
        self._columns: Dict[str, np.ndarray] = {
            name: np.empty(0, dtype=np.float64) for name in self.column_names}

    # ------------------------------------------------------------------
    @property
    def keys(self) -> np.ndarray:
        """The sorted key array (read-only view semantics by convention)."""
        return self._keys

    def column(self, name: str) -> np.ndarray:
        """The value column aligned with :attr:`keys`."""
        return self._columns[name]

    def __len__(self) -> int:
        return int(self._keys.size)

    # ------------------------------------------------------------------
    def observe(self, unique_keys: np.ndarray, **values: np.ndarray) -> int:
        """Fold one batch's per-key aggregates into the table.

        ``unique_keys`` must be sorted and duplicate-free (the shape
        :func:`aggregate_batch` and ``np.unique`` produce); each keyword is a
        value column aligned with it.  Existing keys accumulate in place,
        new keys are inserted in sorted position.  Returns the number of
        *new* keys, which is exactly the hash-insert count of the paper's
        cost model (the rest being in-place updates).
        """
        unique_keys = np.asarray(unique_keys, dtype=np.uint64)
        if unique_keys.size == 0:
            return 0
        positions = np.searchsorted(self._keys, unique_keys)
        known = np.zeros(len(unique_keys), dtype=bool)
        in_range = positions < self._keys.size
        known[in_range] = (self._keys[positions[in_range]] ==
                           unique_keys[in_range])
        new = ~known
        n_new = int(new.sum())
        for name in self.column_names:
            column_values = np.asarray(values[name], dtype=np.float64)
            self._columns[name][positions[known]] += column_values[known]
            if n_new:
                self._columns[name] = np.insert(
                    self._columns[name], positions[new], column_values[new])
        if n_new:
            self._keys = np.insert(self._keys, positions[new],
                                   unique_keys[new])
        return n_new

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership mask for an arbitrary key array."""
        keys = np.asarray(keys, dtype=np.uint64)
        positions = np.searchsorted(self._keys, keys)
        mask = np.zeros(len(keys), dtype=bool)
        in_range = positions < self._keys.size
        mask[in_range] = self._keys[positions[in_range]] == keys[in_range]
        return mask

    def lookup(self, keys: np.ndarray, column: str,
               default: float = 0.0) -> np.ndarray:
        """Per-key values of ``column`` (``default`` for unknown keys)."""
        keys = np.asarray(keys, dtype=np.uint64)
        positions = np.searchsorted(self._keys, keys)
        values = np.full(len(keys), float(default), dtype=np.float64)
        in_range = positions < self._keys.size
        hit = np.zeros(len(keys), dtype=bool)
        hit[in_range] = self._keys[positions[in_range]] == keys[in_range]
        values[hit] = self._columns[column][positions[hit]]
        return values

    # ------------------------------------------------------------------
    def items(self, column: str) -> Iterator[Tuple[int, float]]:
        """Iterate ``(key, value)`` pairs in sorted key order."""
        values = self._columns[column]
        for index in range(self._keys.size):
            yield int(self._keys[index]), float(values[index])

    def as_dict(self, column: str) -> Dict[int, float]:
        """``{key: value}`` of one column, keys in sorted order."""
        return dict(self.items(column))

    def top(self, n: int, column: str) -> List[Tuple[int, float]]:
        """Top ``n`` entries by ``column`` descending, ties to smaller key."""
        values = self._columns[column]
        order = np.lexsort((self._keys, -values))[:n]
        return [(int(self._keys[i]), float(values[i])) for i in order]

    # ------------------------------------------------------------------
    def merge(self, other: "KeyedAccumulator") -> None:
        """In-place union: keys union, value columns sum per key.

        Built from flow-disjoint sub-streams, the merged accumulator equals
        the one a single instance over the whole stream would hold — the
        property that makes sharded query state foldable by construction.
        """
        if other.column_names != self.column_names:
            raise ValueError("cannot merge accumulators with different "
                             f"columns ({self.column_names} vs "
                             f"{other.column_names})")
        self.observe(other._keys, **other._columns)

    def copy(self) -> "KeyedAccumulator":
        clone = KeyedAccumulator(self.column_names)
        clone._keys = self._keys.copy()
        clone._columns = {name: values.copy()
                          for name, values in self._columns.items()}
        return clone

    def reset(self) -> None:
        self._keys = np.empty(0, dtype=np.uint64)
        for name in self.column_names:
            self._columns[name] = np.empty(0, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"KeyedAccumulator(keys={len(self)}, "
                f"columns={list(self.column_names)})")


class DistinctFanout:
    """Distinct ``(key, item)`` pairs with per-key fan-out counts.

    The super-spreader state shape: for every key (e.g. a source address)
    count the number of *distinct* items (e.g. destination addresses) seen
    with it.  Pairs are stored once in a sorted ``uint64`` pair-key array
    with the owning key alongside, so per-batch deduplication and the
    per-key counts are pure array operations, and :meth:`merge` unions the
    pair tables — the merged fan-out of flow-disjoint sub-streams is exact,
    unlike folding pre-aggregated counts.

    The caller provides an injective pair key (:meth:`pair_u32` covers the
    common 32-bit address pair).  Optionally a bounded-memory
    :class:`~repro.core.distinct.DistinctCounter` (``total_counter``, built
    with :func:`repro.core.distinct.make_counter`) tracks the global
    distinct-pair cardinality alongside the exact table, for callers that
    report it at bitmap precision.
    """

    __slots__ = ("_pairs", "_owners", "total_counter")

    def __init__(self, total_counter: Optional[DistinctCounter] = None
                 ) -> None:
        self._pairs = np.empty(0, dtype=np.uint64)
        self._owners = np.empty(0, dtype=np.uint64)
        self.total_counter = total_counter

    @staticmethod
    def pair_u32(keys: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Injective ``uint64`` pair key for two 32-bit-ranged columns."""
        return ((np.asarray(keys, dtype=np.uint64) << np.uint64(32)) |
                (np.asarray(items, dtype=np.uint64) & np.uint64(0xFFFFFFFF)))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of distinct pairs recorded so far."""
        return int(self._pairs.size)

    def observe(self, pair_keys: np.ndarray, owner_keys: np.ndarray) -> int:
        """Record one batch of per-packet pairs; returns the new-pair count."""
        pair_keys = np.asarray(pair_keys, dtype=np.uint64)
        owner_keys = np.asarray(owner_keys, dtype=np.uint64)
        if pair_keys.size == 0:
            return 0
        unique_pairs, first = np.unique(pair_keys, return_index=True)
        unique_owners = owner_keys[first]
        positions = np.searchsorted(self._pairs, unique_pairs)
        known = np.zeros(len(unique_pairs), dtype=bool)
        in_range = positions < self._pairs.size
        known[in_range] = (self._pairs[positions[in_range]] ==
                           unique_pairs[in_range])
        new = ~known
        n_new = int(new.sum())
        if n_new:
            self._pairs = np.insert(self._pairs, positions[new],
                                    unique_pairs[new])
            self._owners = np.insert(self._owners, positions[new],
                                     unique_owners[new])
        if self.total_counter is not None:
            self.total_counter.add_hashes(unique_pairs)
        return n_new

    def fanout(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(keys, counts)``: distinct-item count per key, keys sorted."""
        if self._owners.size == 0:
            return (np.empty(0, dtype=np.uint64),
                    np.empty(0, dtype=np.int64))
        keys, counts = np.unique(self._owners, return_counts=True)
        return keys, counts

    @property
    def num_keys(self) -> int:
        return int(np.unique(self._owners).size)

    def total_estimate(self) -> float:
        """Distinct pair count (bitmap estimate when a counter is carried)."""
        if self.total_counter is not None:
            return float(self.total_counter.estimate())
        return float(len(self))

    # ------------------------------------------------------------------
    def merge(self, other: "DistinctFanout") -> None:
        """In-place union of the pair tables (exact mergeable state)."""
        self.observe(other._pairs, other._owners)
        if self.total_counter is not None and other.total_counter is not None:
            # observe() above re-added other's pairs to our counter already;
            # merging the counters too would be redundant, but a bitmap
            # union is idempotent, so fold it for the collision pattern.
            self.total_counter.merge(other.total_counter)

    def copy(self) -> "DistinctFanout":
        clone = DistinctFanout(
            self.total_counter.copy() if self.total_counter is not None
            else None)
        clone._pairs = self._pairs.copy()
        clone._owners = self._owners.copy()
        return clone

    def reset(self) -> None:
        self._pairs = np.empty(0, dtype=np.uint64)
        self._owners = np.empty(0, dtype=np.uint64)
        if self.total_counter is not None:
            self.total_counter.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DistinctFanout(pairs={len(self)}, keys={self.num_keys})"


# ----------------------------------------------------------------------
# Batched payload scanning
# ----------------------------------------------------------------------
def separator_byte(patterns: Sequence[bytes]) -> Optional[int]:
    """A byte value absent from every pattern (None when all 256 occur)."""
    used = set()
    for pattern in patterns:
        used.update(pattern)
    for value in range(256):
        if value not in used:
            return value
    return None


def payload_lengths(payloads: Sequence[bytes]) -> np.ndarray:
    """Per-payload byte lengths (the ``regex_byte`` charge quantity)."""
    return np.fromiter(map(len, payloads), dtype=np.int64,
                       count=len(payloads))


def join_payloads(payloads: Sequence[bytes], separator: int,
                  lengths: Optional[np.ndarray] = None
                  ) -> Tuple[bytes, np.ndarray]:
    """Join payloads with a separator byte; returns ``(haystack, starts)``.

    ``starts[i]`` is the offset of payload ``i`` inside the haystack.  A
    pattern free of the separator byte can never match across a payload
    boundary, which is what makes one C-level search over the joined
    buffer equivalent to a per-payload scan.
    """
    if lengths is None:
        lengths = payload_lengths(payloads)
    haystack = bytes([separator]).join(payloads)
    starts = np.zeros(len(payloads), dtype=np.int64)
    if len(payloads) > 1:
        np.cumsum(lengths[:-1] + 1, out=starts[1:])
    return haystack, starts


def payload_hits(payloads: Sequence[bytes], patterns: Sequence[bytes],
                 lengths: Optional[np.ndarray] = None,
                 joined: Optional[Tuple[bytes, np.ndarray]] = None
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Which payloads contain at least one of the byte patterns.

    Returns ``(hit, lengths)``: a boolean array marking the payloads where
    any pattern occurs, and the payload lengths (the quantity the queries
    charge ``regex_byte`` cycles for).

    The payloads are joined with a separator byte that occurs in no
    pattern (see :func:`join_payloads`), so a single C-level
    ``bytes.find`` sweep per pattern replaces a per-payload Python loop.
    ``lengths`` and ``joined`` accept precomputed values — batches memoise
    both, so repeated scans of one batch (several payload queries, the
    calibration/reference/evaluated passes of one experiment) share the
    representation work.  In the degenerate case where the patterns
    jointly use all 256 byte values the implementation falls back to the
    per-payload loop.
    """
    n = len(payloads)
    if lengths is None:
        lengths = payload_lengths(payloads)
    hit = np.zeros(n, dtype=bool)
    if n == 0 or not patterns:
        return hit, lengths
    separator = separator_byte(patterns)
    if separator is None:  # pragma: no cover - needs >=256-byte alphabets
        for index, payload in enumerate(payloads):
            hit[index] = any(payload.find(pattern) >= 0
                             for pattern in patterns)
        return hit, lengths
    if joined is None:
        joined = join_payloads(payloads, separator, lengths)
    haystack, starts = joined
    for pattern in patterns:
        # Collect every (non-overlapping) occurrence first, then map all of
        # them onto payload indices in one vectorised searchsorted.
        positions = []
        step = max(1, len(pattern))
        position = haystack.find(pattern)
        while position != -1:
            positions.append(position)
            position = haystack.find(pattern, position + step)
        if positions:
            index = np.searchsorted(starts,
                                    np.asarray(positions, dtype=np.int64),
                                    side="right") - 1
            hit[index] = True
    return hit, lengths


__all__ = [
    "DistinctFanout",
    "KeyedAccumulator",
    "aggregate_batch",
    "join_payloads",
    "payload_hits",
    "payload_lengths",
    "separator_byte",
]
