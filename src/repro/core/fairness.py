"""Load shedding strategies: where to shed and how much per query (Chapter 5).

Given the predicted cycle demand of each query, its minimum sampling rate
constraint ``m_q`` and the cycle capacity of the current time bin, a strategy
returns the sampling rate to apply to each query.  Three strategies from the
paper are implemented:

* ``eq_srates``  — the Chapter 4 baseline: one common sampling rate for all
  queries; queries whose minimum constraint cannot be met are disabled for
  the bin and the rate is recomputed for the survivors.
* ``mmfs_cpu``   — max-min fair share of the CPU cycles, with per-query
  floors ``m_q * d_q`` and ceilings ``d_q``.
* ``mmfs_pkt``   — max-min fair share of *packet access*: the sampling rates
  themselves are equalised (floors ``m_q``, ceiling 1), weighting each query
  by its cycle demand when charging the capacity.

When even the minimum demands do not fit, all strategies disable the queries
with the largest minimum demand first (Section 5.2.1), which is the rule that
gives the game its Nash equilibrium at ``C / |Q|``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np


@dataclass
class QueryDemand:
    """Per-query inputs to the allocation strategies."""

    name: str
    predicted_cycles: float
    min_sampling_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.predicted_cycles < 0:
            raise ValueError("predicted_cycles must be non-negative")
        if not 0.0 <= self.min_sampling_rate <= 1.0:
            raise ValueError("min_sampling_rate must be in [0, 1]")

    @property
    def min_cycles(self) -> float:
        """Minimum cycle demand ``m_q * d_q``."""
        return self.min_sampling_rate * self.predicted_cycles


@dataclass
class Allocation:
    """Result of an allocation strategy for one time bin."""

    rates: Dict[str, float] = field(default_factory=dict)
    cycles: Dict[str, float] = field(default_factory=dict)
    disabled: List[str] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return float(sum(self.cycles.values()))

    def rate(self, name: str) -> float:
        return self.rates.get(name, 0.0)


#: Signature of an allocation strategy.
Strategy = Callable[[Sequence[QueryDemand], float], Allocation]


def _disable_largest_min_demands(demands: Sequence[QueryDemand],
                                 capacity: float) -> List[QueryDemand]:
    """Disable queries (largest ``m_q * d_q`` first) until the minimums fit."""
    active = sorted(demands, key=lambda d: (d.min_cycles, d.name))
    while active and sum(d.min_cycles for d in active) > capacity:
        active.pop()  # the query with the largest minimum demand
    return active


def _water_fill(floors: np.ndarray, ceilings: np.ndarray, weights: np.ndarray,
                capacity: float, tolerance: float = 1e-9) -> np.ndarray:
    """Max-min fair allocation with floors and ceilings.

    Finds the water level ``L`` such that ``x_i = clip(L, floor_i, ceil_i)``
    and ``sum(weights_i * x_i) == capacity`` (or every ``x_i`` is at its
    ceiling when capacity is abundant).  This is the unique max-min fair
    vector subject to the box constraints, the same solution produced by the
    progressive-filling algorithm of Section 5.2.3.
    """
    floors = np.asarray(floors, dtype=np.float64)
    ceilings = np.asarray(ceilings, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(ceilings < floors - tolerance):
        raise ValueError("every ceiling must be at least its floor")
    min_total = float((weights * floors).sum())
    max_total = float((weights * ceilings).sum())
    if capacity >= max_total:
        return ceilings.copy()
    if capacity <= min_total:
        return floors.copy()
    lo, hi = float(floors.min()), float(ceilings.max())
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        used = float((weights * np.clip(mid, floors, ceilings)).sum())
        if used > capacity:
            hi = mid
        else:
            lo = mid
        if hi - lo < tolerance * max(1.0, hi):
            break
    return np.clip(lo, floors, ceilings)


def eq_srates(demands: Sequence[QueryDemand], capacity: float) -> Allocation:
    """Single common sampling rate for every query (Chapter 4 strategy).

    The rate is ``capacity / total_demand`` clamped to ``[0, 1]``.  Queries
    whose minimum sampling rate exceeds the common rate are disabled for the
    bin and the rate is recomputed for the remaining ones, as in the
    ``eq_srates`` system of Section 5.5.3.
    """
    allocation = Allocation()
    active = list(demands)
    if capacity <= 0.0:
        allocation.disabled = [d.name for d in demands]
        allocation.rates = {d.name: 0.0 for d in demands}
        allocation.cycles = {d.name: 0.0 for d in demands}
        return allocation
    while True:
        total = sum(d.predicted_cycles for d in active)
        rate = 1.0 if total <= 0 else min(1.0, capacity / total)
        # Disable the most constrained query that cannot live with the rate.
        violators = [d for d in active if d.min_sampling_rate > rate + 1e-12]
        if not violators:
            break
        worst = max(violators, key=lambda d: (d.min_cycles, d.name))
        active.remove(worst)
        if not active:
            rate = 0.0
            break
    active_names = {d.name for d in active}
    for demand in demands:
        if demand.name in active_names:
            allocation.rates[demand.name] = rate
            allocation.cycles[demand.name] = rate * demand.predicted_cycles
        else:
            allocation.rates[demand.name] = 0.0
            allocation.cycles[demand.name] = 0.0
            allocation.disabled.append(demand.name)
    return allocation


def mmfs_cpu(demands: Sequence[QueryDemand], capacity: float) -> Allocation:
    """Max-min fair share in terms of CPU cycles (Section 5.2.1)."""
    return _mmfs(demands, capacity, packet_fair=False)


def mmfs_pkt(demands: Sequence[QueryDemand], capacity: float) -> Allocation:
    """Max-min fair share in terms of packet access (Section 5.2.2)."""
    return _mmfs(demands, capacity, packet_fair=True)


def _mmfs(demands: Sequence[QueryDemand], capacity: float,
          packet_fair: bool) -> Allocation:
    allocation = Allocation()
    if capacity <= 0.0:
        allocation.disabled = [d.name for d in demands]
        allocation.rates = {d.name: 0.0 for d in demands}
        allocation.cycles = {d.name: 0.0 for d in demands}
        return allocation
    active = _disable_largest_min_demands(demands, capacity)
    active_names = {d.name for d in active}
    rates: Dict[str, float] = {}
    if active:
        pred = np.array([d.predicted_cycles for d in active])
        mins = np.array([d.min_sampling_rate for d in active])
        if packet_fair:
            # Equalise sampling rates; a query's rate consumes cycles in
            # proportion to its predicted demand.
            levels = _water_fill(floors=mins, ceilings=np.ones(len(active)),
                                 weights=pred, capacity=capacity)
            for demand, rate in zip(active, levels):
                rates[demand.name] = float(rate)
        else:
            # Equalise allocated cycles between floors m_q*d_q and ceilings d_q.
            floors = mins * pred
            levels = _water_fill(floors=floors, ceilings=pred,
                                 weights=np.ones(len(active)),
                                 capacity=capacity)
            for demand, cycles in zip(active, levels):
                rate = 1.0 if demand.predicted_cycles <= 0 else \
                    min(1.0, cycles / demand.predicted_cycles)
                rates[demand.name] = float(rate)
    for demand in demands:
        if demand.name in active_names:
            rate = rates[demand.name]
            allocation.rates[demand.name] = rate
            allocation.cycles[demand.name] = rate * demand.predicted_cycles
        else:
            allocation.rates[demand.name] = 0.0
            allocation.cycles[demand.name] = 0.0
            allocation.disabled.append(demand.name)
    return allocation


#: Registry of the named strategies used throughout experiments.
STRATEGIES: Dict[str, Strategy] = {
    "eq_srates": eq_srates,
    "mmfs_cpu": mmfs_cpu,
    "mmfs_pkt": mmfs_pkt,
}


def get_strategy(name_or_fn) -> Strategy:
    """Resolve a strategy by name or pass a callable through unchanged."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return STRATEGIES[name_or_fn]
    except KeyError:
        raise KeyError(f"unknown strategy {name_or_fn!r}; "
                       f"available: {sorted(STRATEGIES)}") from None
