"""Load shedding strategies: where to shed and how much per query (Chapter 5).

Given the predicted cycle demand of each query, its minimum sampling rate
constraint ``m_q`` and the cycle capacity of the current time bin, a strategy
returns the sampling rate to apply to each query.  Three strategies from the
paper are implemented:

* ``eq_srates``  — the Chapter 4 baseline: one common sampling rate for all
  queries; queries whose minimum constraint cannot be met are disabled for
  the bin and the rate is recomputed for the survivors.
* ``mmfs_cpu``   — max-min fair share of the CPU cycles, with per-query
  floors ``m_q * d_q`` and ceilings ``d_q``.
* ``mmfs_pkt``   — max-min fair share of *packet access*: the sampling rates
  themselves are equalised (floors ``m_q``, ceiling 1), weighting each query
  by its cycle demand when charging the capacity.

When even the minimum demands do not fit, all strategies disable the queries
with the largest minimum demand first (Section 5.2.1), which is the rule that
gives the game its Nash equilibrium at ``C / |Q|``.

**Columnar hot path.**  Each strategy exists in two layers: an array kernel
(:data:`ARRAY_STRATEGIES`) operating on aligned ``names`` / ``predicted`` /
``min_rate`` float64 arrays, and the classic :class:`QueryDemand`-sequence
wrapper (:data:`STRATEGIES`) that converts once and calls the kernel.  Both
produce bit-identical results by construction — the wrapper *is* the kernel
— and the kernels themselves are bit-identical to the pre-vectorisation
implementations, which are kept verbatim in :data:`SCALAR_REFERENCE` as the
executable specification (and as the benchmark baseline).  The per-system
:class:`QuerySlotTable` holds the per-query columns between bins so the
per-bin work is array gathers, not object construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np


@dataclass
class QueryDemand:
    """Per-query inputs to the allocation strategies."""

    name: str
    predicted_cycles: float
    min_sampling_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.predicted_cycles < 0:
            raise ValueError("predicted_cycles must be non-negative")
        if not 0.0 <= self.min_sampling_rate <= 1.0:
            raise ValueError("min_sampling_rate must be in [0, 1]")

    @property
    def min_cycles(self) -> float:
        """Minimum cycle demand ``m_q * d_q``."""
        return self.min_sampling_rate * self.predicted_cycles


class Allocation:
    """Result of an allocation strategy for one time bin.

    Array-backed with lazy dict views: the kernels hand over the per-query
    ``names`` (input order) plus aligned rate/cycle arrays and a disabled
    mask; the classic ``rates`` / ``cycles`` dicts and ``disabled`` list are
    materialised on first access, in input order — so code that reads the
    dict surface sees exactly what the historical dict-building loops
    produced, while the hot path can keep everything columnar.

    The historical constructor (``Allocation(rates={...}, cycles={...},
    disabled=[...])``) still works for custom strategies.
    """

    __slots__ = ("_names", "_rates_arr", "_cycles_arr", "_disabled_mask",
                 "_rates", "_cycles", "_disabled", "tenant_shares")

    def __init__(self, rates: Optional[Dict[str, float]] = None,
                 cycles: Optional[Dict[str, float]] = None,
                 disabled: Optional[List[str]] = None) -> None:
        self._names: Optional[Sequence[str]] = None
        self._rates_arr: Optional[np.ndarray] = None
        self._cycles_arr: Optional[np.ndarray] = None
        self._disabled_mask: Optional[np.ndarray] = None
        self._rates: Optional[Dict[str, float]] = \
            dict(rates) if rates is not None else {}
        self._cycles: Optional[Dict[str, float]] = \
            dict(cycles) if cycles is not None else {}
        self._disabled: Optional[List[str]] = \
            list(disabled) if disabled is not None else []
        #: Per-tenant cycle shares granted by a two-tier allocation
        #: (``None`` for flat allocations); see :mod:`repro.core.tenancy`.
        self.tenant_shares: Optional[Dict[str, float]] = None

    @classmethod
    def from_arrays(cls, names: Sequence[str], rates: np.ndarray,
                    cycles: np.ndarray, disabled_mask: np.ndarray
                    ) -> "Allocation":
        """Array-backed construction used by the columnar kernels."""
        allocation = cls.__new__(cls)
        allocation._names = names
        allocation._rates_arr = rates
        allocation._cycles_arr = cycles
        allocation._disabled_mask = disabled_mask
        allocation._rates = None
        allocation._cycles = None
        allocation._disabled = None
        allocation.tenant_shares = None
        return allocation

    # -- lazy dict views ----------------------------------------------------
    @property
    def rates(self) -> Dict[str, float]:
        if self._rates is None:
            self._rates = {name: float(rate) for name, rate
                           in zip(self._names, self._rates_arr)}
        return self._rates

    @rates.setter
    def rates(self, value: Dict[str, float]) -> None:
        self._rates = dict(value)

    @property
    def cycles(self) -> Dict[str, float]:
        if self._cycles is None:
            self._cycles = {name: float(cycles) for name, cycles
                            in zip(self._names, self._cycles_arr)}
        return self._cycles

    @cycles.setter
    def cycles(self, value: Dict[str, float]) -> None:
        self._cycles = dict(value)

    @property
    def disabled(self) -> List[str]:
        if self._disabled is None:
            self._disabled = [name for name, off
                              in zip(self._names, self._disabled_mask) if off]
        return self._disabled

    @disabled.setter
    def disabled(self, value: List[str]) -> None:
        self._disabled = list(value)

    # -- array views (hot path; None when dict-constructed) -----------------
    @property
    def rate_array(self) -> Optional[np.ndarray]:
        return self._rates_arr

    @property
    def cycle_array(self) -> Optional[np.ndarray]:
        return self._cycles_arr

    # -- classic surface ----------------------------------------------------
    @property
    def total_cycles(self) -> float:
        return float(sum(self.cycles.values()))

    def rate(self, name: str) -> float:
        return self.rates.get(name, 0.0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        return (self.rates == other.rates and self.cycles == other.cycles
                and self.disabled == other.disabled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Allocation(rates={self.rates!r}, cycles={self.cycles!r}, "
                f"disabled={self.disabled!r})")


#: Signature of an allocation strategy.
Strategy = Callable[[Sequence[QueryDemand], float], Allocation]


# ----------------------------------------------------------------------
# Shared numeric helpers
# ----------------------------------------------------------------------
def sequential_sum(values: np.ndarray) -> float:
    """Left-to-right sum, bit-identical to python ``sum`` over the values.

    ``np.sum`` uses pairwise accumulation for eight elements and more, which
    rounds differently from the sequential python sums of the historical
    scalar code.  ``np.cumsum`` accumulates strictly left to right, so its
    last element reproduces ``sum()`` exactly — which is what keeps the
    columnar kernels bit-identical to the scalar reference at any size.
    """
    if len(values) == 0:
        return 0.0
    return float(np.cumsum(values)[-1])


def name_ranks(names: Sequence[str]) -> np.ndarray:
    """Dense lexicographic ranks: ``rank[i]`` = position of ``names[i]``
    among the sorted names.  Precomputable (names change only on query
    add/remove), so the per-bin kernels can tie-break by name without
    sorting strings in the hot path."""
    order = sorted(range(len(names)), key=lambda index: names[index])
    ranks = np.empty(len(names), dtype=np.int64)
    for position, index in enumerate(order):
        ranks[index] = position
    return ranks


def disable_priority_order(values: Sequence[float],
                           names: Optional[Sequence[str]] = None,
                           ranks: Optional[np.ndarray] = None) -> np.ndarray:
    """Ascending ``(value, name)`` index order shared by the allocator and
    the game.

    The system disables the *largest* minimum demands first; this helper is
    the one place that fixes what happens at ties.  With ``names`` (or
    precomputed ``ranks``) equal demands order lexicographically by query
    name — the convention of :func:`_disable_largest_min_demands` — so
    :func:`repro.core.game.active_players` and the allocator agree on which
    of two equal demands straddling the capacity boundary survives.
    Without names the order falls back to stable input order.
    """
    values = np.asarray(values, dtype=np.float64)
    if ranks is None and names is not None:
        ranks = name_ranks(names)
    if ranks is None:
        return np.argsort(values, kind="stable")
    return np.lexsort((np.asarray(ranks), values))


def _validate_columns(predicted: np.ndarray, min_rates: np.ndarray) -> None:
    """The eager validation :class:`QueryDemand` used to perform."""
    if np.any(predicted < 0):
        raise ValueError("predicted_cycles must be non-negative")
    if np.any((min_rates < 0.0) | (min_rates > 1.0)):
        raise ValueError("min_sampling_rate must be in [0, 1]")


def _demand_columns(demands: Sequence[QueryDemand]):
    names = [demand.name for demand in demands]
    predicted = np.array([demand.predicted_cycles for demand in demands],
                         dtype=np.float64)
    min_rates = np.array([demand.min_sampling_rate for demand in demands],
                         dtype=np.float64)
    return names, predicted, min_rates


def _all_disabled(names: Sequence[str], count: int) -> Allocation:
    return Allocation.from_arrays(
        names, np.zeros(count), np.zeros(count), np.ones(count, dtype=bool))


# ----------------------------------------------------------------------
# Disabling rule (Section 5.2.1)
# ----------------------------------------------------------------------
def _disable_largest_min_demands(demands: Sequence[QueryDemand],
                                 capacity: float) -> List[QueryDemand]:
    """Disable queries (largest ``m_q * d_q`` first) until the minimums fit.

    One sort + sequential cumsum + ``searchsorted`` instead of the
    historical loop that re-summed every remaining minimum per pop
    (``O(n log n)`` instead of ``O(n^2)``).  The kept prefix is bit-identical
    to the loop's: popping from the sorted tail means the survivors are
    always a prefix, and ``np.cumsum`` accumulates left-to-right exactly as
    the repeated python sums did, so the largest prefix whose cumulative
    minimum fits is the same set.
    """
    active = sorted(demands, key=lambda d: (d.min_cycles, d.name))
    if not active:
        return active
    cumulative = np.cumsum([demand.min_cycles for demand in active])
    keep = int(np.searchsorted(cumulative, capacity, side="right"))
    return active[:keep]


def _water_fill(floors: np.ndarray, ceilings: np.ndarray, weights: np.ndarray,
                capacity: float, tolerance: float = 1e-9) -> np.ndarray:
    """Max-min fair allocation with floors and ceilings.

    Finds the water level ``L`` such that ``x_i = clip(L, floor_i, ceil_i)``
    and ``sum(weights_i * x_i) == capacity`` (or every ``x_i`` is at its
    ceiling when capacity is abundant).  This is the unique max-min fair
    vector subject to the box constraints, the same solution produced by the
    progressive-filling algorithm of Section 5.2.3.
    """
    floors = np.asarray(floors, dtype=np.float64)
    ceilings = np.asarray(ceilings, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(ceilings < floors - tolerance):
        raise ValueError("every ceiling must be at least its floor")
    min_total = float((weights * floors).sum())
    max_total = float((weights * ceilings).sum())
    if capacity >= max_total:
        return ceilings.copy()
    if capacity <= min_total:
        return floors.copy()
    lo, hi = float(floors.min()), float(ceilings.max())
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        used = float((weights * np.clip(mid, floors, ceilings)).sum())
        if used > capacity:
            hi = mid
        else:
            lo = mid
        if hi - lo < tolerance * max(1.0, hi):
            break
    return np.clip(lo, floors, ceilings)


# ----------------------------------------------------------------------
# Columnar kernels — the actual strategy implementations
# ----------------------------------------------------------------------
def eq_srates_arrays(names: Sequence[str], predicted: np.ndarray,
                     min_rates: np.ndarray, capacity: float,
                     rank: Optional[np.ndarray] = None) -> Allocation:
    """Columnar ``eq_srates``: one common rate over aligned demand columns.

    ``rank`` is the precomputed :func:`name_ranks` tie-break column; omit it
    to have the kernel derive it from ``names``.
    """
    count = len(predicted)
    _validate_columns(predicted, min_rates)
    if capacity <= 0.0:
        return _all_disabled(names, count)
    if rank is None:
        rank = name_ranks(names)
    min_cycles = min_rates * predicted
    mask = np.ones(count, dtype=bool)
    rate = 0.0
    while True:
        total = sequential_sum(predicted[mask])
        rate = 1.0 if total <= 0 else min(1.0, capacity / total)
        violators = mask & (min_rates > rate + 1e-12)
        if not violators.any():
            break
        # Disable the most constrained query that cannot live with the rate
        # (largest (min_cycles, name), the Section 5.2.1 tie-break).
        indices = np.flatnonzero(violators)
        worst = indices[np.lexsort((rank[indices], min_cycles[indices]))[-1]]
        mask[worst] = False
        if not mask.any():
            rate = 0.0
            break
    rates = np.where(mask, rate, 0.0)
    return Allocation.from_arrays(names, rates, rates * predicted, ~mask)


def _mmfs_arrays(names: Sequence[str], predicted: np.ndarray,
                 min_rates: np.ndarray, capacity: float, packet_fair: bool,
                 rank: Optional[np.ndarray] = None) -> Allocation:
    count = len(predicted)
    _validate_columns(predicted, min_rates)
    if capacity <= 0.0:
        return _all_disabled(names, count)
    if rank is None:
        rank = name_ranks(names)
    min_cycles = min_rates * predicted
    # Disable the largest minimum demands first until the minimums fit —
    # the array form of _disable_largest_min_demands (same sort key, same
    # sequential cumsum, hence the same survivors bit for bit).
    order = np.lexsort((rank, min_cycles))
    cumulative = np.cumsum(min_cycles[order])
    keep = int(np.searchsorted(cumulative, capacity, side="right"))
    active_sorted = order[:keep]
    rates = np.zeros(count)
    if keep:
        # Water-fill over the active set in (min_cycles, name) order — the
        # order the scalar implementation built its arrays in, which pins
        # the float summation order inside _water_fill.
        pred_active = predicted[active_sorted]
        mins_active = min_rates[active_sorted]
        if packet_fair:
            # Equalise sampling rates; a query's rate consumes cycles in
            # proportion to its predicted demand.
            levels = _water_fill(floors=mins_active,
                                 ceilings=np.ones(keep),
                                 weights=pred_active, capacity=capacity)
            rates[active_sorted] = levels
        else:
            # Equalise allocated cycles between floors m_q*d_q and ceilings
            # d_q.
            levels = _water_fill(floors=mins_active * pred_active,
                                 ceilings=pred_active,
                                 weights=np.ones(keep), capacity=capacity)
            with np.errstate(divide="ignore", invalid="ignore"):
                rates[active_sorted] = np.where(
                    pred_active > 0.0,
                    np.minimum(1.0, levels / pred_active), 1.0)
    disabled_mask = np.ones(count, dtype=bool)
    disabled_mask[active_sorted] = False
    return Allocation.from_arrays(names, rates, rates * predicted,
                                  disabled_mask)


def mmfs_cpu_arrays(names: Sequence[str], predicted: np.ndarray,
                    min_rates: np.ndarray, capacity: float,
                    rank: Optional[np.ndarray] = None) -> Allocation:
    """Columnar max-min fair share of CPU cycles (Section 5.2.1)."""
    return _mmfs_arrays(names, predicted, min_rates, capacity,
                        packet_fair=False, rank=rank)


def mmfs_pkt_arrays(names: Sequence[str], predicted: np.ndarray,
                    min_rates: np.ndarray, capacity: float,
                    rank: Optional[np.ndarray] = None) -> Allocation:
    """Columnar max-min fair share of packet access (Section 5.2.2)."""
    return _mmfs_arrays(names, predicted, min_rates, capacity,
                        packet_fair=True, rank=rank)


# ----------------------------------------------------------------------
# Classic QueryDemand-sequence surface (thin wrappers over the kernels)
# ----------------------------------------------------------------------
def eq_srates(demands: Sequence[QueryDemand], capacity: float) -> Allocation:
    """Single common sampling rate for every query (Chapter 4 strategy).

    The rate is ``capacity / total_demand`` clamped to ``[0, 1]``.  Queries
    whose minimum sampling rate exceeds the common rate are disabled for the
    bin and the rate is recomputed for the remaining ones, as in the
    ``eq_srates`` system of Section 5.5.3.
    """
    return eq_srates_arrays(*_demand_columns(demands), capacity)


def mmfs_cpu(demands: Sequence[QueryDemand], capacity: float) -> Allocation:
    """Max-min fair share in terms of CPU cycles (Section 5.2.1)."""
    return mmfs_cpu_arrays(*_demand_columns(demands), capacity)


def mmfs_pkt(demands: Sequence[QueryDemand], capacity: float) -> Allocation:
    """Max-min fair share in terms of packet access (Section 5.2.2)."""
    return mmfs_pkt_arrays(*_demand_columns(demands), capacity)


# ----------------------------------------------------------------------
# Scalar reference implementations (pre-vectorisation, kept verbatim)
# ----------------------------------------------------------------------
def eq_srates_scalar(demands: Sequence[QueryDemand],
                     capacity: float) -> Allocation:
    """The historical object-per-query ``eq_srates`` — executable
    specification and benchmark baseline for the columnar kernel."""
    allocation = Allocation()
    active = list(demands)
    if capacity <= 0.0:
        allocation.disabled = [d.name for d in demands]
        allocation.rates = {d.name: 0.0 for d in demands}
        allocation.cycles = {d.name: 0.0 for d in demands}
        return allocation
    while True:
        total = sum(d.predicted_cycles for d in active)
        rate = 1.0 if total <= 0 else min(1.0, capacity / total)
        violators = [d for d in active if d.min_sampling_rate > rate + 1e-12]
        if not violators:
            break
        worst = max(violators, key=lambda d: (d.min_cycles, d.name))
        active.remove(worst)
        if not active:
            rate = 0.0
            break
    active_names = {d.name for d in active}
    for demand in demands:
        if demand.name in active_names:
            allocation.rates[demand.name] = rate
            allocation.cycles[demand.name] = rate * demand.predicted_cycles
        else:
            allocation.rates[demand.name] = 0.0
            allocation.cycles[demand.name] = 0.0
            allocation.disabled.append(demand.name)
    return allocation


def _mmfs_scalar(demands: Sequence[QueryDemand], capacity: float,
                 packet_fair: bool) -> Allocation:
    allocation = Allocation()
    if capacity <= 0.0:
        allocation.disabled = [d.name for d in demands]
        allocation.rates = {d.name: 0.0 for d in demands}
        allocation.cycles = {d.name: 0.0 for d in demands}
        return allocation
    active = _disable_largest_min_demands(demands, capacity)
    active_names = {d.name for d in active}
    rates: Dict[str, float] = {}
    if active:
        pred = np.array([d.predicted_cycles for d in active])
        mins = np.array([d.min_sampling_rate for d in active])
        if packet_fair:
            levels = _water_fill(floors=mins, ceilings=np.ones(len(active)),
                                 weights=pred, capacity=capacity)
            for demand, rate in zip(active, levels):
                rates[demand.name] = float(rate)
        else:
            floors = mins * pred
            levels = _water_fill(floors=floors, ceilings=pred,
                                 weights=np.ones(len(active)),
                                 capacity=capacity)
            for demand, cycles in zip(active, levels):
                rate = 1.0 if demand.predicted_cycles <= 0 else \
                    min(1.0, cycles / demand.predicted_cycles)
                rates[demand.name] = float(rate)
    for demand in demands:
        if demand.name in active_names:
            rate = rates[demand.name]
            allocation.rates[demand.name] = rate
            allocation.cycles[demand.name] = rate * demand.predicted_cycles
        else:
            allocation.rates[demand.name] = 0.0
            allocation.cycles[demand.name] = 0.0
            allocation.disabled.append(demand.name)
    return allocation


def mmfs_cpu_scalar(demands: Sequence[QueryDemand],
                    capacity: float) -> Allocation:
    """The historical object-per-query ``mmfs_cpu`` (reference/baseline)."""
    return _mmfs_scalar(demands, capacity, packet_fair=False)


def mmfs_pkt_scalar(demands: Sequence[QueryDemand],
                    capacity: float) -> Allocation:
    """The historical object-per-query ``mmfs_pkt`` (reference/baseline)."""
    return _mmfs_scalar(demands, capacity, packet_fair=True)


# ----------------------------------------------------------------------
# Per-system slot table backing the columnar path
# ----------------------------------------------------------------------
class QuerySlotTable:
    """Stable per-query slot table: demand columns maintained across bins.

    One slot per registered query.  Slots are assigned on add, recycled on
    remove, and the columns (``predicted``, ``min_rate``, ``name_rank``,
    ``tenant_slot``) are rewritten only on membership changes; the per-bin
    hot path writes predictions into ``predicted[slot]`` and gathers rows by
    slot index — no per-bin object construction, no per-bin string sorting
    (``name_rank`` keeps the Section 5.2.1 tie-break precomputed).
    """

    def __init__(self, capacity: int = 16) -> None:
        capacity = max(1, int(capacity))
        self.names: List[Optional[str]] = [None] * capacity
        self.predicted = np.zeros(capacity, dtype=np.float64)
        self.min_rate = np.zeros(capacity, dtype=np.float64)
        self.name_rank = np.zeros(capacity, dtype=np.int64)
        self.tenant_slot = np.zeros(capacity, dtype=np.intp)
        self._slot_of: Dict[str, int] = {}
        self._free: List[int] = list(range(capacity - 1, -1, -1))

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, name: str) -> bool:
        return name in self._slot_of

    def slot(self, name: str) -> int:
        return self._slot_of[name]

    def add(self, name: str, min_rate: float = 0.0,
            tenant_slot: int = 0) -> int:
        """Assign a slot for ``name`` and return it."""
        if name in self._slot_of:
            raise ValueError(f"query {name!r} already has a slot")
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self.names[slot] = name
        self.predicted[slot] = 0.0
        self.min_rate[slot] = float(min_rate)
        self.tenant_slot[slot] = int(tenant_slot)
        self._slot_of[name] = slot
        self._recompute_ranks()
        return slot

    def remove(self, name: str) -> None:
        slot = self._slot_of.pop(name, None)
        if slot is None:
            return
        self.names[slot] = None
        self.predicted[slot] = 0.0
        self.min_rate[slot] = 0.0
        self.tenant_slot[slot] = 0
        self._free.append(slot)
        self._recompute_ranks()

    def _grow(self) -> None:
        old = len(self.names)
        new = old * 2
        self.names.extend([None] * (new - old))
        for attr in ("predicted", "min_rate", "name_rank", "tenant_slot"):
            column = getattr(self, attr)
            grown = np.zeros(new, dtype=column.dtype)
            grown[:old] = column
            setattr(self, attr, grown)
        self._free.extend(range(new - 1, old - 1, -1))

    def _recompute_ranks(self) -> None:
        occupied = sorted(self._slot_of.items())  # (name, slot) by name
        for position, (_, slot) in enumerate(occupied):
            self.name_rank[slot] = position


#: Registry of the named strategies used throughout experiments.
STRATEGIES: Dict[str, Strategy] = {
    "eq_srates": eq_srates,
    "mmfs_cpu": mmfs_cpu,
    "mmfs_pkt": mmfs_pkt,
}

#: Columnar kernels behind the named strategies: same names, signature
#: ``kernel(names, predicted, min_rates, capacity, rank=None)``.
ARRAY_STRATEGIES: Dict[str, Callable] = {
    "eq_srates": eq_srates_arrays,
    "mmfs_cpu": mmfs_cpu_arrays,
    "mmfs_pkt": mmfs_pkt_arrays,
}

#: Pre-vectorisation implementations: executable specification of the
#: kernels (bit-identical outputs) and the benchmark's object-per-bin
#: baseline.
SCALAR_REFERENCE: Dict[str, Strategy] = {
    "eq_srates": eq_srates_scalar,
    "mmfs_cpu": mmfs_cpu_scalar,
    "mmfs_pkt": mmfs_pkt_scalar,
}


def get_strategy(name_or_fn) -> Strategy:
    """Resolve a strategy by name or pass a callable through unchanged."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return STRATEGIES[name_or_fn]
    except KeyError:
        raise KeyError(f"unknown strategy {name_or_fn!r}; "
                       f"available: {sorted(STRATEGIES)}") from None


def strategy_key(name_or_fn) -> Optional[str]:
    """The registry name of a strategy, or ``None`` for custom callables."""
    if isinstance(name_or_fn, str):
        return name_or_fn if name_or_fn in STRATEGIES else None
    for key, fn in STRATEGIES.items():
        if fn is name_or_fn:
            return key
    return None
