"""Multi-tenant allocation: tenant groups, registry, two-tier water fill.

The paper's Chapter 5 strategies treat every query as its own principal.
Production monitoring is multi-tenant: a tenant owns *many* queries and the
operator provisions budgets per tenant, not per query.  This module adds
that layer:

* :class:`TenantGroup` — a declarative, JSON-round-tripping group of
  :class:`~repro.queries.QuerySpec` members with a fair-share ``weight``, an
  optional ``budget_share`` ceiling (fraction of the bin capacity) and a
  ``min_rate`` sampling floor applied to every member.
* :class:`TenantRegistry` — columnar per-tenant state (weights, ceilings,
  floors in preallocated arrays) plus the query→tenant membership map.
  Queries outside any declared group become implicit single-query tenants,
  which makes the untenanted system a degenerate case of the tenanted one.
* :func:`two_tier_allocate` — the columnar two-tier max-min fair kernel:
  tier 1 water-fills cycle shares *across tenants* (weighted, between each
  tenant's aggregate floor and its capped aggregate demand), tier 2
  water-fills *within* each tenant's share across its queries, all tenants
  bisected simultaneously with one ``np.bincount`` per iteration.
* :func:`two_tier_scalar` — the straightforward python reference (explicit
  per-tenant loops and :func:`~repro.core.fairness._water_fill` calls) used
  by the property tests and as the benchmark baseline.

When even the floors do not fit, queries are disabled largest minimum
demand first — inside each over-committed tenant first (against its own
ceiling), then globally (against the bin capacity) — using the same
``(min_cycles, name)`` priority as the flat allocator, so the anti-cheating
property of Section 5.2.1 carries over to tenants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .fairness import (Allocation, ARRAY_STRATEGIES, _validate_columns,
                       _water_fill, name_ranks)

__all__ = [
    "TenantGroup", "parse_tenant_groups", "TenantRegistry",
    "TenantAssignment", "two_tier_allocate", "two_tier_scalar",
]


@dataclass(frozen=True)
class TenantGroup:
    """A named tenant owning a set of query specs and a fairness contract.

    ``weight`` scales the tenant's fair share in the tier-1 water fill
    (twice the weight, twice the cycles at equal contention).
    ``budget_share`` is an optional ceiling: the tenant can never be
    allocated more than that fraction of the bin capacity.  ``min_rate`` is
    a sampling-rate floor folded into every member query's effective
    minimum sampling rate.  Groups canonicalise and round-trip through
    ``to_dict``/``from_dict`` exactly like :class:`~repro.queries.QuerySpec`.
    """

    name: str
    queries: Tuple[Any, ...] = ()
    weight: float = 1.0
    budget_share: Optional[float] = None
    min_rate: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("tenant name must be a non-empty string")
        from ..queries import parse_query_specs
        object.__setattr__(self, "queries", parse_query_specs(self.queries))
        try:
            weight = float(self.weight)
        except (TypeError, ValueError):
            raise ValueError(
                f"tenant {self.name!r}: weight must be a number, "
                f"got {self.weight!r}") from None
        if not weight > 0.0:
            raise ValueError(
                f"tenant {self.name!r}: weight must be positive, "
                f"got {weight!r}")
        object.__setattr__(self, "weight", weight)
        if self.budget_share is not None:
            try:
                share = float(self.budget_share)
            except (TypeError, ValueError):
                raise ValueError(
                    f"tenant {self.name!r}: budget_share must be a number "
                    f"or None, got {self.budget_share!r}") from None
            if not 0.0 < share <= 1.0:
                raise ValueError(
                    f"tenant {self.name!r}: budget_share must be in "
                    f"(0, 1], got {share!r}")
            object.__setattr__(self, "budget_share", share)
        try:
            floor = float(self.min_rate)
        except (TypeError, ValueError):
            raise ValueError(
                f"tenant {self.name!r}: min_rate must be a number, "
                f"got {self.min_rate!r}") from None
        if not 0.0 <= floor <= 1.0:
            raise ValueError(
                f"tenant {self.name!r}: min_rate must be in [0, 1], "
                f"got {floor!r}")
        object.__setattr__(self, "min_rate", floor)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "queries": [spec.to_dict() for spec in self.queries],
            "weight": self.weight,
            "budget_share": self.budget_share,
            "min_rate": self.min_rate,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TenantGroup":
        if not isinstance(data, dict):
            raise TypeError(f"tenant group must be a dict, got {data!r}")
        allowed = {"name", "queries", "weight", "budget_share", "min_rate"}
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(
                f"unknown tenant group keys {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}")
        if "name" not in data:
            raise ValueError("tenant group requires a 'name'")
        return cls(name=data["name"],
                   queries=tuple(data.get("queries", ())),
                   weight=data.get("weight", 1.0),
                   budget_share=data.get("budget_share"),
                   min_rate=data.get("min_rate", 0.0))

    @classmethod
    def parse(cls, value: Any) -> "TenantGroup":
        if isinstance(value, TenantGroup):
            return value
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise TypeError(
            f"cannot parse tenant group from {value!r}; "
            f"expected TenantGroup or dict")


def parse_tenant_groups(groups: Optional[Iterable[Any]]
                        ) -> Tuple[TenantGroup, ...]:
    """Canonicalise an iterable of tenant groups (or dicts) to a tuple.

    Validates that tenant names are unique and that no query instance name
    belongs to more than one tenant.
    """
    if groups is None:
        return ()
    parsed = tuple(TenantGroup.parse(group) for group in groups)
    seen_tenants: Dict[str, int] = {}
    seen_queries: Dict[str, str] = {}
    for group in parsed:
        if group.name in seen_tenants:
            raise ValueError(f"duplicate tenant name {group.name!r}")
        seen_tenants[group.name] = 1
        for spec in group.queries:
            owner = seen_queries.get(spec.instance_name)
            if owner is not None:
                raise ValueError(
                    f"query {spec.instance_name!r} belongs to both "
                    f"tenants {owner!r} and {group.name!r}")
            seen_queries[spec.instance_name] = group.name
    return parsed


class TenantRegistry:
    """Columnar per-tenant state plus the query→tenant membership map.

    Tenant rows live in preallocated arrays (grown geometrically) indexed
    by a stable tenant slot, mirroring the query-slot table: the per-bin
    allocator gathers ``weight`` / ``budget_share`` / ``min_rate`` by slot
    without touching python objects.  Queries that are not members of any
    declared group are assigned an implicit single-query tenant on demand
    (weight 1, no ceiling, no floor), so mixed and fully implicit systems
    run through the same code path.
    """

    def __init__(self, groups: Iterable[Any] = ()) -> None:
        self.groups = parse_tenant_groups(groups)
        #: True when the operator declared tenant groups; implicit
        #: singleton tenants do not count.
        self.declared = bool(self.groups)
        self.names: List[str] = []
        self._slots: Dict[str, int] = {}
        capacity = max(4, len(self.groups))
        self.weight = np.ones(capacity, dtype=np.float64)
        self.budget_share = np.full(capacity, np.nan)
        self.min_rate = np.zeros(capacity, dtype=np.float64)
        self._members: Dict[str, str] = {}
        #: query instance name -> declared tenant name (accounting key;
        #: implicit singleton tenants are excluded on purpose).
        self.declared_tenant_of: Dict[str, str] = {}
        for group in self.groups:
            self._add_tenant(group.name, group.weight, group.budget_share,
                             group.min_rate)
            for spec in group.queries:
                self._members[spec.instance_name] = group.name
                self.declared_tenant_of[spec.instance_name] = group.name

    @property
    def size(self) -> int:
        return len(self.names)

    def slot(self, tenant_name: str) -> int:
        return self._slots[tenant_name]

    def _add_tenant(self, name: str, weight: float = 1.0,
                    budget_share: Optional[float] = None,
                    min_rate: float = 0.0) -> int:
        if name in self._slots:
            raise ValueError(f"duplicate tenant name {name!r}")
        slot = len(self.names)
        if slot >= len(self.weight):
            grown = len(self.weight) * 2
            for attr, fill in (("weight", 1.0), ("budget_share", np.nan),
                               ("min_rate", 0.0)):
                column = np.full(grown, fill)
                column[:slot] = getattr(self, attr)[:slot]
                setattr(self, attr, column)
        self.names.append(name)
        self._slots[name] = slot
        self.weight[slot] = float(weight)
        self.budget_share[slot] = \
            np.nan if budget_share is None else float(budget_share)
        self.min_rate[slot] = float(min_rate)
        return slot

    def assign(self, query_name: str) -> int:
        """Tenant slot for ``query_name``; creates an implicit singleton
        tenant for queries outside every declared group."""
        tenant = self._members.get(query_name)
        if tenant is None:
            tenant = query_name
            self._members[query_name] = tenant
        slot = self._slots.get(tenant)
        if slot is None:
            slot = self._add_tenant(tenant)
        return slot

    def min_rate_for(self, query_name: str) -> float:
        """The declared tenant floor for a query (0.0 when implicit)."""
        tenant = self.declared_tenant_of.get(query_name)
        if tenant is None:
            return 0.0
        return float(self.min_rate[self._slots[tenant]])

    def capacity_caps(self, capacity: float) -> np.ndarray:
        """Per-tenant cycle ceilings at the given bin capacity
        (``inf`` for uncapped tenants)."""
        shares = self.budget_share[:self.size]
        return np.where(np.isnan(shares), np.inf, shares * capacity)


@dataclass
class TenantAssignment:
    """Registry plus the tenant slot of each active query this bin."""

    registry: TenantRegistry
    ids: np.ndarray  # tenant slot per active query, aligned with columns

    def allocate(self, key: str, names: Sequence[str], predicted: np.ndarray,
                 min_rates: np.ndarray, capacity: float,
                 rank: Optional[np.ndarray] = None) -> Allocation:
        """Dispatch a named strategy over the tenanted columns.

        ``eq_srates`` is tenant-agnostic by definition (one common rate for
        everyone) — tenant floors still bind because they are folded into
        the effective per-query minimum rates, but budget ceilings and
        weights do not apply.  The max-min strategies run the two-tier
        kernel.
        """
        if key == "eq_srates":
            return ARRAY_STRATEGIES["eq_srates"](
                names, predicted, min_rates, capacity, rank=rank)
        return two_tier_allocate(
            names, predicted, min_rates, self.ids, self.registry, capacity,
            packet_fair=(key == "mmfs_pkt"), rank=rank)


def _tenant_boxes(predicted: np.ndarray, min_rates: np.ndarray,
                  packet_fair: bool):
    """Per-query (floor, ceiling, weight) boxes for the requested fairness
    metric: rates for ``mmfs_pkt`` (cycle cost ``d_q`` per unit of rate),
    cycles for ``mmfs_cpu`` (unit cost)."""
    if packet_fair:
        return (min_rates.astype(np.float64, copy=True),
                np.ones(len(predicted)), predicted)
    return (min_rates * predicted, predicted.astype(np.float64, copy=True),
            np.ones(len(predicted)))


def two_tier_allocate(names: Sequence[str], predicted: np.ndarray,
                      min_rates: np.ndarray, tenant_ids: np.ndarray,
                      registry: TenantRegistry, capacity: float,
                      packet_fair: bool,
                      rank: Optional[np.ndarray] = None) -> Allocation:
    """Two-tier max-min fair allocation over tenanted demand columns.

    Tier 1 runs :func:`~repro.core.fairness._water_fill` across *tenants*
    (weighted by tenant weight, floors at each tenant's aggregate minimum
    cost, ceilings at its capped aggregate demand) to fix per-tenant cycle
    shares.  Tier 2 then water-fills each tenant's queries within its
    share; all tenants are bisected simultaneously, with each iteration
    charging every tenant's usage in a single ``np.bincount`` — the whole
    bin decision stays O(iterations · queries) array work with no python
    per-tenant loop.
    """
    count = len(predicted)
    _validate_columns(predicted, min_rates)
    if capacity <= 0.0:
        return Allocation.from_arrays(
            names, np.zeros(count), np.zeros(count),
            np.ones(count, dtype=bool))
    if rank is None:
        rank = name_ranks(names)
    tenant_ids = np.asarray(tenant_ids, dtype=np.intp)
    tenants = registry.size
    weights_t = registry.weight[:tenants]
    caps_t = registry.capacity_caps(capacity)

    floors, ceilings, costs = _tenant_boxes(predicted, min_rates, packet_fair)
    min_cost = costs * floors  # cycles each query consumes at its floor
    active = np.ones(count, dtype=bool)

    # Pass 1 — within-tenant feasibility: inside each tenant, disable the
    # largest minimum demands first until the tenant's floor cost fits its
    # budget ceiling.  Segmented cumsum over a (tenant, min_cost, name)
    # sort; the kept elements form a per-tenant prefix because min_cost is
    # non-negative.
    order = np.lexsort((rank, min_cost, tenant_ids))
    tenant_sorted = tenant_ids[order]
    running = np.cumsum(min_cost[order])
    segment_start = np.empty(count, dtype=bool)
    segment_start[0] = True
    segment_start[1:] = tenant_sorted[1:] != tenant_sorted[:-1]
    base = np.where(segment_start,
                    np.concatenate(([0.0], running[:-1])), 0.0)
    base = np.maximum.accumulate(base)  # running is non-decreasing
    within = running - base
    active[order[within > caps_t[tenant_sorted]]] = False

    # Pass 2 — global feasibility: the flat Section 5.2.1 rule over the
    # survivors (same (min_cycles, name) priority as the untenanted path).
    alive = np.flatnonzero(active)
    if alive.size:
        flat_order = alive[np.lexsort((rank[alive], min_cost[alive]))]
        cumulative = np.cumsum(min_cost[flat_order])
        keep = int(np.searchsorted(cumulative, capacity, side="right"))
        active[flat_order[keep:]] = False
    alive = np.flatnonzero(active)
    if alive.size == 0:
        allocation = Allocation.from_arrays(
            names, np.zeros(count), np.zeros(count),
            np.ones(count, dtype=bool))
        allocation.tenant_shares = {}
        return allocation

    at = tenant_ids[alive]
    floors_a = floors[alive]
    ceilings_a = ceilings[alive]
    costs_a = costs[alive]

    # Tier 1 — cycle shares across tenants.  Each tenant's box is
    # [aggregate floor cost, min(budget cap, aggregate demand)]; dividing
    # by the tenant weight turns the weighted fill into the standard
    # water-fill form (level = cycles per unit weight).
    tenant_floor = np.bincount(at, weights=costs_a * floors_a,
                               minlength=tenants)
    tenant_demand = np.bincount(at, weights=costs_a * ceilings_a,
                                minlength=tenants)
    tenant_ceiling = np.maximum(np.minimum(caps_t, tenant_demand),
                                tenant_floor)
    levels = _water_fill(tenant_floor / weights_t,
                         tenant_ceiling / weights_t,
                         weights_t, capacity)
    shares = weights_t * np.asarray(levels, dtype=np.float64).reshape(-1)

    # Tier 2 — water level inside each tenant's share, every tenant
    # bisected at once.  Trivial tenants (share covers demand, or share at
    # the floor) resolve without iterating.
    level_lo = np.full(tenants, np.inf)
    level_hi = np.full(tenants, -np.inf)
    np.minimum.at(level_lo, at, floors_a)
    np.maximum.at(level_hi, at, ceilings_a)
    present = np.zeros(tenants, dtype=bool)
    present[at] = True
    level = np.where(shares >= tenant_demand, level_hi, level_lo)
    needs_bisect = present & (shares < tenant_demand) & \
        (shares > tenant_floor)
    if needs_bisect.any():
        lo = np.where(needs_bisect, level_lo, 0.0)
        hi = np.where(needs_bisect, level_hi, 1.0)
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            used = np.bincount(at,
                               weights=costs_a * np.clip(mid[at], floors_a,
                                                         ceilings_a),
                               minlength=tenants)
            over = used > shares
            hi = np.where(needs_bisect & over, mid, hi)
            lo = np.where(needs_bisect & ~over, mid, lo)
            if np.all(~needs_bisect |
                      (hi - lo < 1e-9 * np.maximum(1.0, hi))):
                break
        level = np.where(needs_bisect, lo, level)
    filled = np.clip(level[at], floors_a, ceilings_a)

    rates = np.zeros(count)
    if packet_fair:
        rates[alive] = filled
    else:
        pred_a = predicted[alive]
        with np.errstate(divide="ignore", invalid="ignore"):
            rates[alive] = np.where(pred_a > 0.0,
                                    np.minimum(1.0, filled / pred_a), 1.0)
    allocation = Allocation.from_arrays(names, rates, rates * predicted,
                                        ~active)
    allocation.tenant_shares = {
        registry.names[slot]: float(shares[slot])
        for slot in np.flatnonzero(present)}
    return allocation


def two_tier_scalar(names: Sequence[str], predicted: np.ndarray,
                    min_rates: np.ndarray, tenant_ids: np.ndarray,
                    registry: TenantRegistry, capacity: float,
                    packet_fair: bool) -> Allocation:
    """Python reference for :func:`two_tier_allocate`: explicit per-tenant
    loops and one :func:`~repro.core.fairness._water_fill` per tenant.
    Property tests assert the columnar kernel matches this to bisection
    tolerance; the tenant benchmark uses it as the object-per-bin
    baseline."""
    count = len(predicted)
    _validate_columns(predicted, min_rates)
    if capacity <= 0.0:
        return Allocation(rates={name: 0.0 for name in names},
                          cycles={name: 0.0 for name in names},
                          disabled=list(names))
    tenant_ids = np.asarray(tenant_ids, dtype=np.intp)
    caps_t = registry.capacity_caps(capacity)
    floors, ceilings, costs = _tenant_boxes(predicted, min_rates, packet_fair)
    min_cost = costs * floors

    members: Dict[int, List[int]] = {}
    for index in range(count):
        members.setdefault(int(tenant_ids[index]), []).append(index)

    active: Dict[int, List[int]] = {}
    # Pass 1: per-tenant largest-minimum-first disabling against the cap.
    for slot, indices in members.items():
        ordered = sorted(indices,
                         key=lambda i: (min_cost[i], names[i]))
        while ordered and sum(min_cost[i] for i in ordered) > caps_t[slot]:
            ordered.pop()
        active[slot] = ordered
    # Pass 2: global largest-minimum-first disabling against the capacity.
    flat = sorted((i for indices in active.values() for i in indices),
                  key=lambda i: (min_cost[i], names[i]))
    while flat and sum(min_cost[i] for i in flat) > capacity:
        flat.pop()
    surviving = set(flat)
    active = {slot: [i for i in indices if i in surviving]
              for slot, indices in active.items()}
    active = {slot: indices for slot, indices in active.items() if indices}

    rates = {name: 0.0 for name in names}
    shares_out: Dict[str, float] = {}
    if active:
        slots = sorted(active)
        tenant_floor = np.array([sum(min_cost[i] for i in active[s])
                                 for s in slots])
        tenant_demand = np.array(
            [sum(costs[i] * ceilings[i] for i in active[s]) for s in slots])
        tenant_ceiling = np.maximum(
            np.minimum(np.array([caps_t[s] for s in slots]), tenant_demand),
            tenant_floor)
        weights_t = np.array([registry.weight[s] for s in slots])
        levels = _water_fill(tenant_floor / weights_t,
                             tenant_ceiling / weights_t,
                             weights_t, capacity)
        shares = weights_t * np.asarray(levels).reshape(-1)
        for slot, share in zip(slots, shares):
            indices = active[slot]
            shares_out[registry.names[slot]] = float(share)
            filled = _water_fill(
                np.array([floors[i] for i in indices]),
                np.array([ceilings[i] for i in indices]),
                np.array([costs[i] for i in indices]), float(share))
            filled = np.atleast_1d(np.asarray(filled, dtype=np.float64))
            if filled.shape == (1,) and len(indices) > 1:
                filled = np.full(len(indices), filled[0])
            for position, index in enumerate(indices):
                if packet_fair:
                    rates[names[index]] = float(filled[position])
                elif predicted[index] > 0.0:
                    rates[names[index]] = float(
                        min(1.0, filled[position] / predicted[index]))
                else:
                    rates[names[index]] = 1.0
    allocation = Allocation(
        rates=rates,
        cycles={name: rates[name] * float(predicted[i])
                for i, name in enumerate(names)},
        disabled=[name for i, name in enumerate(names)
                  if i not in surviving])
    allocation.tenant_shares = shares_out
    return allocation
