"""The predictive load shedding controller (Chapter 4, Algorithm 1).

The controller answers the three questions of the paper for every batch:

* **when** to shed — whenever the predicted cycles of all queries (inflated
  by an EWMA of the recent prediction error) exceed the cycles available in
  the time bin, after subtracting the system and prediction overhead and
  adding the slack discovered by the buffer-discovery mechanism;
* **where / how** to shed — per-query sampling rates chosen by an allocation
  strategy from :mod:`repro.core.fairness` (``eq_srates`` reproduces the
  single global rate of Chapter 4), applied with packet or flow sampling, or
  delegated to the query itself when it registered a custom method;
* **how much** to shed — the sampling rate that brings the corrected
  prediction under the available cycles, accounting for the cycles the
  shedding machinery itself will consume.

The controller is deliberately independent from the queries' internals: its
inputs are feature vectors, predicted cycles and measured cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .fairness import (Allocation, ARRAY_STRATEGIES, QueryDemand, Strategy,
                       get_strategy, sequential_sum, strategy_key,
                       _validate_columns)

#: Weight of the EWMAs tracking prediction error and shedding overhead
#: (Section 4.3 sets alpha = 0.9 to react quickly).
EWMA_WEIGHT = 0.9


class BufferDiscovery:
    """Slow-start style discovery of how far the system may fall behind.

    Capture devices buffer packets, so the system can occasionally use more
    cycles than one time bin provides as long as it remains stable.  The
    ``rtthresh`` threshold grows exponentially while the system keeps up,
    switches to linear growth past the last known safe value, and collapses
    to zero whenever the buffers exceed the occupation limit (Section 4.1).
    """

    #: Default probe step, as a fraction of the per-bin cycle budget.
    DEFAULT_INCREMENT_FRACTION = 0.01

    def __init__(self, initial_increment: float = 1e6,
                 occupation_limit: float = 0.5) -> None:
        self.rtthresh = 0.0
        self.initial_increment = float(initial_increment)
        self.occupation_limit = float(occupation_limit)
        self.max_rtthresh: Optional[float] = None
        self._ssthresh = np.inf
        self._increment = float(initial_increment)

    def configure_budget(self, per_bin_budget: float,
                         buffer_cycles: Optional[float] = None) -> None:
        """Scale the probe step (and cap) to the per-bin budget and buffer.

        The probe step must be small compared with both the bin budget and
        the capture-buffer size, otherwise a single probe can blow straight
        through the buffer and cause the very drops it tries to avoid; the
        cap keeps the discovered allowance well inside the buffer so that
        normal traffic bursts never translate into losses.
        """
        self.initial_increment = self.DEFAULT_INCREMENT_FRACTION * float(
            per_bin_budget)
        self._increment = self.initial_increment
        cap = float(per_bin_budget)
        if buffer_cycles is not None and np.isfinite(buffer_cycles):
            cap = min(cap, 0.3 * float(buffer_cycles))
        self.max_rtthresh = cap

    def allowance(self) -> float:
        """Extra cycles the system may currently spend beyond the bin budget."""
        if getattr(self, "max_rtthresh", None) is not None:
            return min(self.rtthresh, self.max_rtthresh)
        return self.rtthresh

    def update(self, used_cycles: float, available_cycles: float,
               buffer_occupation: float) -> None:
        """Adjust ``rtthresh`` after a bin.

        ``buffer_occupation`` is the capture-buffer fill fraction in [0, 1].
        """
        if buffer_occupation > self.occupation_limit:
            # The system is turning unstable: back off.
            self._ssthresh = max(self.rtthresh / 2.0, self.initial_increment)
            self.rtthresh = 0.0
            self._increment = self.initial_increment
            return
        if used_cycles <= available_cycles:
            # Queries used less than available: probe for more slack.
            if self.rtthresh < self._ssthresh:
                self.rtthresh = max(self.rtthresh * 2.0,
                                    self.rtthresh + self._increment)
            else:
                self.rtthresh += self._increment


@dataclass
class ShedPlan:
    """Decision taken for one time bin."""

    available_cycles: float
    predicted_cycles: float
    corrected_prediction: float
    overload: bool
    rates: Dict[str, float] = field(default_factory=dict)
    allocation: Optional[Allocation] = None

    def rate(self, name: str) -> float:
        return self.rates.get(name, 1.0)

    @property
    def tenant_shares(self) -> Optional[Dict[str, float]]:
        """Per-tenant cycle shares when a two-tier allocation ran."""
        if self.allocation is None:
            return None
        return self.allocation.tenant_shares

    @property
    def global_rate(self) -> float:
        """Smallest applied rate (1.0 when no shedding happened)."""
        return min(self.rates.values()) if self.rates else 1.0


class LoadSheddingController:
    """Implements the per-bin decisions of Algorithm 1.

    Parameters
    ----------
    strategy:
        Allocation strategy name or callable (see :mod:`repro.core.fairness`).
    safety_margin:
        Extra multiplicative head-room applied on top of the EWMA error
        correction (0 reproduces the paper exactly).
    """

    def __init__(self, strategy: Strategy = "eq_srates",
                 safety_margin: float = 0.0) -> None:
        self.strategy = get_strategy(strategy)
        #: Registry name of the strategy (None for custom callables); the
        #: columnar plan path dispatches named strategies straight to their
        #: array kernels and only rebuilds QueryDemand objects for customs.
        self.strategy_key = strategy_key(strategy)
        self.safety_margin = float(safety_margin)
        self.error_ewma = 0.0
        self.shedding_overhead_ewma = 0.0
        self.buffer_discovery = BufferDiscovery()
        #: Most recent sampling rate granted to each query — an introspection
        #: surface for operators/tests and the controller's only per-query
        #: state; it must be dropped (``forget_query``) when a query is
        #: removed so a later same-named query starts clean.
        self.last_rates: Dict[str, float] = {}

    def configure_budget(self, per_bin_budget: float,
                         buffer_cycles: Optional[float] = None) -> None:
        """Adapt internal step sizes to the host's per-bin cycle budget."""
        self.buffer_discovery.configure_budget(per_bin_budget, buffer_cycles)

    # ------------------------------------------------------------------
    # When / where / how much
    # ------------------------------------------------------------------
    def available_cycles(self, bin_budget: float, overhead_cycles: float,
                         delay: float) -> float:
        """Cycles left for query processing in this bin (Algorithm 1, line 7)."""
        return (bin_budget - overhead_cycles +
                (self.buffer_discovery.allowance() - delay))

    def plan(self, demands: List[QueryDemand], bin_budget: float,
             overhead_cycles: float, delay: float) -> ShedPlan:
        """Decide the sampling rate of every query for the current bin."""
        names = [d.name for d in demands]
        predicted = np.array([d.predicted_cycles for d in demands],
                             dtype=np.float64)
        min_rates = np.array([d.min_sampling_rate for d in demands],
                             dtype=np.float64)
        return self.plan_arrays(names, predicted, min_rates, bin_budget,
                                overhead_cycles, delay)

    def plan_arrays(self, names: Sequence[str], predicted: np.ndarray,
                    min_rates: np.ndarray, bin_budget: float,
                    overhead_cycles: float, delay: float,
                    tenants=None, rank: Optional[np.ndarray] = None
                    ) -> ShedPlan:
        """Columnar :meth:`plan`: demand columns in, no per-bin objects.

        ``names`` / ``predicted`` / ``min_rates`` are aligned per-query
        columns (typically gathered from the system's
        :class:`~repro.core.fairness.QuerySlotTable`).  ``tenants`` is an
        optional :class:`~repro.core.tenancy.TenantAssignment` routing named
        strategies through the two-tier tenant allocator; ``rank`` is the
        precomputed name-rank tie-break column.  Named strategies dispatch
        straight to their array kernels; custom callables still receive the
        classic corrected :class:`QueryDemand` list.
        """
        predicted = np.asarray(predicted, dtype=np.float64)
        min_rates = np.asarray(min_rates, dtype=np.float64)
        _validate_columns(predicted, min_rates)
        avail = self.available_cycles(bin_budget, overhead_cycles, delay)
        predicted_total = sequential_sum(predicted)
        correction = (1.0 + self.error_ewma) * (1.0 + self.safety_margin)
        corrected = predicted_total * correction
        overload = avail < corrected
        plan = ShedPlan(available_cycles=avail,
                        predicted_cycles=predicted_total,
                        corrected_prediction=corrected, overload=overload)
        if not overload or not len(names):
            plan.rates = {name: 1.0 for name in names}
            self.last_rates.update(plan.rates)
            return plan
        # Cycles truly usable by queries once the shedding machinery has
        # taken its own share (Algorithm 1, line 9).
        usable = max(0.0, avail - self.shedding_overhead_ewma)
        # Scale each query's corrected demand and let the strategy split it.
        corrected_pred = predicted * correction
        if tenants is not None and self.strategy_key is not None:
            allocation = tenants.allocate(self.strategy_key, names,
                                          corrected_pred, min_rates, usable,
                                          rank=rank)
        elif self.strategy_key is not None:
            allocation = ARRAY_STRATEGIES[self.strategy_key](
                names, corrected_pred, min_rates, usable, rank=rank)
        else:
            corrected_demands = [
                QueryDemand(name=name,
                            predicted_cycles=float(cycles),
                            min_sampling_rate=float(floor))
                for name, cycles, floor
                in zip(names, corrected_pred, min_rates)
            ]
            allocation = self.strategy(corrected_demands, usable)
        plan.allocation = allocation
        plan.rates = {name: allocation.rate(name) for name in names}
        self.last_rates.update(plan.rates)
        return plan

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def record_shedding_overhead(self, cycles: float) -> None:
        """Update the EWMA of the shedding subsystem's own cycles (line 13)."""
        self.shedding_overhead_ewma = (
            EWMA_WEIGHT * float(cycles) +
            (1.0 - EWMA_WEIGHT) * self.shedding_overhead_ewma)

    def record_prediction_error(self, predicted_after_shedding: float,
                                actual_cycles: float) -> None:
        """Update the EWMA of the (under-)prediction error (line 17).

        Only under-prediction is penalised: the correction exists to avoid
        exceeding the capacity, over-prediction is already conservative.
        """
        if actual_cycles <= 0.0:
            under_error = 0.0
        else:
            under_error = max(0.0, 1.0 - predicted_after_shedding / actual_cycles)
        self.error_ewma = (EWMA_WEIGHT * under_error +
                           (1.0 - EWMA_WEIGHT) * self.error_ewma)

    def end_bin(self, used_cycles: float, available_cycles: float,
                buffer_occupation: float) -> None:
        """Feed the bin outcome to the buffer-discovery mechanism."""
        self.buffer_discovery.update(used_cycles, available_cycles,
                                     buffer_occupation)

    def forget_query(self, name: str) -> None:
        """Drop all per-query state held for ``name`` (query removal)."""
        self.last_rates.pop(name, None)

    def reset(self) -> None:
        initial_increment = self.buffer_discovery.initial_increment
        self.error_ewma = 0.0
        self.shedding_overhead_ewma = 0.0
        self.buffer_discovery = BufferDiscovery(
            initial_increment=initial_increment)
        self.last_rates = {}


def reactive_rate(previous_rate: float, consumed_cycles: float,
                  available_cycles: float, delay: float,
                  min_rate: float = 0.0) -> float:
    """Sampling rate of the *reactive* baseline (Equation 4.1).

    The reactive system has no prediction: it scales the previous rate by the
    ratio of available to consumed cycles of the previous bin.
    """
    if consumed_cycles <= 0.0:
        return 1.0
    rate = previous_rate * (available_cycles - delay) / consumed_cycles
    return float(min(1.0, max(min_rate, rate)))
