"""Game-theoretic model of the resource allocation strategy (Section 5.3).

The load shedding strategy of Chapter 5 is modelled as a strategic game in
which each query is a player whose action is its *minimum cycle demand*
``a_q = m_q * d_q`` and whose payoff is the number of cycles the system ends
up allocating to it (Equation 5.7):

* if the sum of all minimum demands no larger than ``a_q`` exceeds the
  capacity ``C``, the query is disabled and its payoff is 0 (the system
  always disables the queries with the largest minimum demands first);
* otherwise the query receives its minimum demand plus a max-min fair share
  of the spare cycles left after satisfying every active query.

Theorem 5.1 states that the game has a single Nash equilibrium in which every
player demands exactly ``C / |Q|``.  This module provides the payoff
function, numeric best responses, best-response dynamics and an equilibrium
checker used to verify the theorem empirically.

Ties and determinism: equal demands straddling the capacity boundary are
resolved by :func:`repro.core.fairness.disable_priority_order` — the same
helper the allocator uses — so passing the query ``names`` makes the game
disable exactly the query that ``_disable_largest_min_demands`` would.
Without names the order falls back to stable input order (still
deterministic, but only consistent with the allocator when demands are
unique).

The best-response search is columnar: :func:`payoff_grid` evaluates a whole
candidate grid in one pass over a sorted-cumsum representation of the other
players' demands, so :func:`best_response_dynamics` runs at hundreds of
players without per-grid-point profile rebuilding.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .fairness import disable_priority_order, name_ranks

#: Slack used when charging demands against the capacity.
_CAPACITY_SLACK = 1e-9


def active_players(actions: Sequence[float], capacity: float,
                   names: Optional[Sequence[str]] = None) -> np.ndarray:
    """Boolean mask of players whose minimum demand the system satisfies.

    Player ``q`` is active iff the total of every demand less than or equal
    to ``a_q`` (including its own) fits within the capacity; this encodes the
    "disable the largest minimum demands first" policy.  With ``names``,
    equal demands are ordered lexicographically by name — the allocator's
    tie-break — so both code paths disable the same player at the boundary.
    """
    actions = np.asarray(actions, dtype=np.float64)
    order = disable_priority_order(actions, names)
    cumulative = np.cumsum(actions[order])
    active_sorted = cumulative <= capacity + _CAPACITY_SLACK
    active = np.zeros(len(actions), dtype=bool)
    active[order] = active_sorted
    return active


def payoffs(actions: Sequence[float], capacity: float,
            names: Optional[Sequence[str]] = None) -> np.ndarray:
    """Payoff of every player for the action profile ``actions`` (Eq. 5.7).

    Active players receive their demand plus an equal (max-min fair, with no
    ceilings) share of the spare capacity; disabled players receive zero.
    """
    actions = np.asarray(actions, dtype=np.float64)
    if np.any(actions < 0):
        raise ValueError("demands must be non-negative")
    result = np.zeros(len(actions), dtype=np.float64)
    active = active_players(actions, capacity, names)
    if not active.any():
        return result
    spare = capacity - actions[active].sum()
    share = max(spare, 0.0) / active.sum()
    result[active] = actions[active] + share
    return result


def payoff_of(player: int, action: float, others: Sequence[float],
              capacity: float,
              names: Optional[Sequence[str]] = None) -> float:
    """Payoff of ``player`` when it deviates to ``action``.

    ``others`` contains the actions of the remaining players in order; the
    player's action is inserted back at ``player``'s index.  ``names``, when
    given, is the *full* profile's name list (including the player's).
    """
    profile = list(others)
    profile.insert(player, action)
    return float(payoffs(profile, capacity, names)[player])


def _tie_ranks(player: int, n_others: int,
               names: Optional[Sequence[str]]):
    """Disable-order tie ranks for the player and each other player."""
    if names is not None:
        if len(names) != n_others + 1:
            raise ValueError("names must cover the full profile")
        ranks = name_ranks(names)
        player_rank = int(ranks[player])
        other_ranks = np.delete(ranks, player)
    else:
        # Stable input order: the profile index is the tie rank.
        player_rank = player
        other_ranks = np.arange(n_others, dtype=np.int64)
        other_ranks[player:] += 1
    return player_rank, other_ranks


def payoff_grid(player: int, candidates: Sequence[float],
                others: Sequence[float], capacity: float,
                names: Optional[Sequence[str]] = None) -> np.ndarray:
    """Payoffs of ``player`` for every candidate action, in one pass.

    Equivalent to ``[payoff_of(player, a, others, capacity) for a in
    candidates]`` (up to float-summation rounding: sums here come from one
    cumulative sum over the sorted profile rather than a masked ``.sum()``)
    but vectorised: the other players are sorted once, and each candidate is
    located by binary search in the cumulative-demand curve to read off its
    active set, active-demand total and spare share without rebuilding the
    profile.
    """
    candidates = np.asarray(candidates, dtype=np.float64)
    others_arr = np.asarray(list(others), dtype=np.float64)
    if np.any(candidates < 0) or np.any(others_arr < 0):
        raise ValueError("demands must be non-negative")
    player_rank, other_ranks = _tie_ranks(player, len(others_arr), names)

    order = np.lexsort((other_ranks, others_arr))
    sorted_others = others_arr[order]
    sorted_ranks = other_ranks[order]
    cumulative = np.cumsum(sorted_others)  # cumulative[i] = sum of first i+1
    prefix = np.concatenate(([0.0], cumulative))  # prefix[i] = sum of first i

    # Merged-sort position of the candidate among the others: all strictly
    # smaller demands, plus equal demands whose tie rank precedes the
    # player's (stable-sort semantics).
    left = np.searchsorted(sorted_others, candidates, side="left")
    right = np.searchsorted(sorted_others, candidates, side="right")
    preceding = np.concatenate(
        ([0], np.cumsum(sorted_ranks < player_rank)))
    position = left + (preceding[right] - preceding[left])

    limit = capacity + _CAPACITY_SLACK
    player_active = prefix[position] + candidates <= limit
    # Actives beyond the player's position must also absorb the player's
    # demand; actives below it never see it.
    beyond = np.searchsorted(cumulative, limit - candidates, side="right")
    alone = min(int(np.searchsorted(cumulative, limit, side="right")),
                len(sorted_others))
    n_active = np.where(player_active, beyond + 1,
                        np.minimum(position, alone))
    active_sum = np.where(player_active,
                          prefix[np.where(player_active, beyond, 0)]
                          + candidates,
                          prefix[np.minimum(position, alone)])
    share = np.zeros(len(candidates))
    occupied = n_active > 0
    share[occupied] = np.maximum(capacity - active_sum[occupied], 0.0) \
        / n_active[occupied]
    return np.where(player_active, candidates + share, 0.0)


def best_response(player: int, others: Sequence[float], capacity: float,
                  grid: int = 2000,
                  names: Optional[Sequence[str]] = None
                  ) -> Tuple[float, float]:
    """Numeric best response of ``player`` to the other players' actions.

    Searches a uniform grid over ``[0, capacity]`` plus the strategically
    relevant boundary points and returns ``(best_action, best_payoff)``.
    The whole grid is evaluated by one :func:`payoff_grid` call; the winner
    is the *last* candidate that improves the running maximum by more than
    1e-12, matching the historical sequential scan.
    """
    candidates = np.linspace(0.0, capacity, grid + 1)
    # Boundary candidates: slightly below the capacity left by the others and
    # the equal-share point, where the payoff is discontinuous.
    others_arr = np.asarray(list(others), dtype=np.float64)
    n = len(others_arr) + 1
    extra = [max(0.0, capacity - others_arr.sum()), capacity / n]
    candidates = np.concatenate([candidates, np.asarray(extra)])
    values = payoff_grid(player, candidates, others_arr, capacity, names)
    running = np.maximum.accumulate(values)
    previous = np.concatenate(([-np.inf], running[:-1]))
    improved = np.flatnonzero(values > previous + 1e-12)
    best_index = improved[-1] if improved.size else 0
    return float(candidates[best_index]), float(values[best_index])


def is_nash_equilibrium(actions: Sequence[float], capacity: float,
                        grid: int = 2000, tolerance: float = 1e-6,
                        names: Optional[Sequence[str]] = None) -> bool:
    """Check that no player can gain more than ``tolerance`` by deviating."""
    actions = list(actions)
    current = payoffs(actions, capacity, names)
    for player in range(len(actions)):
        others = actions[:player] + actions[player + 1:]
        _, best_value = best_response(player, others, capacity, grid=grid,
                                      names=names)
        if best_value > current[player] + tolerance * max(1.0, capacity):
            return False
    return True


def best_response_dynamics(
    initial_actions: Sequence[float],
    capacity: float,
    max_rounds: int = 100,
    grid: int = 2000,
    tolerance: float = 1e-6,
    names: Optional[Sequence[str]] = None,
) -> Tuple[np.ndarray, int, bool]:
    """Iterate best responses until the profile stops changing.

    Returns ``(final_actions, rounds_used, converged)``.  Starting from any
    profile, the dynamics converge to the unique equilibrium where every
    player demands ``capacity / n`` (Theorem 5.1).
    """
    actions = [float(a) for a in initial_actions]
    for round_index in range(1, max_rounds + 1):
        changed = False
        for player in range(len(actions)):
            others = actions[:player] + actions[player + 1:]
            best_action, best_value = best_response(player, others, capacity,
                                                    grid=grid, names=names)
            current_value = payoff_of(player, actions[player], others,
                                      capacity, names)
            if best_value > current_value + tolerance * max(1.0, capacity):
                actions[player] = best_action
                changed = True
        if not changed:
            return np.asarray(actions), round_index, True
    return np.asarray(actions), max_rounds, False


def equilibrium_profile(n_players: int, capacity: float) -> np.ndarray:
    """The unique Nash equilibrium profile: every player demands ``C / n``."""
    if n_players <= 0:
        raise ValueError("n_players must be positive")
    return np.full(n_players, capacity / n_players, dtype=np.float64)


def aggregate_utility_equilibrium(n_players: int, capacity: float
                                  ) -> np.ndarray:
    """Equilibrium of an Aurora-style utility-maximising allocator.

    For contrast with our strategy (Section 5.3, last paragraph): when the
    system maximises the sum of utilities, every player's dominant strategy
    is to claim the full capacity ("my utility drops to zero below sampling
    rate 1"), i.e. to lie about its requirements.
    """
    if n_players <= 0:
        raise ValueError("n_players must be positive")
    return np.full(n_players, float(capacity), dtype=np.float64)
