"""Game-theoretic model of the resource allocation strategy (Section 5.3).

The load shedding strategy of Chapter 5 is modelled as a strategic game in
which each query is a player whose action is its *minimum cycle demand*
``a_q = m_q * d_q`` and whose payoff is the number of cycles the system ends
up allocating to it (Equation 5.7):

* if the sum of all minimum demands no larger than ``a_q`` exceeds the
  capacity ``C``, the query is disabled and its payoff is 0 (the system
  always disables the queries with the largest minimum demands first);
* otherwise the query receives its minimum demand plus a max-min fair share
  of the spare cycles left after satisfying every active query.

Theorem 5.1 states that the game has a single Nash equilibrium in which every
player demands exactly ``C / |Q|``.  This module provides the payoff
function, numeric best responses, best-response dynamics and an equilibrium
checker used to verify the theorem empirically.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def active_players(actions: Sequence[float], capacity: float) -> np.ndarray:
    """Boolean mask of players whose minimum demand the system satisfies.

    Player ``q`` is active iff the total of every demand less than or equal
    to ``a_q`` (including its own) fits within the capacity; this encodes the
    "disable the largest minimum demands first" policy.
    """
    actions = np.asarray(actions, dtype=np.float64)
    order = np.argsort(actions, kind="stable")
    cumulative = np.cumsum(actions[order])
    active_sorted = cumulative <= capacity + 1e-9
    active = np.zeros(len(actions), dtype=bool)
    active[order] = active_sorted
    return active


def payoffs(actions: Sequence[float], capacity: float) -> np.ndarray:
    """Payoff of every player for the action profile ``actions`` (Eq. 5.7).

    Active players receive their demand plus an equal (max-min fair, with no
    ceilings) share of the spare capacity; disabled players receive zero.
    """
    actions = np.asarray(actions, dtype=np.float64)
    if np.any(actions < 0):
        raise ValueError("demands must be non-negative")
    result = np.zeros(len(actions), dtype=np.float64)
    active = active_players(actions, capacity)
    if not active.any():
        return result
    spare = capacity - actions[active].sum()
    share = max(spare, 0.0) / active.sum()
    result[active] = actions[active] + share
    return result


def payoff_of(player: int, action: float, others: Sequence[float],
              capacity: float) -> float:
    """Payoff of ``player`` when it deviates to ``action``.

    ``others`` contains the actions of the remaining players in order; the
    player's action is inserted back at ``player``'s index.
    """
    profile = list(others)
    profile.insert(player, action)
    return float(payoffs(profile, capacity)[player])


def best_response(player: int, others: Sequence[float], capacity: float,
                  grid: int = 2000) -> Tuple[float, float]:
    """Numeric best response of ``player`` to the other players' actions.

    Searches a uniform grid over ``[0, capacity]`` plus the strategically
    relevant boundary points and returns ``(best_action, best_payoff)``.
    """
    candidates = np.linspace(0.0, capacity, grid + 1)
    # Boundary candidates: slightly below the capacity left by the others and
    # the equal-share point, where the payoff is discontinuous.
    others_arr = np.asarray(list(others), dtype=np.float64)
    n = len(others_arr) + 1
    extra = [max(0.0, capacity - others_arr.sum()), capacity / n]
    candidates = np.concatenate([candidates, np.asarray(extra)])
    best_action, best_value = 0.0, -np.inf
    for action in candidates:
        value = payoff_of(player, float(action), others, capacity)
        if value > best_value + 1e-12:
            best_value = value
            best_action = float(action)
    return best_action, float(best_value)


def is_nash_equilibrium(actions: Sequence[float], capacity: float,
                        grid: int = 2000, tolerance: float = 1e-6) -> bool:
    """Check that no player can gain more than ``tolerance`` by deviating."""
    actions = list(actions)
    current = payoffs(actions, capacity)
    for player in range(len(actions)):
        others = actions[:player] + actions[player + 1:]
        _, best_value = best_response(player, others, capacity, grid=grid)
        if best_value > current[player] + tolerance * max(1.0, capacity):
            return False
    return True


def best_response_dynamics(
    initial_actions: Sequence[float],
    capacity: float,
    max_rounds: int = 100,
    grid: int = 2000,
    tolerance: float = 1e-6,
) -> Tuple[np.ndarray, int, bool]:
    """Iterate best responses until the profile stops changing.

    Returns ``(final_actions, rounds_used, converged)``.  Starting from any
    profile, the dynamics converge to the unique equilibrium where every
    player demands ``capacity / n`` (Theorem 5.1).
    """
    actions = [float(a) for a in initial_actions]
    for round_index in range(1, max_rounds + 1):
        changed = False
        for player in range(len(actions)):
            others = actions[:player] + actions[player + 1:]
            best_action, best_value = best_response(player, others, capacity,
                                                    grid=grid)
            current_value = payoff_of(player, actions[player], others, capacity)
            if best_value > current_value + tolerance * max(1.0, capacity):
                actions[player] = best_action
                changed = True
        if not changed:
            return np.asarray(actions), round_index, True
    return np.asarray(actions), max_rounds, False


def equilibrium_profile(n_players: int, capacity: float) -> np.ndarray:
    """The unique Nash equilibrium profile: every player demands ``C / n``."""
    if n_players <= 0:
        raise ValueError("n_players must be positive")
    return np.full(n_players, capacity / n_players, dtype=np.float64)


def aggregate_utility_equilibrium(n_players: int, capacity: float
                                  ) -> np.ndarray:
    """Equilibrium of an Aurora-style utility-maximising allocator.

    For contrast with our strategy (Section 5.3, last paragraph): when the
    system maximises the sum of utilities, every player's dominant strategy
    is to claim the full capacity ("my utility drops to zero below sampling
    rate 1"), i.e. to lie about its requirements.
    """
    if n_players <= 0:
        raise ValueError("n_players must be positive")
    return np.full(n_players, float(capacity), dtype=np.float64)
