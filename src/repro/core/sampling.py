"""Load shedding mechanisms: packet and flow sampling (Section 4.2).

Two data-reduction mechanisms are supported, selected per query at
configuration time:

* *Packet sampling* — every packet of the batch is kept independently with
  probability ``p`` (the sampling rate).
* *Flowwise flow sampling* — entire 5-tuple flows are kept with probability
  ``p`` using a hash-based selection (no per-flow state): a packet is kept
  when ``h(5-tuple) <= p`` for an H3 hash ``h`` drawn afresh every
  measurement interval, so selection cannot be predicted or evaded.

Both mechanisms are unbiased: scaling additive per-packet (respectively
per-flow) statistics by ``1 / p`` recovers the unsampled value in
expectation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from .hashing import H3Hash

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from ..monitor.packet import Batch

#: Cycle cost charged per packet touched by the samplers; part of the
#: ``ls_cycles`` overhead tracked by Algorithm 1.
SAMPLING_CYCLES_PER_PACKET = 8.0
SAMPLING_CYCLES_FIXED = 500.0


class PacketSampler:
    """Uniform random packet sampling."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def sample(self, batch: "Batch", rate: float) -> "Batch":
        """Return a new batch with each packet kept with probability ``rate``."""
        rate = _validate_rate(rate)
        if rate >= 1.0 or len(batch) == 0:
            return batch
        if rate <= 0.0:
            return batch.select(np.zeros(len(batch), dtype=bool))
        keep = self._rng.random(len(batch)) < rate
        return batch.select(keep)

    def cost(self, batch: "Batch") -> float:
        """Simulated cycle cost of sampling ``batch``."""
        return SAMPLING_CYCLES_FIXED + SAMPLING_CYCLES_PER_PACKET * len(batch)


class FlowSampler:
    """Hash-based ("flowwise") flow sampling.

    A packet is kept when the H3 hash of its 5-tuple, mapped to ``[0, 1)``,
    is below the sampling rate; all packets of a flow therefore share the
    same fate.  The hash function is re-drawn at every measurement-interval
    boundary (:meth:`renew_hash`).
    """

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 measurement_interval: float = 1.0) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.measurement_interval = float(measurement_interval)
        self._hash = H3Hash(rng=self._rng)
        self._interval_start: Optional[float] = None

    def renew_hash(self) -> None:
        """Draw a fresh H3 hash function (called every measurement interval)."""
        self._hash = H3Hash(rng=self._rng)

    def _maybe_renew(self, batch_start: float) -> None:
        if self._interval_start is None:
            self._interval_start = batch_start
            return
        if batch_start - self._interval_start >= self.measurement_interval:
            elapsed = batch_start - self._interval_start
            steps = int(elapsed // self.measurement_interval)
            self._interval_start += steps * self.measurement_interval
            self.renew_hash()

    def sample(self, batch: "Batch", rate: float) -> "Batch":
        """Return the sub-batch whose flows hash below ``rate``."""
        rate = _validate_rate(rate)
        self._maybe_renew(batch.start_ts)
        if rate >= 1.0 or len(batch) == 0:
            return batch
        if rate <= 0.0:
            return batch.select(np.zeros(len(batch), dtype=bool))
        keys = batch.aggregate_hashes(
            ("src_ip", "dst_ip", "src_port", "dst_port", "proto"))
        keep = self._hash.unit_interval(keys) < rate
        return batch.select(keep)

    def cost(self, batch: "Batch") -> float:
        """Simulated cycle cost of sampling ``batch``."""
        return SAMPLING_CYCLES_FIXED + SAMPLING_CYCLES_PER_PACKET * len(batch)


def _validate_rate(rate: float) -> float:
    if not np.isfinite(rate):
        raise ValueError("sampling rate must be finite")
    return float(min(max(rate, 0.0), 1.0))


def scale_estimate(value: float, sampling_rate: float) -> float:
    """Estimate an unsampled additive statistic from its sampled value.

    This is the correction applied by the sampling-robust queries: multiply
    by the inverse of the sampling rate (Section 2.2).  A rate of zero means
    nothing was observed; the estimate is then zero.
    """
    rate = _validate_rate(sampling_rate)
    if rate <= 0.0:
        return 0.0
    return float(value) / rate


def scale_estimates(values: np.ndarray, sampling_rate: float) -> np.ndarray:
    """Vectorised :func:`scale_estimate` over an array of sampled values.

    Element-for-element identical to calling the scalar version (same
    float64 division), which is what lets vectorised query paths replace
    per-item loops without perturbing golden results.
    """
    rate = _validate_rate(sampling_rate)
    values = np.asarray(values, dtype=np.float64)
    if rate <= 0.0:
        return np.zeros_like(values)
    return values / rate
