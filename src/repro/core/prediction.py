"""CPU-usage predictors (Chapter 3).

Three predictors share a common interface:

* :class:`MLRPredictor` — the paper's method: FCBF feature selection over a
  sliding history followed by multiple linear regression (fit via SVD).
* :class:`SLRPredictor` — simple linear regression on a single, fixed
  feature (the number of packets by default), the first baseline.
* :class:`EWMAPredictor` — exponentially weighted moving average of the past
  CPU usage, ignoring the traffic entirely, the second baseline.

The interface is deliberately tiny because the load shedding scheme treats
queries as black boxes: ``predict`` maps the features of the next batch to
expected cycles, and ``observe`` feeds back the measured cycles afterwards.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from .fcbf import fcbf_select, selection_cost
from .features import FEATURE_NAMES, FeatureVector
from .regression import MultipleLinearRegression, SlidingHistory

#: Default history length: 60 batches = 6 s of traffic (Section 3.3.1).
DEFAULT_HISTORY = 60
#: Default FCBF threshold (Section 3.3.1).
DEFAULT_FCBF_THRESHOLD = 0.6
#: Default EWMA weight (Section 3.4.1, Figure 3.10).
DEFAULT_EWMA_ALPHA = 0.3


class CyclePredictor(ABC):
    """Interface of per-query CPU-cycle predictors."""

    @abstractmethod
    def predict(self, features: FeatureVector) -> float:
        """Predicted cycles the query will need for a batch with ``features``."""

    @abstractmethod
    def observe(self, features: FeatureVector, cycles: float) -> None:
        """Record the measured cycles for a batch with ``features``."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all history."""

    def replace_last_observation(self, cycles: float) -> None:
        """Overwrite the response of the most recent observation.

        Used when a measurement is known to be corrupted (e.g. a context
        switch happened while the query was running, Section 4.4); the
        default is a no-op for predictors without an explicit history.
        """

    @property
    def overhead_cycles(self) -> float:
        """Simulated cycles consumed by the last ``predict`` call."""
        return 0.0


class EWMAPredictor(CyclePredictor):
    """Exponentially weighted moving average of past CPU usage.

    ``prediction(t+1) = alpha * cycles(t) + (1 - alpha) * prediction(t)``.
    """

    def __init__(self, alpha: float = DEFAULT_EWMA_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)
        self._estimate: Optional[float] = None

    def predict(self, features: FeatureVector) -> float:
        return float(self._estimate) if self._estimate is not None else 0.0

    def observe(self, features: FeatureVector, cycles: float) -> None:
        if self._estimate is None:
            self._estimate = float(cycles)
        else:
            self._estimate = (self.alpha * float(cycles) +
                              (1.0 - self.alpha) * self._estimate)

    def reset(self) -> None:
        self._estimate = None


def _feature_values(features) -> np.ndarray:
    """Accept either a :class:`FeatureVector` or a plain array of values."""
    return np.asarray(getattr(features, "values", features), dtype=np.float64)


class SLRPredictor(CyclePredictor):
    """Simple linear regression on a single, fixed traffic feature."""

    def __init__(self, feature: str = "packets",
                 history: int = DEFAULT_HISTORY) -> None:
        if feature not in FEATURE_NAMES:
            raise ValueError(f"unknown feature {feature!r}")
        self.feature = feature
        self._feature_index = FEATURE_NAMES.index(feature)
        self.history = SlidingHistory(history)
        self._model = MultipleLinearRegression()
        self._fit_version: Optional[int] = None

    def predict(self, features: FeatureVector) -> float:
        if len(self.history) < 2:
            # Not enough observations: fall back to the last measured value.
            responses = self.history.responses()
            return float(responses[-1]) if len(responses) else 0.0
        if self._fit_version != self.history.version \
                or not self._model.is_fitted:
            matrix = self.history.feature_matrix([self._feature_index])
            self._model.fit(matrix, self.history.responses())
            self._fit_version = self.history.version
        values = _feature_values(features)
        prediction = self._model.predict(
            np.array([values[self._feature_index]]))
        return max(0.0, float(prediction))

    def observe(self, features: FeatureVector, cycles: float) -> None:
        self.history.append(_feature_values(features), cycles)

    def replace_last_observation(self, cycles: float) -> None:
        if len(self.history):
            self.history.replace_last(cycles)

    def reset(self) -> None:
        self.history.clear()
        self._model = MultipleLinearRegression()
        self._fit_version = None


class MLRPredictor(CyclePredictor):
    """FCBF feature selection + multiple linear regression (the paper's method).

    Feature selection reruns whenever the history window changed since the
    last fit, so the model adapts when traffic changes make the previous
    feature set obsolete (Section 3.1).  When the window is *unchanged*
    (e.g. a fully shed query whose measurements never arrive), the selected
    set and the fitted model are reused — the memo only skips real CPU; the
    simulated overhead charge is computed identically either way, so results
    stay bit-identical.  The selected feature names are exposed through
    :attr:`selected_features` for reporting (Table 3.2).
    """

    def __init__(self, history: int = DEFAULT_HISTORY,
                 fcbf_threshold: float = DEFAULT_FCBF_THRESHOLD,
                 feature_names: Sequence[str] = FEATURE_NAMES) -> None:
        self.history = SlidingHistory(history)
        self.fcbf_threshold = float(fcbf_threshold)
        self.feature_names = tuple(feature_names)
        self._model = MultipleLinearRegression()
        self._selected: List[int] = []
        self._overhead = 0.0
        self._fit_version: Optional[int] = None
        #: Cycle cost charged per coefficient of the fitted MLR; with FCBF
        #: pruning this keeps the regression share of the overhead small
        #: (Table 3.4).
        self.cycles_per_mlr_term = 3.0

    # ------------------------------------------------------------------
    @property
    def selected_features(self) -> List[str]:
        """Names of the features used by the most recent prediction."""
        return [self.feature_names[i] for i in self._selected]

    @property
    def overhead_cycles(self) -> float:
        return self._overhead

    # ------------------------------------------------------------------
    def predict(self, features: FeatureVector) -> float:
        n = len(self.history)
        if n < 2:
            responses = self.history.responses()
            return float(responses[-1]) if len(responses) else 0.0
        if self._fit_version != self.history.version \
                or not self._model.is_fitted:
            matrix, responses = self.history.observations()
            self._selected = fcbf_select(matrix, responses,
                                         threshold=self.fcbf_threshold)
            selected_matrix = matrix[:, self._selected]
            self._model.fit(selected_matrix, responses)
            self._fit_version = self.history.version
        values = _feature_values(features)
        prediction = self._model.predict(values[self._selected])
        # The simulated charge models what the real system would pay each
        # bin; it must not depend on whether the memo hit.
        self._overhead = (
            selection_cost(n, self.history.width) +
            self.cycles_per_mlr_term * n * (len(self._selected) + 1))
        return max(0.0, float(prediction))

    def observe(self, features: FeatureVector, cycles: float) -> None:
        self.history.append(_feature_values(features), cycles)

    def replace_last_observation(self, cycles: float) -> None:
        if len(self.history):
            self.history.replace_last(cycles)

    def reset(self) -> None:
        self.history.clear()
        self._model = MultipleLinearRegression()
        self._selected = []
        self._overhead = 0.0
        self._fit_version = None


class PredictionErrorTracker:
    """Running statistics of relative prediction error.

    The relative error of one batch is ``|1 - predicted / actual|`` (the
    definition of Section 3.3); the tracker accumulates the series and
    provides the summary statistics used in the evaluation figures.
    """

    def __init__(self) -> None:
        self.errors: List[float] = []

    def record(self, predicted: float, actual: float) -> float:
        if actual <= 0.0:
            error = 0.0 if predicted <= 0.0 else 1.0
        else:
            error = abs(1.0 - predicted / actual)
        self.errors.append(error)
        return error

    @property
    def mean(self) -> float:
        return float(np.mean(self.errors)) if self.errors else 0.0

    @property
    def std(self) -> float:
        return float(np.std(self.errors)) if self.errors else 0.0

    @property
    def maximum(self) -> float:
        return float(np.max(self.errors)) if self.errors else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.errors, q)) if self.errors else 0.0

    def series(self) -> np.ndarray:
        return np.array(self.errors, dtype=np.float64)


#: Valid predictor kinds accepted by :func:`make_predictor` (and validated
#: eagerly by :class:`~repro.monitor.config.SystemConfig`).
PREDICTOR_KINDS = ("mlr", "slr", "ewma")


def make_predictor(kind: str, **kwargs) -> CyclePredictor:
    """Factory: ``"mlr"``, ``"slr"`` or ``"ewma"``."""
    if kind == "mlr":
        return MLRPredictor(**kwargs)
    if kind == "slr":
        return SLRPredictor(**kwargs)
    if kind == "ewma":
        return EWMAPredictor(**kwargs)
    raise ValueError(f"unknown predictor kind {kind!r}; "
                     f"valid kinds: {PREDICTOR_KINDS}")
