"""Core of the reproduction: the paper's prediction and load shedding scheme.

Sub-modules:

* :mod:`repro.core.features`   — 42-feature traffic extraction (Section 3.2.1)
* :mod:`repro.core.fcbf`       — feature selection (Section 3.2.3)
* :mod:`repro.core.regression` — OLS / MLR machinery (Section 3.2.2)
* :mod:`repro.core.prediction` — MLR+FCBF, SLR and EWMA predictors
* :mod:`repro.core.sampling`   — packet and flowwise flow sampling
* :mod:`repro.core.shedding`   — Algorithm 1 controller and buffer discovery
* :mod:`repro.core.fairness`   — eq_srates / mmfs_cpu / mmfs_pkt strategies
* :mod:`repro.core.game`       — Nash-equilibrium model (Section 5.3)
* :mod:`repro.core.custom`     — custom load shedding enforcement (Chapter 6)
* :mod:`repro.core.cycles`     — simulated cycle accounting substrate
"""

from .cycles import CycleBudget, CycleClock, CycleMeter, OperationCosts
from .custom import CustomShedEnforcer
from .fairness import (Allocation, QueryDemand, eq_srates, get_strategy,
                       mmfs_cpu, mmfs_pkt)
from .features import FEATURE_NAMES, FeatureExtractor, FeatureVector
from .fcbf import fcbf_select, linear_correlation
from .game import (best_response, best_response_dynamics, equilibrium_profile,
                   is_nash_equilibrium, payoffs)
from .prediction import (EWMAPredictor, MLRPredictor, PredictionErrorTracker,
                         SLRPredictor, make_predictor)
from .regression import MultipleLinearRegression, SlidingHistory, ols_svd
from .sampling import FlowSampler, PacketSampler, scale_estimate
from .shedding import (BufferDiscovery, LoadSheddingController, ShedPlan,
                       reactive_rate)

__all__ = [
    "Allocation",
    "BufferDiscovery",
    "CustomShedEnforcer",
    "CycleBudget",
    "CycleClock",
    "CycleMeter",
    "EWMAPredictor",
    "FEATURE_NAMES",
    "FeatureExtractor",
    "FeatureVector",
    "FlowSampler",
    "LoadSheddingController",
    "MLRPredictor",
    "MultipleLinearRegression",
    "OperationCosts",
    "PacketSampler",
    "PredictionErrorTracker",
    "QueryDemand",
    "SLRPredictor",
    "ShedPlan",
    "SlidingHistory",
    "best_response",
    "best_response_dynamics",
    "eq_srates",
    "equilibrium_profile",
    "fcbf_select",
    "get_strategy",
    "is_nash_equilibrium",
    "linear_correlation",
    "make_predictor",
    "mmfs_cpu",
    "mmfs_pkt",
    "ols_svd",
    "payoffs",
    "reactive_rate",
    "scale_estimate",
]
