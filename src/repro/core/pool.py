"""Shared fork-pool machinery for CPU-bound fan-out.

Both the parallel scenario engine (grids of independent cells) and the
sharded monitoring pipeline (per-shard workers over one stream) shard pure,
CPU-bound job functions across a process pool.  The mechanics are identical
— clamp the pool to the host's cores, prefer the ``fork`` start method so
workers inherit memoised traces / pre-partitioned batches copy-on-write,
fall back to serial execution when a pool cannot help — so they live here
once.

Jobs must be *pure* with respect to the pool: the same job must produce the
same result whether it runs inline or in a worker, which is what lets the
golden tests pin serial/pooled bit-identity.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator, List, Sequence, TypeVar

_Job = TypeVar("_Job")
_Result = TypeVar("_Result")


@contextmanager
def pool_state(state: dict, **values) -> Iterator[dict]:
    """Populate a module-level pre-fork state dict, *guaranteed* cleared.

    Fork-inherited job functions read their inputs from a module global that
    the caller fills just before the pool map.  That handoff must not leak:
    if a worker raises, the parent would otherwise keep (and every later
    fork would inherit) arbitrarily large state — e.g. a whole pre-
    partitioned stream.  Using this context manager makes clearing
    exception-safe by construction::

        with pool_state(_POOL_STATE, slices=slices, configs=configs):
            results = fork_pool_map(job, jobs, n_workers)
    """
    state.update(values)
    try:
        yield state
    finally:
        state.clear()


def effective_workers(n_workers: int, n_jobs: int,
                      respect_cores: bool = True) -> int:
    """Pool size actually worth using for ``n_jobs`` CPU-bound jobs.

    A pool wider than the job list idles; a pool wider than the core count
    only adds fork and IPC overhead, so the requested size is clamped to the
    host unless the caller opts out (``respect_cores=False``, e.g. to
    exercise the fork path on a single-core machine).
    """
    workers = min(int(n_workers), int(n_jobs))
    if respect_cores:
        workers = min(workers, os.cpu_count() or 1)
    return workers


def fork_pool_map(fn: Callable[[_Job], _Result], jobs: Sequence[_Job],
                  n_workers: int, respect_cores: bool = True,
                  require_fork: bool = False) -> List[_Result]:
    """Map ``fn`` over ``jobs``, sharding across a fork-based process pool.

    Runs serially in-process when the effective pool size is <= 1.  The
    ``fork`` start method is preferred so that workers inherit the parent's
    memoised state copy-on-write; on platforms without ``fork`` the default
    start method is used unless ``require_fork`` is set, in which case the
    jobs run serially instead (for job functions that read parent globals
    populated just before the map, which a spawned worker would not see).
    """
    workers = effective_workers(n_workers, len(jobs), respect_cores)
    if workers <= 1:
        return [fn(job) for job in jobs]
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        if require_fork:
            return [fn(job) for job in jobs]
        context = None
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        return list(pool.map(fn, jobs, chunksize=1))


__all__ = ["effective_workers", "fork_pool_map", "pool_state"]
