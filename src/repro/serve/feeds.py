"""Async batch sources feeding the monitoring daemon.

The offline pipeline pulls a finished trace through a session; a live
monitor is the other way round — batches arrive over time, from wherever
the packets come from.  A :class:`Feed` is that inversion: an async
iterator of :class:`~repro.monitor.packet.Batch` objects, one per
``time_bin``, empty bins included, so the consuming session observes the
same continuous timeline the offline replay does.  Four sources cover the
spectrum from reproduction to deployment:

:class:`ReplayFeed`
    A recorded trace (in-memory, streaming view, or a v2 store on disk),
    replayed as fast as the session can ingest or paced against the wall
    clock at any multiple of real time.
:class:`TailFeed`
    Follows a v2 trace store *while it is still being written*
    (``TraceWriter.flush`` publishes incremental manifests): yields each
    bin once its boundary is safely in the past of the written data, then
    terminates when the writer closes the store.  ``tail -f`` for traces.
:class:`GeneratorFeed`
    Unbounded synthetic traffic from a
    :class:`~repro.traffic.generator.TrafficProfile`, produced segment by
    segment with the same deterministic per-segment seeding as
    ``generate_trace_store`` — an infinite soak-test source that is still
    exactly reproducible from ``(profile, seed)``.
:class:`SocketFeed`
    Listens on a TCP port for newline-delimited JSON packet records from
    external producers and assembles them into bins at ``time_bin``
    boundaries.

All feeds expose a little live telemetry for the ops API: ``lag_seconds``
(how far batch delivery trails its schedule), ``idle`` (caught up,
waiting for more data) and ``done`` (source exhausted).  ``stop()`` asks
the feed to wind down; the iterator then finishes cleanly.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import replace
from pathlib import Path
from typing import AsyncIterator, List, Optional, Union

import numpy as np

from ..monitor.packet import (
    Batch,
    COLUMN_DTYPES,
    COLUMN_FIELDS,
    StreamingTrace,
    as_trace,
    ip,
)
from ..traffic.generator import TrafficProfile, generate_trace
from ..traffic.trace_io import TraceStore, open_trace

__all__ = [
    "Feed",
    "GeneratorFeed",
    "ReplayFeed",
    "SocketFeed",
    "TailFeed",
]


class Feed:
    """Base class: an async source of per-bin :class:`Batch` objects.

    Subclasses implement :meth:`batches`; the attributes below are live
    telemetry the daemon surfaces through ``/status`` and ``/metrics``.
    """

    #: Bin duration in seconds; every yielded batch covers one bin.
    time_bin: float = 0.1
    #: Human-readable source name.
    name: str = "feed"
    #: Seconds the latest batch trailed its schedule (paced/live feeds).
    lag_seconds: float = 0.0
    #: True while the feed is caught up and waiting for more data.
    idle: bool = False
    #: True once the source is exhausted and iteration has ended.
    done: bool = False

    def __init__(self, time_bin: float = 0.1, name: str = "feed") -> None:
        self.time_bin = float(time_bin)
        if self.time_bin <= 0:
            raise ValueError("time_bin must be positive")
        self.name = name
        self.lag_seconds = 0.0
        self.idle = False
        self.done = False
        self._stopping = False

    @property
    def kind(self) -> str:
        """Short feed-type tag (``replay``, ``tail``, ``generate``, ...)."""
        return type(self).__name__.replace("Feed", "").lower()

    def stop(self) -> None:
        """Ask the feed to finish; :meth:`batches` returns soon after."""
        self._stopping = True

    def batches(self) -> AsyncIterator[Batch]:
        """Asynchronously yield one batch per ``time_bin``."""
        raise NotImplementedError

    async def _pace_gate(self, pace: float, wall_start: float,
                         bins_out: int) -> None:
        """Sleep until bin ``bins_out`` is due; maintain ``lag_seconds``.

        With ``pace == 0`` delivery is unpaced (a bare yield to the event
        loop keeps the daemon's ops handlers responsive); ``pace == 1``
        replays in real time, ``pace == 2`` at double speed, and so on.
        """
        if pace <= 0:
            self.lag_seconds = 0.0
            await asyncio.sleep(0)
            return
        loop = asyncio.get_running_loop()
        due = wall_start + (bins_out + 1) * self.time_bin / pace
        now = loop.time()
        self.lag_seconds = max(0.0, now - due)
        if due > now:
            await asyncio.sleep(due - now)


class ReplayFeed(Feed):
    """Replay a recorded trace as a feed, optionally paced to wall time.

    ``source`` is anything :func:`~repro.monitor.packet.as_trace` accepts
    — a :class:`PacketTrace`, a :class:`StreamingTrace`, a
    :class:`~repro.traffic.trace_io.TraceStore` — or a filesystem path to
    a saved trace / v2 store.  The batches delivered are exactly the
    batches ``trace.batches(time_bin)`` yields, so a daemon fed by an
    unpaced ReplayFeed reproduces the offline pipeline bit for bit.
    """

    def __init__(self, source, time_bin: float = 0.1, pace: float = 0.0,
                 chunk_packets: int = 65536,
                 max_resident_chunks: int = 8) -> None:
        if isinstance(source, (str, Path)):
            source = open_trace(source)
        if isinstance(source, TraceStore):
            source = source.streaming(chunk_packets=chunk_packets,
                                      max_resident_chunks=max_resident_chunks)
        self._trace = as_trace(source)
        super().__init__(time_bin=time_bin,
                         name=getattr(self._trace, "name", "replay"))
        self.pace = float(pace)

    async def batches(self) -> AsyncIterator[Batch]:
        loop = asyncio.get_running_loop()
        bins = self._trace.batch_list(self.time_bin)
        wall_start = loop.time()
        try:
            for index in range(len(bins)):
                if self._stopping:
                    break
                # Building a bin may touch the disk (streaming traces);
                # do it off the event loop so ops requests stay snappy.
                batch = await loop.run_in_executor(None, bins.__getitem__,
                                                   index)
                yield batch
                await self._pace_gate(self.pace, wall_start, index)
        finally:
            if isinstance(self._trace, StreamingTrace):
                self._trace.close()
            self.done = True


class TailFeed(Feed):
    """Follow a v2 trace store that another process is still writing.

    The writer publishes incremental manifests with ``complete: false``
    on every :meth:`~repro.traffic.trace_io.TraceWriter.flush`; this feed
    polls the manifest and yields every bin whose upper edge lies at or
    before the last written timestamp — those bins can never gain another
    packet, because stores are written in timestamp order.  The final
    (possibly partial) bin is withheld until the writer closes the store,
    at which point every remaining bin is delivered and the feed ends.

    Bin edges are anchored at the store's first timestamp, which is fixed
    from the writer's first flush onward — so the bins this feed emits are
    identical to what a post-hoc replay of the finished store emits, no
    matter how the flushes and polls interleaved.
    """

    def __init__(self, path: Union[str, Path], time_bin: float = 0.1,
                 poll_interval: float = 0.2) -> None:
        super().__init__(time_bin=time_bin, name=Path(path).name)
        self.path = Path(path)
        self.poll_interval = float(poll_interval)

    def _open_store(self) -> Optional[TraceStore]:
        try:
            return TraceStore(self.path)
        except (FileNotFoundError, json.JSONDecodeError):
            return None  # not created yet, or mid-first-write

    async def batches(self) -> AsyncIterator[Batch]:
        loop = asyncio.get_running_loop()
        yielded = 0
        while not self._stopping:
            store = await loop.run_in_executor(None, self._open_store)
            if store is None or len(store) == 0:
                if store is not None and store.complete:
                    break  # closed empty: nothing to tail
                self.idle = True
                await asyncio.sleep(self.poll_interval)
                continue
            ts = store.column("ts")
            start_ts, end_ts = float(ts[0]), float(ts[-1])
            n_bins = int(np.floor((end_ts - start_ts) / self.time_bin)) + 1
            if store.complete:
                available = n_bins
            else:
                # Only bins whose upper edge <= end_ts are immutable.
                available = max(0, n_bins - 1)
            if available > yielded:
                self.idle = False
                trace = store.streaming()
                try:
                    bins = trace.batch_list(self.time_bin)
                    for index in range(yielded, available):
                        if self._stopping:
                            return
                        batch = await loop.run_in_executor(
                            None, bins.__getitem__, index)
                        yield batch
                        await asyncio.sleep(0)
                finally:
                    trace.close()
                yielded = available
            if store.complete and yielded >= n_bins:
                break
            self.idle = True
            self.lag_seconds = max(
                0.0, (n_bins - yielded) * self.time_bin)
            await asyncio.sleep(self.poll_interval)
        self.done = True


def _concat_batches(parts: List[Batch], time_bin: float) -> Batch:
    """Concatenate batches into one (columns stacked, payloads chained)."""
    parts = [p for p in parts if len(p) > 0]
    if not parts:
        return Batch.empty(time_bin=time_bin)
    if len(parts) == 1:
        return parts[0]
    columns = {
        name: np.concatenate([getattr(p, name) for p in parts])
        for name in COLUMN_FIELDS
    }
    payloads = None
    if all(p.payloads is not None for p in parts):
        payloads = [pl for p in parts for pl in p.payloads]
    return Batch(payloads=payloads, time_bin=time_bin, **columns)


class GeneratorFeed(Feed):
    """Synthesise live traffic, segment by segment, forever if asked.

    Generation follows the ``generate_trace_store`` recipe exactly: the
    stream is a sequence of ``segment_duration``-second segments, segment
    ``i`` drawn from the deterministic seed
    ``SeedSequence([seed, i])`` and time-shifted to its position.  The
    same ``(profile, seed)`` therefore always produces the same packet
    stream, which is what makes a soak-tested daemon's results
    reproducible after the fact.

    ``max_bins`` bounds the stream (handy for tests and demos); with
    ``profile.duration`` as the horizon the feed ends when the profile
    does.  Set ``duration`` to ``float('inf')`` for an endless source.
    """

    def __init__(self, profile: Optional[TrafficProfile] = None,
                 seed: int = 0, time_bin: float = 0.1,
                 segment_duration: float = 10.0, pace: float = 0.0,
                 max_bins: Optional[int] = None) -> None:
        self.profile = profile if profile is not None else TrafficProfile()
        super().__init__(time_bin=time_bin, name=self.profile.name)
        self.seed = int(seed)
        self.segment_duration = float(segment_duration)
        if self.segment_duration <= 0:
            raise ValueError("segment_duration must be positive")
        self.pace = float(pace)
        self.max_bins = max_bins if max_bins is None else int(max_bins)

    def _segment(self, index: int) -> Batch:
        """Segment ``index``'s packets, time-shifted into stream position."""
        offset = index * self.segment_duration
        seg_len = min(self.segment_duration, self.profile.duration - offset)
        seg_profile = replace(self.profile, duration=seg_len)
        seg_seed = int(np.random.SeedSequence([self.seed, index])
                       .generate_state(1)[0])
        segment = generate_trace(seg_profile, seed=seg_seed)
        pkts = segment.packets
        if len(pkts) == 0:
            return pkts
        return Batch(ts=pkts.ts + offset, src_ip=pkts.src_ip,
                     dst_ip=pkts.dst_ip, src_port=pkts.src_port,
                     dst_port=pkts.dst_port, proto=pkts.proto,
                     size=pkts.size, payloads=pkts.payloads)

    def _slice_bins(self, carry: Batch, first_ts: float, start_bin: int,
                    stop_bin: int) -> List[Batch]:
        """Bins ``[start_bin, stop_bin)`` of ``carry`` on the global grid."""
        edges = first_ts + self.time_bin * np.arange(start_bin, stop_bin + 1)
        bounds = np.searchsorted(carry.ts, edges)
        out: List[Batch] = []
        for i in range(stop_bin - start_bin):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            if hi > lo:
                batch = carry.select(np.arange(lo, hi))
            else:
                batch = Batch.empty(time_bin=self.time_bin,
                                    with_payloads=carry.payloads is not None)
            batch.time_bin = self.time_bin
            batch.start_ts = float(edges[i])
            out.append(batch)
        return out

    async def batches(self) -> AsyncIterator[Batch]:
        loop = asyncio.get_running_loop()
        wall_start = loop.time()
        carry = Batch.empty(time_bin=self.time_bin)
        first_ts: Optional[float] = None
        bins_out = 0
        index = 0
        try:
            while not self._stopping:
                offset = index * self.segment_duration
                if offset >= self.profile.duration:
                    break
                segment = await loop.run_in_executor(None, self._segment,
                                                     index)
                index += 1
                carry = _concat_batches([carry, segment], self.time_bin)
                if len(carry) == 0:
                    continue
                if first_ts is None:
                    first_ts = float(carry.ts[0])
                # Later segments only add packets at ts >= next offset, so
                # every bin ending at or before it is final and safe to emit.
                boundary = index * self.segment_duration
                n_complete = int(np.floor((boundary - first_ts)
                                          / self.time_bin))
                if self.max_bins is not None:
                    n_complete = min(n_complete, self.max_bins)
                if n_complete > bins_out:
                    for batch in self._slice_bins(carry, first_ts, bins_out,
                                                  n_complete):
                        if self._stopping:
                            return
                        yield batch
                        bins_out += 1
                        await self._pace_gate(self.pace, wall_start,
                                              bins_out - 1)
                    keep_from = int(np.searchsorted(
                        carry.ts, first_ts + n_complete * self.time_bin))
                    carry = carry.select(np.arange(keep_from, len(carry)))
                if self.max_bins is not None and bins_out >= self.max_bins:
                    return
            # Horizon reached: drain whatever the carry still holds.
            if not self._stopping and len(carry) > 0 and first_ts is not None:
                last_ts = float(carry.ts[-1])
                n_total = int(np.floor((last_ts - first_ts)
                                       / self.time_bin)) + 1
                if self.max_bins is not None:
                    n_total = min(n_total, self.max_bins)
                for batch in self._slice_bins(carry, first_ts, bins_out,
                                              n_total):
                    if self._stopping:
                        return
                    yield batch
                    bins_out += 1
                    await self._pace_gate(self.pace, wall_start, bins_out - 1)
        finally:
            self.done = True


def _parse_addr(value) -> int:
    """An IPv4 address from an int or dotted-quad string."""
    if isinstance(value, str):
        octets = value.split(".")
        if len(octets) != 4:
            raise ValueError(f"bad IPv4 address {value!r}")
        return ip(*(int(o) for o in octets))
    return int(value)


class SocketFeed(Feed):
    """Accept JSONL packet records over TCP and bin them into batches.

    Producers connect to ``(host, port)`` and write one JSON object per
    line; recognised fields are ``ts`` (required, seconds), ``src_ip`` /
    ``dst_ip`` (int or dotted quad), ``src_port`` / ``dst_port``,
    ``proto`` and ``size``.  Bins are anchored at the first packet's
    timestamp; a bin is emitted as soon as a packet beyond its upper edge
    arrives (records are expected in roughly timestamp order — stragglers
    landing in an already-emitted bin are counted in ``late_packets`` and
    dropped, exactly what a live capture would do).  :meth:`stop` flushes
    the partial last bin and ends the feed.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 time_bin: float = 0.1) -> None:
        super().__init__(time_bin=time_bin, name=f"{host}:{port}")
        self.host = host
        self.port = int(port)
        #: Packets that arrived for an already-emitted bin (dropped).
        self.late_packets = 0
        self._queue: asyncio.Queue = asyncio.Queue()
        self._server: Optional[asyncio.AbstractServer] = None
        self._pending: List[dict] = []
        self._first_ts: Optional[float] = None
        self._bins_emitted = 0

    @property
    def bound_port(self) -> int:
        """The port actually bound (useful when constructed with port 0)."""
        if self._server is None:
            return self.port
        return self._server.sockets[0].getsockname()[1]

    def _records_to_batch(self, records: List[dict], start_ts: float) -> Batch:
        if not records:
            return Batch.empty(time_bin=self.time_bin, start_ts=start_ts)
        records = sorted(records, key=lambda r: float(r["ts"]))
        columns = {
            name: np.empty(len(records), dtype=COLUMN_DTYPES[name])
            for name in COLUMN_FIELDS
        }
        for row, rec in enumerate(records):
            columns["ts"][row] = float(rec["ts"])
            columns["src_ip"][row] = _parse_addr(rec.get("src_ip", 0))
            columns["dst_ip"][row] = _parse_addr(rec.get("dst_ip", 0))
            columns["src_port"][row] = int(rec.get("src_port", 0))
            columns["dst_port"][row] = int(rec.get("dst_port", 0))
            columns["proto"][row] = int(rec.get("proto", 6))
            columns["size"][row] = int(rec.get("size", 64))
        return Batch(time_bin=self.time_bin, start_ts=start_ts, **columns)

    def _flush_through(self, upto_ts: Optional[float]) -> None:
        """Emit every bin whose upper edge is <= ``upto_ts`` (all if None)."""
        if self._first_ts is None:
            return
        if upto_ts is None:
            if not self._pending:
                return
            last = max(float(r["ts"]) for r in self._pending)
            n_bins = int(np.floor((last - self._first_ts)
                                  / self.time_bin)) + 1
        else:
            n_bins = int(np.floor((upto_ts - self._first_ts)
                                  / self.time_bin))
        while self._bins_emitted < n_bins:
            edge = self._first_ts + self._bins_emitted * self.time_bin
            upper = edge + self.time_bin
            in_bin = [r for r in self._pending if float(r["ts"]) < upper]
            self._pending = [r for r in self._pending
                             if float(r["ts"]) >= upper]
            self._queue.put_nowait(self._records_to_batch(in_bin, edge))
            self._bins_emitted += 1

    def _add_record(self, record: dict) -> None:
        ts = float(record["ts"])
        if self._first_ts is None:
            self._first_ts = ts
        emitted_edge = self._first_ts + self._bins_emitted * self.time_bin
        if ts < emitted_edge:
            self.late_packets += 1
            return
        self._pending.append(record)
        self._flush_through(ts)

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            async for line in reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    float(record["ts"])
                except (ValueError, KeyError, TypeError):
                    continue  # malformed line: skip, keep the stream alive
                self._add_record(record)
        finally:
            writer.close()

    async def start(self) -> None:
        """Bind the listening socket (idempotent)."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle_client, self.host, self.port)
            self.name = f"{self.host}:{self.bound_port}"

    def stop(self) -> None:
        super().stop()
        self._queue.put_nowait(None)  # wake the consumer

    async def batches(self) -> AsyncIterator[Batch]:
        await self.start()
        try:
            while True:
                self.idle = self._queue.empty()
                batch = await self._queue.get()
                if batch is None or self._stopping:
                    break
                self.idle = False
                yield batch
            # Drain: emit everything still buffered, partial last bin too.
            self._flush_through(None)
            while not self._queue.empty():
                batch = self._queue.get_nowait()
                if batch is not None:
                    yield batch
        finally:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            self.done = True
