"""Checkpoint and restore of streaming monitoring sessions.

A long-lived monitor must survive restarts without losing the execution it
has accumulated: result logs, predictor history, controller state, sampler
RNG positions, the bin counter, even reconfigurations still queued for the
next bin boundary.  This module freezes all of it to one file and thaws it
back into a session that resumes **bit-identically** — feeding the restored
session the remaining bins produces the exact ``ExecutionResult`` an
uninterrupted run would have produced (``tests/test_checkpoint.py`` pins
this across every operating mode, shard count and backend).

The state payloads come from the session classes themselves
(:meth:`~repro.monitor.session.MonitoringSession.state_dict` /
:meth:`~repro.monitor.sharding.ShardedSession.state_dict`); this module owns
the on-disk format: one pickle file wrapping a JSON-able ``meta`` summary
and the session state as a *nested* pickle blob.  The nesting is
deliberate: ``meta`` is readable without deserialising any session state,
and every :meth:`Checkpoint.restore` call thaws a fresh object graph from
the blob, so two restores never alias each other's mutable state.  Files
are written atomically (tmp sibling + rename), so a crash mid-checkpoint
never clobbers the previous good checkpoint.

.. warning::
   Checkpoints are pickles.  Loading one executes the pickle protocol, so
   restore only checkpoints you (or your own daemon) wrote — the same trust
   model as any state-restoring service.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from ..monitor.session import MonitoringSession
from ..monitor.sharding import ShardedSession

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "capture",
    "describe_checkpoint",
    "load_checkpoint",
    "restore_session",
    "save_checkpoint",
]

#: Format tag every checkpoint file carries.
CHECKPOINT_FORMAT = "repro-checkpoint"
#: Bumped when the wrapper layout changes incompatibly.
CHECKPOINT_VERSION = 1

#: The session types this module can freeze and thaw.
_SESSION_TYPES = (MonitoringSession, ShardedSession)


def _session_meta(session) -> Dict:
    """JSON-able summary of a session, stored alongside the state."""
    if isinstance(session, ShardedSession):
        mode = session.sharded.mode
        num_shards = session.num_shards
    else:
        mode = session.system.mode
        num_shards = 1
    return {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "kind": ("sharded" if isinstance(session, ShardedSession)
                 else "monitoring"),
        "name": session.name,
        "mode": mode,
        "num_shards": num_shards,
        "time_bin": session.time_bin,
        "bins_ingested": session.bins_ingested,
        "query_names": list(session.query_names),
        "created_unix": time.time(),
    }


@dataclass
class Checkpoint:
    """A loaded checkpoint: the ``meta`` summary plus the frozen state.

    The session state stays serialised until :meth:`restore` thaws it, and
    every restore deserialises afresh — restoring twice yields two fully
    independent sessions.
    """

    meta: Dict
    state_blob: bytes = field(repr=False)
    path: Optional[Path] = None

    @property
    def kind(self) -> str:
        return self.meta["kind"]

    @property
    def bins_ingested(self) -> int:
        return int(self.meta["bins_ingested"])

    def restore(self, n_workers: int = 1, backend: Optional[str] = None,
                respect_cores: bool = True
                ) -> Union[MonitoringSession, ShardedSession]:
        """Thaw the checkpoint into a live, resumable session.

        The execution backend of a sharded checkpoint is chosen here, not
        at capture time: a run checkpointed on the persistent worker pool
        may resume in-process and vice versa, bit-identically.
        """
        state = pickle.loads(self.state_blob)
        if self.kind == "monitoring":
            return MonitoringSession.from_state(state)
        if self.kind == "sharded":
            return ShardedSession.from_state(
                state, n_workers=n_workers, backend=backend,
                respect_cores=respect_cores)
        raise ValueError(f"unknown checkpoint kind {self.kind!r}")


def capture(session) -> bytes:
    """Serialise ``session``'s complete execution state to a byte blob.

    The snapshot is taken at the moment of pickling, at the session's
    current bin boundary; the live session is untouched and keeps
    streaming.  Pending (not yet applied) reconfigurations are part of the
    state and will fire at the restored session's next bin, exactly as
    they would have.
    """
    if not isinstance(session, _SESSION_TYPES):
        raise TypeError(
            f"cannot checkpoint a {type(session).__name__}; expected a "
            "MonitoringSession or ShardedSession")
    state_blob = pickle.dumps(session.state_dict(),
                              protocol=pickle.HIGHEST_PROTOCOL)
    wrapper = {"meta": _session_meta(session), "state_blob": state_blob}
    return pickle.dumps(wrapper, protocol=pickle.HIGHEST_PROTOCOL)


def save_checkpoint(session, path: Union[str, Path]) -> Path:
    """Write ``session``'s state to ``path`` atomically; returns the path.

    The blob lands in a temporary sibling first and is renamed into place,
    so an interrupted write leaves any previous checkpoint at ``path``
    intact.
    """
    path = Path(path)
    blob = capture(session)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(path.name + ".tmp")
    tmp_path.write_bytes(blob)
    tmp_path.replace(path)
    return path


def load_checkpoint(source: Union[str, Path, bytes]) -> Checkpoint:
    """Load a checkpoint file (or a :func:`capture` blob) without restoring.

    Only the wrapper is deserialised here — inspect ``meta`` cheaply, then
    call :meth:`Checkpoint.restore` to thaw the session state itself.
    """
    if isinstance(source, bytes):
        wrapper = pickle.loads(source)
        path = None
    else:
        path = Path(source)
        wrapper = pickle.loads(path.read_bytes())
    if not isinstance(wrapper, dict) or "meta" not in wrapper \
            or "state_blob" not in wrapper:
        raise ValueError(f"{source!r} is not a repro checkpoint")
    meta = wrapper["meta"]
    if meta.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{source!r} is not a repro checkpoint "
                         f"(format={meta.get('format')!r})")
    if meta.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {meta.get('version')!r} "
            f"(this build reads version {CHECKPOINT_VERSION})")
    return Checkpoint(meta=meta, state_blob=wrapper["state_blob"], path=path)


def describe_checkpoint(path: Union[str, Path]) -> Dict:
    """The checkpoint's ``meta`` summary (kind, bins, queries, ...)."""
    return dict(load_checkpoint(path).meta)


def restore_session(source: Union[str, Path, bytes, Checkpoint],
                    n_workers: int = 1, backend: Optional[str] = None,
                    respect_cores: bool = True
                    ) -> Union[MonitoringSession, ShardedSession]:
    """One-call restore: load ``source`` and thaw it into a live session."""
    checkpoint = source if isinstance(source, Checkpoint) \
        else load_checkpoint(source)
    return checkpoint.restore(n_workers=n_workers, backend=backend,
                              respect_cores=respect_cores)
