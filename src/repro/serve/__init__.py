"""``repro.serve`` — run the monitoring system as a long-lived service.

The offline pipeline answers "what would the load shedder have done on
this trace"; this package answers "run it, now, on traffic as it
arrives".  It glues the existing streaming sessions to four pieces of
service machinery, all stdlib-only:

:mod:`~repro.serve.feeds`
    Async batch sources: trace replay (optionally wall-clock paced),
    tailing a v2 store another process is still writing, live synthetic
    traffic, and a JSONL TCP listener.
:mod:`~repro.serve.daemon`
    :class:`MonitorDaemon` — owns the session, ingests the feed, rotates
    traces, checkpoints, and shuts down gracefully on SIGTERM.
:mod:`~repro.serve.api`
    The HTTP ops surface: status, Prometheus ``/metrics``, live query
    add/remove, capacity and config hot-reload, checkpoint-now.
:mod:`~repro.serve.checkpoint`
    Versioned on-disk snapshots that restore to a bit-identically
    resuming session.

Start one from the command line::

    python -m repro.serve trace_store/ --queries counter,flows --port 8080
    python -m repro.serve --restore ckpt/checkpoint.pkl --feed tail --source ...

or in code::

    from repro.serve import GeneratorFeed, MonitorDaemon
    daemon = MonitorDaemon(config, GeneratorFeed(profile, seed=1))
    result = asyncio.run(daemon.run())
"""

from .api import OpsError, OpsServer, render_metrics
from .checkpoint import (
    Checkpoint,
    capture,
    describe_checkpoint,
    load_checkpoint,
    restore_session,
    save_checkpoint,
)
from .daemon import MonitorDaemon
from .feeds import Feed, GeneratorFeed, ReplayFeed, SocketFeed, TailFeed

__all__ = [
    "Checkpoint",
    "Feed",
    "GeneratorFeed",
    "MonitorDaemon",
    "OpsError",
    "OpsServer",
    "ReplayFeed",
    "SocketFeed",
    "TailFeed",
    "capture",
    "describe_checkpoint",
    "load_checkpoint",
    "render_metrics",
    "restore_session",
    "save_checkpoint",
]
