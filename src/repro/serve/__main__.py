"""Run the monitoring daemon from the shell.

::

    # Replay a recorded store as a service, ops API on :8080
    python -m repro.serve trace_store/ --queries counter,flows --port 8080

    # Follow a store another process is writing, checkpoint every 100 bins
    python -m repro.serve capture_dir/ --feed tail \\
        --checkpoint-dir ckpt/ --checkpoint-every 100

    # Live synthetic traffic at real-time pace, forever
    python -m repro.serve --feed generate --pace 1 --duration inf

    # Resume a checkpointed run
    python -m repro.serve trace_store/ --restore ckpt/checkpoint.pkl

System flags (``--queries``, ``--mode``, ``--num-shards``, ...) are shared
with ``python -m repro.replay``; here they have no baked-in defaults so a
``--config config.json`` file provides the base and explicit flags
override it.  The daemon prints one line with the ops URL once the API is
bound, serves until the feed ends or SIGTERM arrives, then prints the
usual result summary.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import List, Optional


def build_parser() -> argparse.ArgumentParser:
    from ..cli import add_system_args

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-lived monitoring daemon: ingest a live feed, "
                    "expose an HTTP ops API, checkpoint and restore.")
    parser.add_argument("source", nargs="?", default=None,
                        help="feed source: a trace/store path (replay, "
                             "tail) or HOST:PORT to listen on (socket)")
    parser.add_argument("--feed", default="replay",
                        choices=("replay", "tail", "generate", "socket"),
                        help="batch source type (default: %(default)s)")
    parser.add_argument("--config", default=None, metavar="FILE",
                        help="JSON file with a full SystemConfig document; "
                             "explicit flags below override its fields")
    add_system_args(parser, with_defaults=False)
    parser.add_argument("--cycles-per-second", type=float, default=None,
                        help="cycle capacity of the host (no calibration "
                             "pass in serve mode; measure offline or set "
                             "it in --config)")
    parser.add_argument("--pace", type=float, default=0.0,
                        help="wall-clock pacing as a multiple of real time "
                             "(0 = as fast as possible; 1 = real time)")
    parser.add_argument("--poll-interval", type=float, default=0.2,
                        help="tail feed: seconds between manifest polls "
                             "(default: %(default)s)")
    parser.add_argument("--duration", type=float, default=None,
                        help="generate feed: seconds of traffic to "
                             "synthesise ('inf' accepted; default: the "
                             "profile's 30s)")
    parser.add_argument("--flow-arrival-rate", type=float, default=None,
                        help="generate feed: mean new flows per second")
    parser.add_argument("--host", default="127.0.0.1",
                        help="ops API bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=8080,
                        help="ops API port, 0 picks a free one "
                             "(default: %(default)s)")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="write checkpoint.pkl here (periodically and "
                             "at shutdown)")
    parser.add_argument("--checkpoint-every", type=int, default=0,
                        metavar="BINS",
                        help="checkpoint every N ingested bins "
                             "(0 = only at shutdown)")
    parser.add_argument("--rotate-dir", default=None, metavar="DIR",
                        help="append ingested traffic to v2 trace stores "
                             "under this directory")
    parser.add_argument("--rotate-every", type=int, default=600,
                        metavar="BINS",
                        help="start a new rotation segment every N bins "
                             "(default: %(default)s)")
    parser.add_argument("--restore", default=None, metavar="CKPT",
                        help="resume from a checkpoint file instead of "
                             "starting a fresh session")
    parser.add_argument("--max-bins", type=int, default=None,
                        help="stop after ingesting this many bins")
    parser.add_argument("--name", default="serve",
                        help="session/daemon name (default: %(default)s)")
    return parser


def _build_feed(args, time_bin: float):
    from .feeds import GeneratorFeed, ReplayFeed, SocketFeed, TailFeed

    if args.feed in ("replay", "tail") and args.source is None:
        raise SystemExit(f"error: --feed {args.feed} needs a source path")
    if args.feed == "replay":
        return ReplayFeed(args.source, time_bin=time_bin, pace=args.pace)
    if args.feed == "tail":
        return TailFeed(args.source, time_bin=time_bin,
                        poll_interval=args.poll_interval)
    if args.feed == "generate":
        from dataclasses import replace

        from ..traffic.generator import TrafficProfile
        profile = TrafficProfile()
        if args.duration is not None:
            profile = replace(profile, duration=args.duration)
        if args.flow_arrival_rate is not None:
            profile = replace(profile,
                              flow_arrival_rate=args.flow_arrival_rate)
        return GeneratorFeed(profile, seed=args.seed or 0,
                             time_bin=time_bin, pace=args.pace,
                             max_bins=args.max_bins)
    # socket: source is HOST:PORT (default loopback, ephemeral port)
    host, port = "127.0.0.1", 0
    if args.source:
        host, _, port_text = args.source.rpartition(":")
        host = host or "127.0.0.1"
        port = int(port_text)
    return SocketFeed(host=host, port=port, time_bin=time_bin)


def main(argv: Optional[List[str]] = None) -> int:
    from ..experiments import runner
    from ..monitor.config import SystemConfig
    from ..cli import apply_system_args
    from .checkpoint import restore_session
    from .daemon import MonitorDaemon

    args = build_parser().parse_args(argv)
    try:
        if args.config is not None:
            config = SystemConfig.from_dict(
                json.loads(Path(args.config).read_text()))
        else:
            config = runner.system_config()
        config = apply_system_args(config, args)
        if args.cycles_per_second is not None:
            config = config.replace(
                cycles_per_second=args.cycles_per_second)
    except (KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    session = None
    if args.restore is not None:
        session = restore_session(args.restore,
                                  n_workers=args.n_workers or 1,
                                  backend=args.backend)
        print(f"restored {type(session).__name__} at bin "
              f"{session.bins_ingested} from {args.restore}", flush=True)

    time_bin = args.time_bin if args.time_bin is not None else \
        (session.time_bin if session is not None else 0.1)
    feed = _build_feed(args, time_bin)

    # A restored session already carries its execution's config; the
    # flag-built one only applies to fresh sessions.
    daemon = MonitorDaemon(
        None if session is not None else config, feed,
        host=args.host, port=args.port,
        n_workers=args.n_workers or 1,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every_bins=args.checkpoint_every,
        rotate_dir=args.rotate_dir, rotate_every_bins=args.rotate_every,
        name=args.name, session=session, max_bins=args.max_bins)

    async def _serve():
        task = asyncio.ensure_future(daemon.run())
        # Give the API a beat to bind, then announce the ops URL.
        while daemon.bound_port == 0 and not task.done():
            await asyncio.sleep(0.01)
        if not task.done():
            print(f"serving ops API on "
                  f"http://{args.host}:{daemon.bound_port}", flush=True)
        return await task

    result = asyncio.run(_serve())
    print(f"served {len(result.bins)} bins: dropped "
          f"{result.dropped_packets:,}/{result.total_packets:,} packets "
          f"({result.drop_fraction:.1%}), mode={result.mode}", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
