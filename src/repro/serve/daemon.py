"""The long-lived monitoring daemon: feed in, ops API out.

:class:`MonitorDaemon` turns the push-based session machinery into a
service.  It owns one session (:class:`~repro.monitor.session.
MonitoringSession` or a :class:`~repro.monitor.sharding.ShardedSession`
on any backend), pulls batches from a :class:`~repro.serve.feeds.Feed`
on the asyncio event loop, and exposes the live-control surface the
sessions already had — query arrivals and departures, capacity changes,
partial results — over the HTTP ops API (:mod:`repro.serve.api`),
plus the two things only a daemon needs: periodic checkpoints
(:mod:`repro.serve.checkpoint`) and optional rotation of the ingested
traffic into v2 trace stores for post-hoc analysis.

Concurrency model: one writer, many readers, one lock.  Ingest runs on
the default executor (NumPy releases the GIL for the heavy parts, so ops
requests stay responsive), and every session-touching operation —
ingest, reconfiguration, snapshot, checkpoint — holds ``self._lock``, so
ops always observe the session *between* bins, which is exactly the
bin-boundary semantics the sessions define anyway.

Shutdown is graceful by design: SIGTERM (or :meth:`stop`, or ``POST
/shutdown``) stops the feed, the in-flight bin completes, a final
checkpoint is written, trace rotation flushes, the session closes (worker
pools and all), and :meth:`run` returns the final
:class:`~repro.monitor.system.ExecutionResult` — the same object an
offline run would have produced.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..monitor.config import SystemConfig
from ..monitor.session import MonitoringSession
from ..monitor.sharding import ShardedSession, ShardedSystem
from ..monitor.system import ExecutionResult
from ..queries import parse_query_specs
from ..traffic.trace_io import TraceWriter
from .api import OpsError, OpsServer
from .checkpoint import save_checkpoint
from .feeds import Feed

__all__ = ["MonitorDaemon"]

#: Config fields that can change while the session is running.  Everything
#: else (mode, strategy, predictor, sharding layout, ...) is baked into
#: per-execution state and needs a restart (or a checkpoint/restore cycle).
LIVE_CONFIG_FIELDS = ("cycles_per_second",)

#: Ingest batching: up to this many queued bins ride one executor offload.
#: Each bin still locks individually inside the chunk, so ops requests keep
#: their between-bins view; the chunk only amortises the event-loop round
#: trip per bin, which dominated daemon overhead on dense feeds.
_INGEST_CHUNK = 8
#: Bound on the feed-to-ingest handoff queue (bins).
_INGEST_QUEUE_BINS = 32


class MonitorDaemon:
    """One monitoring session, one feed, one ops API, run as a service.

    Parameters
    ----------
    config:
        Full :class:`SystemConfig` including a declarative ``queries``
        mix.  When ``session`` is given (a checkpoint restore), may be
        ``None`` — it is recovered from the session where possible.
    feed:
        The :class:`~repro.serve.feeds.Feed` to ingest.
    host, port:
        Ops API bind address (port 0 picks a free port; see
        :attr:`bound_port`).
    n_workers, respect_cores:
        Shard-execution parallelism, as in
        :class:`~repro.monitor.sharding.ShardedSystem`.
    checkpoint_dir, checkpoint_every_bins:
        Write ``checkpoint.pkl`` into ``checkpoint_dir`` every N bins
        (0 = only at shutdown) — plus always once at shutdown.
    rotate_dir, rotate_every_bins:
        Append every ingested batch to a v2 trace store under
        ``rotate_dir``, starting a new ``segment-NNNNNN`` store every N
        bins.
    session:
        A restored session to resume instead of building a fresh one.
    reference:
        Optional reference :class:`ExecutionResult` for the same traffic;
        when given, ``/status`` reports accuracy-so-far per query.
    max_bins:
        Stop after ingesting this many bins (soak-test horizon).
    """

    def __init__(self, config: Optional[SystemConfig], feed: Feed, *,
                 host: str = "127.0.0.1", port: int = 0,
                 n_workers: int = 1, respect_cores: bool = True,
                 checkpoint_dir: Optional[Union[str, Path]] = None,
                 checkpoint_every_bins: int = 0,
                 rotate_dir: Optional[Union[str, Path]] = None,
                 rotate_every_bins: int = 600,
                 name: str = "serve",
                 session: Optional[Union[MonitoringSession,
                                         ShardedSession]] = None,
                 reference: Optional[ExecutionResult] = None,
                 max_bins: Optional[int] = None) -> None:
        self.feed = feed
        self.name = name
        self.n_workers = int(n_workers)
        self.respect_cores = bool(respect_cores)
        self.reference = reference
        self.max_bins = max_bins if max_bins is None else int(max_bins)
        self.checkpoint_dir = (None if checkpoint_dir is None
                               else Path(checkpoint_dir))
        self.checkpoint_every_bins = int(checkpoint_every_bins)
        self.rotate_dir = None if rotate_dir is None else Path(rotate_dir)
        self.rotate_every_bins = int(rotate_every_bins)
        if self.rotate_every_bins < 1:
            raise ValueError("rotate_every_bins must be >= 1")

        if session is None:
            if config is None:
                raise ValueError("MonitorDaemon needs a config (or a "
                                 "restored session)")
            if config.queries is None:
                raise ValueError(
                    "a daemon's config must carry a declarative 'queries' "
                    "mix (e.g. SystemConfig(queries='counter,flows')) — "
                    "query instances cannot be reconstructed at restore")
            session = self._build_session(config)
        elif config is None:
            config = self._recover_config(session)
        self.config = config
        self.session = session

        self._api = OpsServer(self, host=host, port=port)
        self._lock = threading.Lock()
        self._stopping = False
        self._started_monotonic: Optional[float] = None
        self._started_unix: Optional[float] = None
        self.result: Optional[ExecutionResult] = None

        # Running counters, updated under the lock after every bin.
        self._packets = 0
        self._bytes = 0
        self._dropped = 0
        self._unsampled = 0.0
        self._shed_bins = 0
        self._prediction_error_sum = 0.0
        self._predicted_bins = 0
        self._last_record = None
        self._checkpoints_written = 0
        self.checkpoint_path: Optional[Path] = None
        #: ``(bins_ingested, snapshot)`` cache for the read-side ops: the
        #: session only changes when a bin lands, so polls between bins can
        #: reuse the same snapshot instead of re-copying the logs (and, on
        #: the workers backend, re-crossing the worker pipes) per request.
        self._partial_cache: Optional[tuple] = None

        # Trace rotation state.
        self._writer: Optional[TraceWriter] = None
        self._writer_bins = 0
        self._rotated_segments = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_session(self, config: SystemConfig
                       ) -> Union[MonitoringSession, ShardedSession]:
        if config.num_shards > 1:
            sharded = ShardedSystem(config=config, n_workers=self.n_workers,
                                    respect_cores=self.respect_cores)
            return sharded.open_session(time_bin=self.feed.time_bin,
                                        name=self.name)
        system = config.build()
        return system.open_session(time_bin=self.feed.time_bin,
                                   name=self.name)

    @staticmethod
    def _recover_config(session) -> Optional[SystemConfig]:
        if isinstance(session, ShardedSession):
            return session.sharded.config
        return getattr(session.system, "config", None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bound_port(self) -> int:
        """The ops API port actually bound (after :meth:`run` starts)."""
        return self._api.bound_port

    @property
    def bins_ingested(self) -> int:
        return self.session.bins_ingested

    @property
    def uptime_seconds(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    # ------------------------------------------------------------------
    # The ingest loop
    # ------------------------------------------------------------------
    async def run(self) -> ExecutionResult:
        """Serve until the feed ends or the daemon is stopped.

        Starts the ops API, installs signal handlers, streams the feed
        through the session one bin at a time, and on the way out writes a
        final checkpoint, flushes trace rotation and closes the session.
        Returns the final merged :class:`ExecutionResult`.
        """
        loop = asyncio.get_running_loop()
        self._started_monotonic = time.monotonic()
        self._started_unix = time.time()
        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.stop)
                installed.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or unsupported platform
        await self._api.start()
        queue: asyncio.Queue = asyncio.Queue(maxsize=_INGEST_QUEUE_BINS)
        sentinel = object()

        async def pump() -> None:
            async for batch in self.feed.batches():
                await queue.put(batch)
            await queue.put(sentinel)

        pump_task = asyncio.ensure_future(pump())
        try:
            done = False
            while not done and not self._stopping:
                batch = await queue.get()
                if batch is sentinel:
                    break
                chunk = [batch]
                # Drain whatever else is already queued (bounded): one
                # executor round trip then covers the whole chunk.
                while len(chunk) < _INGEST_CHUNK:
                    try:
                        extra = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if extra is sentinel:
                        done = True
                        break
                    chunk.append(extra)
                await loop.run_in_executor(None, self._ingest_chunk, chunk)
                if (self.max_bins is not None
                        and self.bins_ingested >= self.max_bins):
                    break
        finally:
            pump_task.cancel()
            try:
                await pump_task
            except asyncio.CancelledError:
                pass
            for signum in installed:
                loop.remove_signal_handler(signum)
            self.feed.stop()
            await self._api.stop()
            await loop.run_in_executor(None, self._shutdown)
        return self.result

    def stop(self) -> None:
        """Begin a graceful shutdown (signal-handler and ops-API safe)."""
        self._stopping = True
        self.feed.stop()

    def _ingest_chunk(self, batches) -> None:
        """Ingest several queued bins in one executor offload."""
        for batch in batches:
            if self._stopping:
                break
            self._ingest_one(batch)
            if (self.max_bins is not None
                    and self.bins_ingested >= self.max_bins):
                break

    def _ingest_one(self, batch) -> None:
        with self._lock:
            if self.session.closed:
                return
            record = self.session.ingest(batch)
            self._packets += record.incoming_packets
            self._bytes += record.incoming_bytes
            self._dropped += record.dropped_packets
            self._unsampled += record.unsampled_packets
            if record.dropped_packets > 0 or (record.rates and
                                              record.mean_rate < 1.0):
                self._shed_bins += 1
            if record.predicted_cycles > 0:
                actual = record.query_cycles
                self._prediction_error_sum += (
                    abs(record.predicted_cycles - actual)
                    / max(actual, 1.0))
                self._predicted_bins += 1
            self._last_record = record
            if self.rotate_dir is not None:
                self._rotate_append(batch)
            if (self.checkpoint_dir is not None
                    and self.checkpoint_every_bins > 0
                    and self.bins_ingested % self.checkpoint_every_bins == 0):
                self._checkpoint_locked()

    def _shutdown(self) -> None:
        with self._lock:
            if not self.session.closed and self.checkpoint_dir is not None:
                self._checkpoint_locked()
            if self._writer is not None:
                self._writer.close()
                self._writer = None
            self.result = self.session.close()

    # ------------------------------------------------------------------
    # Trace rotation
    # ------------------------------------------------------------------
    def _rotate_append(self, batch) -> None:
        if self._writer is not None \
                and self._writer_bins >= self.rotate_every_bins:
            self._writer.close()
            self._writer = None
        if self._writer is None:
            segment = self.rotate_dir / \
                f"segment-{self._rotated_segments:06d}"
            self._writer = TraceWriter(
                segment, name=f"{self.name}-{self._rotated_segments:06d}",
                with_payloads=batch.payloads is not None,
                time_bin=self.feed.time_bin)
            self._rotated_segments += 1
            self._writer_bins = 0
        if len(batch) > 0:
            self._writer.append(batch)
        self._writer_bins += 1

    # ------------------------------------------------------------------
    # Ops (called from the API handlers; each locks around the session)
    # ------------------------------------------------------------------
    def add_query(self, spec) -> Dict:
        """Register a query (spec dict / name) at the next bin boundary."""
        parsed = parse_query_specs([spec])[0]
        with self._lock:
            if isinstance(self.session, ShardedSession):
                self.session.add_query(parsed.build)
            else:
                self.session.add_query(parsed.build())
        return {"added": parsed.instance_name, "spec": parsed.to_dict()}

    def remove_query(self, name: str) -> Dict:
        with self._lock:
            self.session.remove_query(name)
        return {"removed": name}

    def set_capacity(self, cycles_per_second: float) -> Dict:
        cycles_per_second = float(cycles_per_second)
        with self._lock:
            self.session.set_capacity(cycles_per_second)
        if self.config is not None:
            self.config = self.config.replace(
                cycles_per_second=cycles_per_second)
        return {"cycles_per_second": cycles_per_second}

    def apply_config(self, changes: Dict) -> Dict:
        """Hot-reload config fields that are live-applicable.

        ``changes`` is a partial config dict.  It is validated by merging
        onto the current config (so typos get the did-you-mean treatment
        of ``SystemConfig.from_dict``), then every actually-changed field
        must be in :data:`LIVE_CONFIG_FIELDS` — anything else is rejected
        with an error naming the offending fields, because it could not
        take effect without restarting the execution.
        """
        if not isinstance(changes, dict):
            raise OpsError(400, "config payload must be a JSON object")
        if self.config is None:
            raise OpsError(409, "this daemon has no config to reload "
                                "(restored session without one)")
        merged = dict(self.config.to_dict())
        merged.update(changes)
        candidate = SystemConfig.from_dict(merged)  # strict keys + validation
        changed = [key for key in changes
                   if getattr(candidate, key) != getattr(self.config, key)]
        dead = sorted(set(changed) - set(LIVE_CONFIG_FIELDS))
        if dead:
            raise OpsError(
                400, f"config field(s) {dead} cannot change while the "
                     f"session is running; live-applicable fields: "
                     f"{sorted(LIVE_CONFIG_FIELDS)} (restart, or "
                     "checkpoint/restore, to change the rest)")
        applied = {}
        for key in changed:
            if key == "cycles_per_second":
                self.set_capacity(candidate.cycles_per_second)
                applied[key] = candidate.cycles_per_second
        return {"applied": applied,
                "unchanged": sorted(set(changes) - set(changed))}

    def checkpoint_now(self) -> Dict:
        if self.checkpoint_dir is None:
            raise OpsError(409, "daemon started without --checkpoint-dir")
        with self._lock:
            if self.session.closed:
                raise OpsError(409, "session already closed")
            path = self._checkpoint_locked()
        return {"checkpoint": str(path),
                "bins_ingested": self.bins_ingested}

    def _checkpoint_locked(self) -> Path:
        path = self.checkpoint_dir / "checkpoint.pkl"
        save_checkpoint(self.session, path)
        self.checkpoint_path = path
        self._checkpoints_written += 1
        return path

    # ------------------------------------------------------------------
    # Read-side ops
    # ------------------------------------------------------------------
    def partial_result(self) -> ExecutionResult:
        with self._lock:
            if self.session.closed:
                return self.result
            bins = self.session.bins_ingested
            if (self._partial_cache is not None
                    and self._partial_cache[0] == bins):
                return self._partial_cache[1]
            snapshot = self.session.partial_result()
            self._partial_cache = (bins, snapshot)
            return snapshot

    def session_metrics(self) -> Dict:
        """The session's operational metrics (profiler + feature sharing).

        Same document as :attr:`MonitoringSession.metrics` /
        :attr:`ShardedSession.metrics`, captured under the lock so it lands
        at a bin boundary.
        """
        with self._lock:
            return self.session.metrics

    def status(self) -> Dict:
        """The ``/status`` document: health, throughput, per-query state."""
        snapshot = self.partial_result()
        queries = {}
        accuracies = {}
        if self.reference is not None:
            from ..experiments.runner import accuracy_by_query
            accuracies = accuracy_by_query(snapshot, self.reference)
        for qname, log in snapshot.query_logs.items():
            rates = snapshot.rate_series(qname)
            queries[qname] = {
                "intervals": len(log.intervals),
                "mean_sampling_rate": (float(np.mean(rates)) if len(rates)
                                       else 1.0),
            }
            if qname in accuracies:
                queries[qname]["accuracy_so_far"] = float(accuracies[qname])
        total = self._packets
        mode = self.config.mode if self.config is not None \
            else snapshot.mode
        return {
            "name": self.name,
            "mode": mode,
            "num_shards": (self.config.num_shards
                           if self.config is not None else 1),
            "uptime_seconds": self.uptime_seconds,
            "started_unix": self._started_unix,
            "bins_ingested": self.bins_ingested,
            "time_bin": self.feed.time_bin,
            "packets": total,
            "bytes": self._bytes,
            "dropped_packets": self._dropped,
            "shed_fraction": (self._dropped / total) if total else 0.0,
            "shed_bins": self._shed_bins,
            "mean_prediction_error": (
                self._prediction_error_sum / self._predicted_bins
                if self._predicted_bins else 0.0),
            "checkpoints_written": self._checkpoints_written,
            "checkpoint_path": (str(self.checkpoint_path)
                                if self.checkpoint_path else None),
            "stopping": self._stopping,
            "closed": self.session.closed,
            "feed": {
                "kind": self.feed.kind,
                "name": self.feed.name,
                "lag_seconds": self.feed.lag_seconds,
                "idle": self.feed.idle,
                "done": self.feed.done,
            },
            "queries": queries,
        }

    def result_document(self) -> Dict:
        """The ``/result`` document: a JSON view of the partial result."""
        snapshot = self.partial_result()
        return {
            "mode": snapshot.mode,
            "strategy": snapshot.strategy,
            "trace_name": snapshot.trace_name,
            "bins": len(snapshot.bins),
            "total_packets": snapshot.total_packets,
            "dropped_packets": snapshot.dropped_packets,
            "drop_fraction": snapshot.drop_fraction,
            "mean_sampling_rate": snapshot.mean_sampling_rate(),
            "query_logs": {
                qname: {
                    "intervals": [float(start) for start in log.intervals],
                    "results": [_result_value(value)
                                for value in log.results],
                }
                for qname, log in snapshot.query_logs.items()
            },
        }

    def metric_families(self) -> List[Dict]:
        """The ``/metrics`` content, as renderer-ready metric families."""
        record = self._last_record
        families = [
            _family("repro_uptime_seconds", "gauge",
                    "Seconds since the daemon started",
                    [({}, self.uptime_seconds)]),
            _family("repro_bins_ingested_total", "counter",
                    "Time bins ingested", [({}, self.bins_ingested)]),
            _family("repro_packets_total", "counter",
                    "Packets offered to the monitor", [({}, self._packets)]),
            _family("repro_bytes_total", "counter",
                    "Bytes offered to the monitor", [({}, self._bytes)]),
            _family("repro_dropped_packets_total", "counter",
                    "Packets dropped by load shedding",
                    [({}, self._dropped)]),
            _family("repro_unsampled_packets_total", "counter",
                    "Effective packets lost to sampling",
                    [({}, self._unsampled)]),
            _family("repro_shed_bins_total", "counter",
                    "Bins in which load shedding was active",
                    [({}, self._shed_bins)]),
            _family("repro_checkpoints_total", "counter",
                    "Checkpoints written",
                    [({}, self._checkpoints_written)]),
            _family("repro_feed_lag_seconds", "gauge",
                    "Seconds the feed trails its delivery schedule",
                    [({}, self.feed.lag_seconds)]),
            _family("repro_mean_prediction_error", "gauge",
                    "Mean relative cycle-prediction error",
                    [({}, self._prediction_error_sum / self._predicted_bins
                      if self._predicted_bins else 0.0)]),
        ]
        if record is not None:
            families.append(_family(
                "repro_bin_sampling_rate", "gauge",
                "Last bin's sampling rate per query",
                [({"query": qname}, rate)
                 for qname, rate in sorted(record.rates.items())]))
            families.append(_family(
                "repro_bin_delay_seconds", "gauge",
                "Capture-buffer delay after the last bin",
                [({}, record.delay)]))
        if isinstance(self.session, ShardedSession):
            samples = []
            for shard, load in enumerate(self.session.shard_loads):
                if load is not None:
                    samples.append(({"shard": str(shard)}, float(load[1])))
            if samples:
                families.append(_family(
                    "repro_shard_cycles", "gauge",
                    "Cycles each shard spent in the previous bin", samples))
        metrics = self.session_metrics()
        profile = metrics["profile"]
        if profile["stages"]:
            families.append(_family(
                "repro_stage_seconds_total", "counter",
                "Wall seconds spent per pipeline stage",
                [({"stage": stage}, stats["seconds_total"])
                 for stage, stats in sorted(profile["stages"].items())]))
            families.append(_family(
                "repro_stage_cycles_total", "counter",
                "Simulated cycles charged per pipeline stage",
                [({"stage": stage}, stats["cycles_total"])
                 for stage, stats in sorted(profile["stages"].items())]))
        latency = profile["bin_seconds"]
        if latency["n"]:
            families.append(_family(
                "repro_bin_pipeline_seconds", "gauge",
                "Recent per-bin pipeline wall seconds (percentiles)",
                [({"quantile": q}, latency[q])
                 for q in ("p50", "p95", "p99")]))
        sharing = metrics["feature_sharing"]
        families.append(_family(
            "repro_feature_sharing", "gauge",
            "Shared feature-state registry counters",
            [({"counter": key}, float(value))
             for key, value in sorted(sharing.items())]))
        return families


def _family(name: str, kind: str, help_text: str, samples) -> Dict:
    return {"name": name, "type": kind, "help": help_text,
            "samples": samples}


def _result_value(value):
    """A query-log result value as JSON-able data (best effort)."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _result_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_result_value(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
