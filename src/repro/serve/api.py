"""Minimal HTTP ops API for the monitoring daemon (stdlib asyncio only).

One short-lived HTTP/1.0-style exchange per connection (``Connection:
close``), JSON in, JSON out — enough surface for curl, a scraper and a
control script, with zero dependencies.  The daemon object passed in is
duck-typed: the server only calls its public ops methods
(``status`` / ``add_query`` / ``remove_query`` / ``set_capacity`` /
``apply_config`` / ``checkpoint_now`` / ``result_document`` /
``metric_families`` / ``stop``).

Routes
------
=======  =============  ====================================================
GET      /status        Health + throughput + per-query accuracy-so-far
GET      /metrics       Prometheus text exposition format
GET      /result        Partial (or final) execution result as JSON
GET      /queries       The registered query names
POST     /queries       Add a query (JSON QuerySpec or ``{"spec": ...}``)
DELETE   /queries/NAME  Remove query ``NAME`` at the next bin boundary
POST     /capacity      ``{"cycles_per_second": 2e8}``
POST     /config        Hot-reload live-applicable config fields
POST     /checkpoint    Write a checkpoint right now
POST     /shutdown      Graceful shutdown (drain, checkpoint, close)
=======  =============  ====================================================

Errors map to conventional statuses: ``ValueError`` → 400, ``KeyError``
→ 404, :class:`OpsError` → its own status, anything else → 500; every
error body is ``{"error": ...}``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["OpsError", "OpsServer", "render_metrics"]

#: Upper bound on request head + body; ops payloads are tiny.
_MAX_REQUEST_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 500: "Internal Server Error",
}


class OpsError(Exception):
    """An ops failure with an explicit HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)


def _jsonable(value):
    """Coerce numpy scalars/arrays (and friends) to JSON-able data."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def render_metrics(families: List[Dict]) -> str:
    """Render metric families in the Prometheus text exposition format.

    Each family is ``{"name", "type", "help", "samples"}`` with samples a
    list of ``(labels_dict, value)`` pairs.
    """
    lines: List[str] = []
    for family in families:
        name = family["name"]
        help_text = str(family.get("help", "")).replace("\\", r"\\") \
            .replace("\n", r"\n")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {family.get('type', 'gauge')}")
        for labels, value in family["samples"]:
            if labels:
                rendered = ",".join(
                    '{}="{}"'.format(
                        key,
                        str(val).replace("\\", r"\\").replace('"', r'\"')
                                .replace("\n", r"\n"))
                    for key, val in sorted(labels.items()))
                lines.append(f"{name}{{{rendered}}} {float(value):g}")
            else:
                lines.append(f"{name} {float(value):g}")
    return "\n".join(lines) + "\n"


class OpsServer:
    """The daemon's HTTP control surface (one asyncio server)."""

    def __init__(self, daemon, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.daemon = daemon
        self.host = host
        self.port = int(port)
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def bound_port(self) -> int:
        """The port actually bound (use with ``port=0``)."""
        if self._server is None:
            return self.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, content_type, body = await self._respond(reader)
        except Exception:  # never let a broken request kill the server
            status, content_type, body = 500, "application/json", \
                json.dumps({"error": "internal error"}).encode()
        head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _respond(self, reader: asyncio.StreamReader
                       ) -> Tuple[int, str, bytes]:
        try:
            request_line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            return self._error(400, "request line too long")
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return self._error(400, "malformed request line")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        total = len(request_line)
        while True:
            line = await reader.readline()
            total += len(line)
            if total > _MAX_REQUEST_BYTES:
                return self._error(413, "request too large")
            if line in (b"\r\n", b"\n", b""):
                break
            header = line.decode("latin-1")
            if ":" in header:
                key, _, value = header.partition(":")
                if key.strip().lower() == "content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        return self._error(400, "bad Content-Length")
        if content_length > _MAX_REQUEST_BYTES:
            return self._error(413, "request too large")
        payload = None
        if content_length > 0:
            raw = await reader.readexactly(content_length)
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                return self._error(400, f"invalid JSON body: {exc}")
        return await self._route(method, path, payload)

    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str, payload
                     ) -> Tuple[int, str, bytes]:
        daemon = self.daemon
        loop = asyncio.get_running_loop()
        try:
            if method == "GET" and path == "/status":
                doc = await loop.run_in_executor(None, daemon.status)
                return self._json(200, doc)
            if method == "GET" and path == "/metrics":
                families = await loop.run_in_executor(
                    None, daemon.metric_families)
                text = render_metrics(families)
                return (200, "text/plain; version=0.0.4; charset=utf-8",
                        text.encode())
            if method == "GET" and path == "/result":
                doc = await loop.run_in_executor(
                    None, daemon.result_document)
                return self._json(200, doc)
            if method == "GET" and path == "/queries":
                return self._json(
                    200, {"queries": list(daemon.session.query_names)})
            if method == "POST" and path == "/queries":
                if payload is None:
                    raise OpsError(400, "POST /queries needs a JSON body")
                spec = payload.get("spec", payload) \
                    if isinstance(payload, dict) else payload
                doc = await loop.run_in_executor(None, daemon.add_query,
                                                 spec)
                return self._json(200, doc)
            if method == "DELETE" and path.startswith("/queries/"):
                name = path[len("/queries/"):]
                doc = await loop.run_in_executor(None, daemon.remove_query,
                                                 name)
                return self._json(200, doc)
            if method == "POST" and path == "/capacity":
                if not isinstance(payload, dict) \
                        or "cycles_per_second" not in payload:
                    raise OpsError(
                        400, 'POST /capacity needs {"cycles_per_second": N}')
                doc = await loop.run_in_executor(
                    None, daemon.set_capacity,
                    payload["cycles_per_second"])
                return self._json(200, doc)
            if method == "POST" and path == "/config":
                if payload is None:
                    raise OpsError(400, "POST /config needs a JSON body")
                doc = await loop.run_in_executor(None, daemon.apply_config,
                                                 payload)
                return self._json(200, doc)
            if method == "POST" and path == "/checkpoint":
                doc = await loop.run_in_executor(None,
                                                 daemon.checkpoint_now)
                return self._json(200, doc)
            if method == "POST" and path == "/shutdown":
                daemon.stop()
                return self._json(200, {"stopping": True})
        except OpsError as exc:
            return self._error(exc.status, str(exc))
        except ValueError as exc:
            return self._error(400, str(exc))
        except KeyError as exc:
            message = exc.args[0] if exc.args else str(exc)
            return self._error(404, str(message))
        except RuntimeError as exc:
            return self._error(409, str(exc))
        known = ("/status", "/metrics", "/result", "/queries", "/capacity",
                 "/config", "/checkpoint", "/shutdown")
        base = "/" + path.lstrip("/").split("/")[0]
        if base in known:
            return self._error(405, f"{method} not supported on {base}")
        return self._error(404, f"unknown path {path}")

    # ------------------------------------------------------------------
    @staticmethod
    def _json(status: int, document) -> Tuple[int, str, bytes]:
        body = json.dumps(_jsonable(document), indent=2).encode()
        return status, "application/json", body

    @staticmethod
    def _error(status: int, message: str) -> Tuple[int, str, bytes]:
        return (status, "application/json",
                json.dumps({"error": message}).encode())
