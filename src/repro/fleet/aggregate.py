"""Second merge tier: fold per-node results and metrics into one answer.

The :class:`FleetAggregator` is the global half of the fleet split: nodes
run their own predict/shed loops and produce ordinary
:class:`~repro.monitor.system.ExecutionResult` objects plus operational
metrics (:attr:`MonitoringSession.metrics`, or the Prometheus text a
``repro.serve`` daemon exposes on ``/metrics``); the aggregator folds the
results through the declarative ``RESULT_MERGE`` rules — the same
associative fold the shard tier uses, one level up — and the metrics into
one fleet report.
"""

from __future__ import annotations

import urllib.request
from typing import Dict, Iterable, List, Optional, Sequence

from ..monitor.system import ExecutionResult


class FleetAggregator:
    """Folds per-node executions and metrics into fleet-global views."""

    # ------------------------------------------------------------------
    # Result federation
    # ------------------------------------------------------------------
    @staticmethod
    def federate(results: Sequence[ExecutionResult],
                 query_classes: Optional[Dict[str, type]] = None,
                 name: str = "fleet") -> ExecutionResult:
        """Fold per-node executions into the fleet-global execution.

        A thin, named entry point over :meth:`ExecutionResult.merge` (the
        public second-tier merge API): bin records sum / worst-case fold,
        query logs merge interval by interval under each query's
        ``RESULT_MERGE`` spec, and the fleet budget is the summed node
        capacity.  Because every registered merge is associative, regional
        pre-aggregation composes: ``federate(results)`` equals
        ``federate([federate(region) for region in regions])`` for any
        grouping of the same nodes.
        """
        return ExecutionResult.merge(results, query_classes=query_classes,
                                     name=name)

    # ------------------------------------------------------------------
    # Metrics folding
    # ------------------------------------------------------------------
    @staticmethod
    def fold_metrics(node_metrics: Iterable[Dict]) -> Dict:
        """Fold per-node ``session.metrics`` dicts into fleet totals.

        Stage profiles sum their call counts and wall/cycle totals (the
        mean recomputes from the folded totals); feature-sharing counters
        sum.  Per-bin latency *percentiles* cannot be folded from per-node
        summaries — that is why :class:`~repro.fleet.runner.FleetRunner`
        measures its own per-bin ingest latencies — so the per-node
        ``bin_seconds`` summaries are kept as a list under
        ``profile.bin_seconds_per_node``.
        """
        metrics = [m for m in node_metrics if m]
        stages: Dict[str, Dict[str, float]] = {}
        bins = 0
        bin_summaries: List[Dict] = []
        sharing: Dict[str, float] = {}
        for node in metrics:
            profile = node.get("profile", {})
            bins = max(bins, int(profile.get("bins", 0)))
            if "bin_seconds" in profile:
                bin_summaries.append(profile["bin_seconds"])
            for stage, values in profile.get("stages", {}).items():
                folded = stages.setdefault(
                    stage, {"calls": 0, "seconds_total": 0.0,
                            "cycles_total": 0.0})
                folded["calls"] += values.get("calls", 0)
                folded["seconds_total"] += values.get("seconds_total", 0.0)
                folded["cycles_total"] += values.get("cycles_total", 0.0)
            for key, value in node.get("feature_sharing", {}).items():
                sharing[key] = sharing.get(key, 0) + value
        for folded in stages.values():
            folded["mean_seconds"] = (folded["seconds_total"] /
                                      folded["calls"]
                                      if folded["calls"] else 0.0)
        return {
            "profile": {
                "bins": bins,
                "stages": stages,
                "bin_seconds_per_node": bin_summaries,
            },
            "feature_sharing": sharing,
        }

    # ------------------------------------------------------------------
    # Scraping live nodes
    # ------------------------------------------------------------------
    @staticmethod
    def parse_prometheus_text(text: str) -> Dict[str, float]:
        """Parse Prometheus exposition text into ``{sample name: value}``.

        Understands the subset ``repro.serve`` emits: ``# HELP``/``# TYPE``
        comment lines are skipped, a sample is ``name[{labels}] value``,
        and the label block (if any) stays part of the returned key, so
        per-query samples remain distinct.
        """
        samples: Dict[str, float] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            if not name:
                continue
            try:
                samples[name.strip()] = float(value)
            except ValueError:
                continue
        return samples

    @classmethod
    def scrape(cls, url: str, timeout: float = 5.0) -> Dict[str, float]:
        """Fetch and parse one node's ``/metrics`` endpoint.

        ``url`` is the full endpoint of a running ``repro.serve`` daemon
        (e.g. ``http://127.0.0.1:9090/metrics``).
        """
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return cls.parse_prometheus_text(
                response.read().decode("utf-8", errors="replace"))

    @classmethod
    def scrape_fleet(cls, urls: Sequence[str],
                     timeout: float = 5.0) -> Dict[str, Dict[str, float]]:
        """Scrape several nodes; returns ``{url: samples}``.

        A node that cannot be reached maps to an empty dict instead of
        failing the sweep — a fleet scrape must survive one dead node.
        """
        scraped: Dict[str, Dict[str, float]] = {}
        for url in urls:
            try:
                scraped[url] = cls.scrape(url, timeout=timeout)
            except OSError:
                scraped[url] = {}
        return scraped


__all__ = ["FleetAggregator"]
