"""Execute a fleet topology over a traffic stream and federate the answer.

:class:`FleetRunner` is the scenario runner of the fleet tier: it splits
every time bin of a trace across the topology's nodes
(:class:`~repro.fleet.partition.FleetPartitioner`), drives one full
predict/shed loop per node — a :class:`~repro.monitor.session.MonitoringSession`
or, for nodes configured with ``num_shards > 1``, a sharded session, so the
shard tier nests under the fleet tier unchanged — and folds the per-node
results and metrics through the :class:`~repro.fleet.aggregate.FleetAggregator`.

Node execution reuses :meth:`repro.experiments.parallel.ParallelRunner.map`
as its process pool: ``n_workers <= 1`` runs the nodes serially in-process,
larger pools fork one job per node over the pre-partitioned streams
(copy-on-write, the same pattern the shard tier's fork backend uses).  Both
paths run the same pure per-node function, so the federated result is
bit-identical either way.

:func:`verify_exactness` is the fleet's correctness gate: it runs the fleet
and a single unpartitioned node in reference mode (no shedding, sampling
rate 1.0 — every reported quantity is an integer-valued float, so addition
order cannot perturb it) and checks the federated query logs are
*bit-identical* to the single-node logs for every merge-exact query kind
(:data:`repro.queries.MERGE_EXACT_KINDS`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.pool import pool_state
from ..monitor.workers import fork_start_available
from ..experiments.parallel import ParallelRunner
from ..monitor.config import SystemConfig
from ..monitor.packet import Batch, PacketTrace, as_trace
from ..monitor.sharding import ShardedSystem
from ..monitor.system import ExecutionResult
from ..profile import summarize
from ..queries import MERGE_EXACTNESS, QUERY_CLASSES
from .aggregate import FleetAggregator
from .partition import FleetPartitioner
from .topology import FleetTopology

#: Fleet node execution backends.
BACKENDS: Tuple[str, ...] = ("auto", "inprocess", "fork")


# ----------------------------------------------------------------------
# Per-node execution (pure function of its inputs; pool-safe)
# ----------------------------------------------------------------------
def _run_node(config: SystemConfig, batches: List[Batch], time_bin: float,
              name: str) -> Tuple[ExecutionResult, Dict, List[float]]:
    """Run one node's session over its sub-stream, timing every bin."""
    if config.num_shards > 1:
        session = ShardedSystem(config=config).open_session(
            time_bin=time_bin, name=name)
    else:
        session = config.build().open_session(time_bin=time_bin, name=name)
    bin_seconds: List[float] = []
    for batch in batches:
        started = perf_counter()
        session.ingest(batch)
        bin_seconds.append(perf_counter() - started)
    result = session.close()
    return result, session.metrics, bin_seconds


#: Pre-fork state for pooled node execution (see repro.core.pool.pool_state).
_POOL_STATE: dict = {}


def _run_node_job(index: int) -> Tuple[ExecutionResult, Dict, List[float]]:
    """Run one node from the fork-inherited pre-partitioned streams."""
    return _run_node(_POOL_STATE["configs"][index],
                     _POOL_STATE["streams"][index],
                     _POOL_STATE["time_bin"],
                     _POOL_STATE["names"][index])


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class FleetResult:
    """Everything a fleet run produced: the one answer plus the evidence."""

    federated: ExecutionResult
    node_results: List[ExecutionResult]
    node_metrics: List[Dict]
    #: Wall seconds each node spent ingesting each bin; shape (nodes, bins).
    node_bin_seconds: np.ndarray
    topology: FleetTopology
    time_bin: float
    backend: str
    metrics: Dict = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return len(self.node_results)

    @property
    def bin_latency(self) -> np.ndarray:
        """Per-bin fleet latency: the straggler node's ingest seconds.

        A bin's federated answer is ready when its slowest node finishes,
        so the fleet-level per-bin latency is the max across nodes.
        """
        if self.node_bin_seconds.size == 0:
            return np.zeros(0)
        return self.node_bin_seconds.max(axis=0)

    def report(self, reference: Optional[ExecutionResult] = None) -> Dict:
        """The fleet report: one JSON-able dict for dashboards and CI.

        Includes per-bin shed-latency percentiles both in wall time (the
        measured straggler ingest latency) and on the simulated cycle
        clock (the federated ``delay`` series: the cycles by which the
        worst node runs behind real time), the folded node metrics, and —
        when a reference execution is given — per-query mean and per-bin
        accuracy percentiles.
        """
        federated = self.federated
        report = {
            "nodes": self.num_nodes,
            "partition_by": self.topology.partition_by,
            "backend": self.backend,
            "bins": len(federated.bins),
            "time_bin": self.time_bin,
            "total_packets": federated.total_packets,
            "dropped_packets": federated.dropped_packets,
            "drop_fraction": federated.drop_fraction,
            "mean_sampling_rate": federated.mean_sampling_rate(),
            "bin_latency_seconds": summarize(self.bin_latency),
            "node_bin_latency_seconds": summarize(
                self.node_bin_seconds.ravel()),
            "delay_cycles": summarize(federated.series("delay")),
            "metrics": self.metrics,
        }
        if reference is not None:
            from ..experiments import runner as experiments_runner
            report["accuracy"] = experiments_runner.accuracy_by_query(
                federated, reference)
            report["accuracy_per_bin"] = {
                name: summarize(experiments_runner.accuracy_series(
                    federated, reference, name))
                for name in federated.query_logs
                if name in reference.query_logs
            }
        return report


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class FleetRunner:
    """Runs every node of a topology over a partitioned stream.

    Parameters
    ----------
    topology:
        The fleet description (nodes, partition rule, overlays).
    config:
        Base :class:`SystemConfig` every node derives from.  Must carry a
        declarative ``queries`` field — the fleet ships configs, not query
        instances (defaults to the experiment harness's config with the
        standard ``counter,flows,top-k`` mix).
    n_workers:
        Node-execution parallelism; the runner executes nodes through a
        :class:`~repro.experiments.parallel.ParallelRunner` pool of this
        size.  Per-node shard parallelism is separate (each node honours
        its own config's ``num_shards``/``shard_backend``).
    backend:
        ``"inprocess"`` (serial), ``"fork"`` (one pooled job per node over
        the pre-partitioned streams), or ``"auto"`` — fork when
        ``n_workers > 1``, more than one node, and the host supports the
        fork start method.
    """

    def __init__(self, topology: FleetTopology,
                 config: Optional[SystemConfig] = None,
                 n_workers: int = 1, backend: str = "auto",
                 respect_cores: bool = True) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown fleet backend {backend!r}; "
                             f"valid backends: {BACKENDS}")
        self.topology = topology
        if config is None:
            from ..experiments.runner import system_config
            from ..queries import parse_query_specs
            config = system_config(
                queries=parse_query_specs("counter,flows,top-k"))
        if config.queries is None:
            raise ValueError(
                "the fleet base config needs a declarative 'queries' field "
                "(nodes are built from shipped configs, not from query "
                "instances); set config = config.replace(queries=...)")
        self.config = config
        self.partitioner = FleetPartitioner(topology)
        self.pool = ParallelRunner(n_workers=n_workers,
                                   respect_cores=respect_cores)
        self.backend = backend
        self.aggregator = FleetAggregator()

    # ------------------------------------------------------------------
    def resolve_backend(self) -> str:
        if self.backend != "auto":
            return self.backend
        if (self.pool.n_workers > 1 and self.topology.num_nodes > 1
                and fork_start_available()):
            return "fork"
        return "inprocess"

    def node_streams(self, trace, time_bin: float
                     ) -> Tuple[List[List[Batch]], "PacketTrace"]:
        """Partition every bin of the trace into per-node sub-streams."""
        trace = as_trace(trace)
        streams: List[List[Batch]] = [[] for _ in
                                      range(self.topology.num_nodes)]
        for batch in trace.batch_list(time_bin):
            for index, sub in enumerate(self.partitioner.split(batch)):
                streams[index].append(sub)
        return streams, trace

    def query_classes(self) -> Dict[str, type]:
        """Query class per instance name, resolved from the node configs.

        Federation folds per-name logs through the owning class's
        ``RESULT_MERGE`` spec; the classes come from the first node's
        config (every node must run the same query names for the merge to
        be defined — per-node overlays may change budgets and modes, not
        the query set's names).
        """
        queries = self.topology.node_configs(self.config)[0].build_queries()
        return {query.name: type(query) for query in queries}

    # ------------------------------------------------------------------
    def run(self, trace, time_bin: float = 0.1,
            force: Optional[Dict[str, object]] = None) -> FleetResult:
        """Execute every node over its partition and federate the results.

        ``force`` overlays config fields onto *every* node after all
        topology overlays (used by the exactness check to pin the whole
        fleet to reference mode).
        """
        configs = self.topology.node_configs(self.config, force=force)
        streams, trace = self.node_streams(trace, time_bin)
        names = [f"{trace.name}[{node.name}]" for node in self.topology.nodes]
        backend = self.resolve_backend()
        if backend == "fork" and self.topology.num_nodes > 1:
            with pool_state(_POOL_STATE, configs=configs, streams=streams,
                            time_bin=float(time_bin), names=names):
                outcomes = self.pool.map(_run_node_job,
                                         list(range(len(configs))),
                                         require_fork=True)
        else:
            backend = "inprocess"
            outcomes = [_run_node(config, stream, float(time_bin), name)
                        for config, stream, name in zip(configs, streams,
                                                        names)]
        results = [result for result, _, _ in outcomes]
        metrics = [node_metrics for _, node_metrics, _ in outcomes]
        bin_seconds = np.array([seconds for _, _, seconds in outcomes],
                               dtype=np.float64)
        federated = self.aggregator.federate(
            results, query_classes=self.query_classes(),
            name=f"{trace.name}[fleet]")
        return FleetResult(
            federated=federated, node_results=results, node_metrics=metrics,
            node_bin_seconds=bin_seconds, topology=self.topology,
            time_bin=float(time_bin), backend=backend,
            metrics=self.aggregator.fold_metrics(metrics))


# ----------------------------------------------------------------------
# The federated ≡ single-node identity check
# ----------------------------------------------------------------------
def _query_kind(query_cls: type) -> Optional[str]:
    for kind, cls in QUERY_CLASSES.items():
        if cls is query_cls:
            return kind
    return None


def verify_exactness(topology: FleetTopology, trace,
                     config: Optional[SystemConfig] = None,
                     time_bin: float = 0.1, n_workers: int = 1) -> Dict:
    """Check the federated answer equals one node over the whole stream.

    Runs the fleet *and* a single unpartitioned system in reference mode
    (no shedding — results are deterministic integer-valued floats, so
    merge-exact queries must agree bit for bit) and compares every query
    log.  Returns a JSON-able verdict::

        {"queries": {name: {"kind", "exactness", "checked", "identical"}},
         "exact_queries_identical": bool}   # the fleet correctness gate

    Only kinds whose :data:`repro.queries.MERGE_EXACTNESS` entry is
    ``"exact"`` are gated (``checked=True``); bounded/prefix/union kinds
    report their observed identity for information but cannot fail the
    check.
    """
    fleet = FleetRunner(topology, config=config, n_workers=n_workers)
    fleet_result = fleet.run(trace, time_bin=time_bin,
                             force={"mode": "reference"})
    single_config = fleet.config.replace(mode="reference", num_shards=1)
    single = single_config.build().run(as_trace(trace), time_bin=time_bin)

    classes = fleet.query_classes()
    queries: Dict[str, Dict] = {}
    gate = True
    for name, log in fleet_result.federated.query_logs.items():
        kind = _query_kind(classes.get(name))
        exactness = MERGE_EXACTNESS.get(kind, "unknown")
        reference_log = single.query_logs.get(name)
        identical = (
            reference_log is not None
            and log.intervals == reference_log.intervals
            and log.results == reference_log.results)
        checked = exactness == "exact"
        if checked and not identical:
            gate = False
        queries[name] = {"kind": kind, "exactness": exactness,
                         "checked": checked, "identical": identical}
    return {"queries": queries, "exact_queries_identical": gate,
            "nodes": topology.num_nodes,
            "partition_by": topology.partition_by,
            "bins": len(fleet_result.federated.bins)}


__all__ = ["BACKENDS", "FleetResult", "FleetRunner", "verify_exactness"]
