"""Run a monitoring fleet from the shell.

::

    # 16 identical flow-hash nodes over a synthetic DDoS workload,
    # federated result + per-bin latency report:
    PYTHONPATH=src python -m repro.fleet --nodes 16 --workload ddos

    # A declarative topology over a stored trace, checking that the
    # federated answer is bit-identical to a single-node run for every
    # merge-exact query (exit code 1 on mismatch):
    PYTHONPATH=src python -m repro.fleet topology.json \\
        --trace path/to/store --check

The topology file is YAML (needs PyYAML) or JSON — same schema, see
:mod:`repro.fleet.topology`.  ``--nodes N`` is the shorthand for a uniform
``N``-node fleet and needs no file at all.  System flags (``--queries``,
``--mode``, ``--num-shards``, ...) are the same surface as
``python -m repro.replay`` / ``python -m repro.serve``
(:mod:`repro.cli`); ``--n-workers`` controls *node-level* process
parallelism here.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..cli import add_system_args, apply_system_args


def build_parser() -> argparse.ArgumentParser:
    from .runner import BACKENDS
    from .topology import PARTITION_MODES

    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Run a fleet of monitor nodes over partitioned traffic "
                    "and federate their results into one answer.")
    parser.add_argument("topology", nargs="?", default=None,
                        help="topology spec file (.json, or .yaml with "
                             "PyYAML installed)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="shorthand: a uniform fleet of N equal-weight "
                             "nodes (instead of a topology file)")
    parser.add_argument("--partition-by", default="flow-hash",
                        choices=PARTITION_MODES,
                        help="traffic partition rule for --nodes fleets "
                             "(default: %(default)s)")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--workload", default="cesca",
                        help="synthetic workload name from "
                             "repro.experiments.scenarios.WORKLOADS "
                             "(default: %(default)s)")
    source.add_argument("--trace", default=None,
                        help="replay a stored trace (v1 .npz or v2 store) "
                             "instead of a synthetic workload")
    parser.add_argument("--duration", type=float, default=None,
                        help="synthetic workload duration in seconds")
    parser.add_argument("--workload-scale", type=float, default=1.0,
                        help="synthetic workload scale factor "
                             "(default: %(default)s)")
    parser.add_argument("--workload-seed", type=int, default=0,
                        help="synthetic workload seed (default: %(default)s)")
    add_system_args(parser)
    capacity = parser.add_mutually_exclusive_group()
    capacity.add_argument("--cycles-per-second", type=float, default=None,
                          help="total fleet cycle capacity (split across "
                               "nodes by weight)")
    capacity.add_argument("--overload", type=float, default=0.3,
                          help="overload factor K in [0, 1): fleet capacity "
                               "is (1 - K) x the calibrated no-shedding "
                               "capacity (default: %(default)s)")
    parser.add_argument("--fleet-backend", default="auto", choices=BACKENDS,
                        help="node-execution backend (default: %(default)s; "
                             "'auto' forks one job per node when "
                             "--n-workers > 1)")
    parser.add_argument("--check", action="store_true",
                        help="also run the federated-vs-single-node "
                             "exactness check; exit 1 if any merge-exact "
                             "query differs")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the fleet report as JSON")
    return parser


def _build_topology(args):
    from .topology import FleetTopology, load_topology

    if args.topology is not None and args.nodes is not None:
        raise ValueError("give a topology file or --nodes, not both")
    if args.topology is not None:
        return load_topology(args.topology)
    if args.nodes is not None:
        return FleetTopology.uniform(args.nodes,
                                     partition_by=args.partition_by)
    raise ValueError("give a topology file or --nodes N")


def _load_traffic(args):
    if args.trace is not None:
        from ..monitor.packet import as_trace
        from ..traffic.trace_io import open_trace
        # The fleet partitions every bin up front, so streaming stores are
        # materialised (the fleet runner is a simulator, not an ingest
        # path — use repro.serve per node for live out-of-core operation).
        return as_trace(open_trace(args.trace))
    from ..experiments.scenarios import build_workload
    return build_workload(args.workload, seed=args.workload_seed,
                          duration=args.duration, scale=args.workload_scale)


def _print_human(report: dict, check: Optional[dict]) -> None:
    print(f"fleet: {report['nodes']} nodes, partition={report['partition_by']},"
          f" backend={report['backend']}, bins={report['bins']}")
    print(f"traffic: {report['total_packets']} packets, "
          f"dropped {report['dropped_packets']} "
          f"({report['drop_fraction']:.2%}), "
          f"mean sampling rate {report['mean_sampling_rate']:.3f}")
    latency = report["bin_latency_seconds"]
    print(f"per-bin latency (straggler node, wall seconds): "
          f"p50={latency['p50']:.6f} p95={latency['p95']:.6f} "
          f"p99={latency['p99']:.6f} max={latency['max']:.6f}")
    delay = report["delay_cycles"]
    print(f"per-bin backlog delay (worst node, cycles): "
          f"p50={delay['p50']:.0f} p95={delay['p95']:.0f} "
          f"p99={delay['p99']:.0f}")
    if check is not None:
        verdict = "PASS" if check["exact_queries_identical"] else "FAIL"
        print(f"exactness check ({verdict}): federated vs single-node")
        for name, entry in sorted(check["queries"].items()):
            gate = "gated" if entry["checked"] else "info"
            print(f"  {name:<16} {entry['exactness']:<8} "
                  f"identical={str(entry['identical']):<5} [{gate}]")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        topology = _build_topology(args)
    except (ValueError, ImportError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    from ..experiments import runner as experiments_runner
    from .runner import FleetRunner, verify_exactness

    try:
        trace = _load_traffic(args)
    except (KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    config = apply_system_args(experiments_runner.system_config(), args)

    if args.cycles_per_second is not None:
        capacity = float(args.cycles_per_second)
    else:
        if not 0.0 <= args.overload < 1.0:
            print("error: --overload must be in [0, 1)", file=sys.stderr)
            return 2
        base, _ = experiments_runner.calibrate_capacity(
            config.queries, trace, time_bin=args.time_bin)
        capacity = base * (1.0 - args.overload)
    config = config.replace(cycles_per_second=capacity)

    fleet = FleetRunner(topology, config=config, n_workers=args.n_workers,
                        backend=args.fleet_backend)
    result = fleet.run(trace, time_bin=args.time_bin)
    report = result.report()

    check = None
    if args.check:
        check = verify_exactness(topology, trace, config=config,
                                 time_bin=args.time_bin,
                                 n_workers=args.n_workers)

    if args.as_json:
        document = dict(report)
        if check is not None:
            document["exactness_check"] = check
        print(json.dumps(document, indent=1, default=float))
    else:
        _print_human(report, check)
    if check is not None and not check["exact_queries_identical"]:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
