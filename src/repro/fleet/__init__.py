"""Fleet federation: hundreds of monitor nodes, one answer, one API.

The paper's system is a single CoMo node; a production deployment is a
fleet of them over partitioned traffic.  This package is that second tier:

* :mod:`~repro.fleet.topology` — the declarative fleet spec (YAML/JSON):
  node count, per-node traffic partition (flow-hash / source-prefix /
  ingress link), per-node :class:`~repro.monitor.config.SystemConfig`
  overlays and independent cycle budgets.
* :mod:`~repro.fleet.partition` — flow-affine per-batch routing of packets
  to nodes, memoised independently of the shard-level splits.
* :mod:`~repro.fleet.runner` — executes every node's own predict/shed loop
  (in-process or on a fork pool via
  :class:`~repro.experiments.parallel.ParallelRunner`) and measures
  per-bin latency; :func:`~repro.fleet.runner.verify_exactness` gates the
  federated answer against a single-node run.
* :mod:`~repro.fleet.aggregate` — the global
  :class:`~repro.fleet.aggregate.FleetAggregator`: folds per-node
  :class:`~repro.monitor.system.ExecutionResult` objects through the
  ``RESULT_MERGE`` rules (via the public :meth:`ExecutionResult.merge` /
  :meth:`BinRecord.merge` API) and scrapes/folds per-node metrics into one
  fleet report.

``python -m repro.fleet`` runs a topology from the shell.
"""

from .aggregate import FleetAggregator
from .partition import FleetPartitioner
from .runner import BACKENDS, FleetResult, FleetRunner, verify_exactness
from .topology import (FleetTopology, NodeSpec, PARTITION_MODES,
                       load_topology)

__all__ = [
    "BACKENDS",
    "FleetAggregator",
    "FleetPartitioner",
    "FleetResult",
    "FleetRunner",
    "FleetTopology",
    "NodeSpec",
    "PARTITION_MODES",
    "load_topology",
    "verify_exactness",
]
